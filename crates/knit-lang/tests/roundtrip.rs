//! Property tests for the Knit front end: printing a parsed file and
//! reparsing it must be a fixed point, and the parser must never panic.

use proptest::prelude::*;

use knit_lang::{parse, print};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_filter("keyword", |s| {
        !matches!(
            s.as_str(),
            "bundletype"
                | "flags"
                | "property"
                | "type"
                | "unit"
                | "imports"
                | "exports"
                | "depends"
                | "needs"
                | "files"
                | "with"
                | "rename"
                | "to"
                | "initializer"
                | "finalizer"
                | "for"
                | "link"
                | "flatten"
                | "constraints"
        )
    })
}

/// Generate a structurally valid atomic unit (ports, depends, renames,
/// initializers) plus its bundletype declarations.
fn atomic_unit() -> impl Strategy<Value = String> {
    (
        ident(),
        ident(),
        ident(),
        ident(),
        prop::collection::vec(ident(), 1..4),
        "[a-z]{1,8}\\.c",
        any::<bool>(),
        any::<bool>(),
    )
        .prop_filter("distinct names", |(u, bt, pi, po, ms, _, _, _)| {
            u != bt && pi != po && !ms.contains(pi) && !ms.contains(po)
        })
        .prop_map(|(unit, bt, pin, pout, members, file, with_init, with_rename)| {
            let mut s = format!("bundletype {bt} = {{ {} }}\n", members.join(", "));
            s.push_str(&format!("unit {unit} = {{\n"));
            s.push_str(&format!("    imports [ {pin} : {bt} ];\n"));
            s.push_str(&format!("    exports [ {pout} : {bt} ];\n"));
            if with_init {
                s.push_str(&format!("    initializer boot_fn for {pout};\n"));
                s.push_str(&format!(
                    "    depends {{ boot_fn needs {pin}; exports needs imports; }};\n"
                ));
            } else {
                s.push_str("    depends { exports needs imports; };\n");
            }
            s.push_str(&format!("    files {{ \"{file}\" }};\n"));
            if with_rename {
                s.push_str(&format!(
                    "    rename {{ {pin}.{m} to renamed_{m}; }};\n",
                    m = members[0]
                ));
            }
            s.push_str("}\n");
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_is_a_fixed_point(src in atomic_unit()) {
        let ast1 = parse("gen.unit", &src).expect("generated unit parses");
        let printed1 = print(&ast1);
        let ast2 = parse("gen2.unit", &printed1).expect("printed unit reparses");
        let printed2 = print(&ast2);
        prop_assert_eq!(printed1, printed2);
    }

    #[test]
    fn parser_total_on_arbitrary_bytes(src in "\\PC{0,300}") {
        let _ = parse("fuzz.unit", &src);
    }

    #[test]
    fn parser_total_on_mangled_valid_input(src in atomic_unit(), cut in 0usize..200) {
        // truncating valid input anywhere must produce an error, not a panic
        let cut = cut.min(src.len());
        // avoid slicing through a UTF-8 boundary (ASCII generator, but stay safe)
        if src.is_char_boundary(cut) {
            let _ = parse("cut.unit", &src[..cut]);
        }
    }
}

#[test]
fn compound_units_round_trip() {
    let src = r#"
        bundletype T = { f, g }
        unit Leaf = { exports [ o : T ]; files { "l.c" }; }
        unit Mid = {
            imports [ i : T ];
            exports [ o : T ];
            files { "m.c" };
            rename { i.f to inner_f; };
        }
        unit Top = {
            exports [ o : T ];
            link {
                a : Leaf;
                b : Mid [ i = a.o ];
                o = b.o;
            };
            flatten;
        }
    "#;
    let a = parse("t.unit", src).unwrap();
    let p1 = print(&a);
    let b = parse("t2.unit", &p1).unwrap();
    assert_eq!(p1, print(&b));
}

#[test]
fn properties_and_constraints_round_trip() {
    let src = r#"
        property context
        type NoContext
        type ProcessContext < NoContext
        bundletype T = { f }
        unit U = {
            imports [ i : T ];
            exports [ o : T ];
            files { "u.c" };
            constraints {
                context(o) = NoContext;
                context(exports) <= context(imports);
                context(f) <= ProcessContext;
            };
        }
    "#;
    let a = parse("t.unit", src).unwrap();
    let p1 = print(&a);
    let b = parse("t2.unit", &p1).unwrap();
    assert_eq!(p1, print(&b));
}
