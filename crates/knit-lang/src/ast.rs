//! Abstract syntax for the Knit language.
//!
//! The shapes follow §3.3 and §4 of the paper (Figure 5 shows the concrete
//! syntax this models): `bundletype`, `flags`, `property`/`type`
//! declarations, and `unit` declarations that are either *atomic* (wrap C
//! files) or *compound* (a `link` block wiring other units together).

use crate::token::Span;

/// A parsed `.unit` file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KnitFile {
    /// File name for diagnostics.
    pub file: String,
    /// Declarations in source order.
    pub decls: Vec<Decl>,
}

/// One top-level declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decl {
    /// `bundletype Serve = { serve_web }`
    BundleType(BundleTypeDecl),
    /// `flags CFlags = { "-Ioskit/include" }`
    Flags(FlagsDecl),
    /// `property context`
    Property(PropertyDecl),
    /// `type ProcessContext < NoContext` — attaches to the most recent
    /// `property` declaration.
    PropValue(PropValueDecl),
    /// `unit Name = { … }` (boxed: far larger than the other variants)
    Unit(Box<UnitDecl>),
}

/// A bundle type: a named set of member names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleTypeDecl {
    pub name: String,
    pub members: Vec<String>,
    pub span: Span,
}

/// A named set of compiler flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagsDecl {
    pub name: String,
    pub flags: Vec<String>,
    pub span: Span,
}

/// A property namespace (e.g. `context`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyDecl {
    pub name: String,
    pub span: Span,
}

/// A property value, optionally declared below others in the partial order
/// (`type ProcessContext < NoContext` means ProcessContext is *less
/// general*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropValueDecl {
    pub name: String,
    /// Values this one is strictly below.
    pub below: Vec<String>,
    pub span: Span,
}

/// A unit declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitDecl {
    pub name: String,
    /// Imported ports (`local_name : BundleType`).
    pub imports: Vec<Port>,
    /// Exported ports.
    pub exports: Vec<Port>,
    /// Atomic or compound body.
    pub body: UnitBody,
    /// Architectural constraints (§4).
    pub constraints: Vec<Constraint>,
    /// Whether this unit (compound) is a flattening boundary (§6).
    pub flatten: bool,
    /// Lint pragmas (`#[allow(...)]` lines preceding the declaration).
    pub pragmas: Vec<LintPragma>,
    pub span: Span,
}

/// Severity override named by a lint pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PragmaLevel {
    /// `#[allow(...)]` — suppress the lint for this unit.
    Allow,
    /// `#[warn(...)]` — report as a warning.
    Warn,
    /// `#[deny(...)]` — report as an error.
    Deny,
}

/// `#[allow(unused_import, dead_export)]` attached to a unit declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintPragma {
    /// What level the named lints are set to.
    pub level: PragmaLevel,
    /// Lint names (underscore form, matched case-sensitively).
    pub lints: Vec<String>,
    pub span: Span,
}

/// An import or export port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// The name used inside this unit's declarations.
    pub name: String,
    /// The bundle type name.
    pub bundle_type: String,
    pub span: Span,
}

/// Atomic vs compound unit body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitBody {
    Atomic(AtomicBody),
    Compound(CompoundBody),
}

/// The body of a unit implemented by C files.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AtomicBody {
    /// Source files (paths into the build's source tree).
    pub files: Vec<String>,
    /// Name of a `flags` declaration to compile with.
    pub flags: Option<String>,
    /// Fine-grained dependency declarations.
    pub depends: Vec<DependsClause>,
    /// Renamings between Knit names and C identifiers.
    pub renames: Vec<RenameClause>,
    /// `initializer f for bundle;`
    pub initializers: Vec<InitDecl>,
    /// `finalizer f for bundle;`
    pub finalizers: Vec<InitDecl>,
}

/// The body of a unit built by linking other units.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompoundBody {
    /// Sub-unit instantiations, in order.
    pub instances: Vec<InstanceDecl>,
    /// Which instance exports become this unit's exports.
    pub export_bindings: Vec<ExportBinding>,
}

/// `lhs needs (a + b);` — `lhs` is an export bundle, an initializer or
/// finalizer function name, or the keyword `exports`; the right side names
/// import bundles (or the keyword `imports`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependsClause {
    pub lhs: DepSide,
    pub rhs: Vec<DepAtom>,
    pub span: Span,
}

/// Left side of a `needs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepSide {
    /// The keyword `exports` (all export bundles).
    Exports,
    /// An export bundle or initializer/finalizer function name.
    Name(String),
}

/// Right side atom of a `needs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepAtom {
    /// The keyword `imports` (all import bundles).
    Imports,
    /// A specific import bundle.
    Name(String),
}

/// `port.member to c_identifier;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameClause {
    /// The import or export port.
    pub port: String,
    /// The bundle member being renamed.
    pub member: String,
    /// The C identifier the unit's code actually uses/defines.
    pub to: String,
    pub span: Span,
}

/// `initializer open_log for serveLog;` (also used for finalizers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitDecl {
    /// The C function to call.
    pub func: String,
    /// The export port it initializes/finalizes.
    pub bundle: String,
    pub span: Span,
}

/// `web : Web [ serveFile = serveFile, serveCGI = serveCGI ];`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceDecl {
    /// Instance name, local to the link block.
    pub name: String,
    /// The unit being instantiated.
    pub unit: String,
    /// Bindings for the instantiated unit's imports.
    pub bindings: Vec<(String, PathRef)>,
    pub span: Span,
}

/// A reference inside a link block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathRef {
    /// A bare name: one of the compound unit's own imports.
    Name(String),
    /// `instance.port`: an export of a sibling instance.
    Dotted(String, String),
}

/// `serveLog = log.serveLog;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportBinding {
    /// The compound unit's export port.
    pub export: String,
    /// Instance providing it.
    pub instance: String,
    /// That instance's export port.
    pub port: String,
    pub span: Span,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum COp {
    /// `=` (both directions of `<=`).
    Eq,
    /// `<=` in the property's partial order.
    Le,
}

/// A term in a constraint: `context(serveLog)`, `context(exports)`, or a
/// property value name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CTerm {
    /// `prop(target)`
    Prop { prop: String, target: CTarget },
    /// A bare property value.
    Value(String),
}

/// Target of a property application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CTarget {
    /// All import ports.
    Imports,
    /// All export ports.
    Exports,
    /// A specific port (or a member of one — resolved during checking).
    Name(String),
}

/// One constraint: `context(exports) <= context(imports);`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    pub lhs: CTerm,
    pub op: COp,
    pub rhs: CTerm,
    pub span: Span,
}

impl KnitFile {
    /// Find a unit declaration by name.
    pub fn find_unit(&self, name: &str) -> Option<&UnitDecl> {
        self.decls.iter().find_map(|d| match d {
            Decl::Unit(u) if u.name == name => Some(&**u),
            _ => None,
        })
    }
}
