//! Diagnostics for the Knit language front end.

use std::fmt;

use crate::token::Span;

/// A front-end error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KError {
    /// Lexical error.
    Lex { file: String, span: Span, msg: String },
    /// Syntax error.
    Parse { file: String, span: Span, msg: String },
}

impl KError {
    pub(crate) fn lex(file: &str, span: Span, msg: impl Into<String>) -> KError {
        KError::Lex { file: file.to_string(), span, msg: msg.into() }
    }

    pub(crate) fn parse(file: &str, span: Span, msg: impl Into<String>) -> KError {
        KError::Parse { file: file.to_string(), span, msg: msg.into() }
    }

    /// The message text.
    pub fn message(&self) -> &str {
        match self {
            KError::Lex { msg, .. } | KError::Parse { msg, .. } => msg,
        }
    }
}

impl fmt::Display for KError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KError::Lex { file, span, msg } => write!(f, "{file}:{span}: lex: {msg}"),
            KError::Parse { file, span, msg } => write!(f, "{file}:{span}: parse: {msg}"),
        }
    }
}

impl std::error::Error for KError {}
