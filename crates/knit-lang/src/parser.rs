//! Recursive-descent parser for the Knit language.

use crate::ast::*;
use crate::error::KError;
use crate::token::{lex, Span, Tok, Token};

/// Parse a `.unit` source file.
pub fn parse(file: &str, src: &str) -> Result<KnitFile, KError> {
    let toks = lex(file, src)?;
    let mut p = Parser { file: file.to_string(), toks, pos: 0 };
    p.knit_file()
}

struct Parser {
    file: String,
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, KError> {
        Err(KError::parse(&self.file, self.span(), msg.into()))
    }

    fn expect(&mut self, t: Tok) -> Result<(), KError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, KError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn string(&mut self) -> Result<String, KError> {
        match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected string, found {other}")),
        }
    }

    fn knit_file(&mut self) -> Result<KnitFile, KError> {
        let mut decls = Vec::new();
        while *self.peek() != Tok::Eof {
            decls.push(self.decl()?);
        }
        Ok(KnitFile { file: self.file.clone(), decls })
    }

    fn decl(&mut self) -> Result<Decl, KError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::KwBundletype => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Eq)?;
                self.expect(Tok::LBrace)?;
                let mut members = Vec::new();
                if !self.eat(Tok::RBrace) {
                    loop {
                        members.push(self.ident()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RBrace)?;
                }
                self.eat(Tok::Semi);
                Ok(Decl::BundleType(BundleTypeDecl { name, members, span }))
            }
            Tok::KwFlags => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Eq)?;
                self.expect(Tok::LBrace)?;
                let mut flags = Vec::new();
                if !self.eat(Tok::RBrace) {
                    loop {
                        flags.push(self.string()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RBrace)?;
                }
                self.eat(Tok::Semi);
                Ok(Decl::Flags(FlagsDecl { name, flags, span }))
            }
            Tok::KwProperty => {
                self.bump();
                let name = self.ident()?;
                self.eat(Tok::Semi);
                Ok(Decl::Property(PropertyDecl { name, span }))
            }
            Tok::KwType => {
                self.bump();
                let name = self.ident()?;
                let mut below = Vec::new();
                if self.eat(Tok::Lt) {
                    loop {
                        below.push(self.ident()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.eat(Tok::Semi);
                Ok(Decl::PropValue(PropValueDecl { name, below, span }))
            }
            Tok::KwUnit => self.unit_decl(Vec::new()),
            Tok::Hash => {
                let mut pragmas = Vec::new();
                while *self.peek() == Tok::Hash {
                    pragmas.push(self.pragma()?);
                }
                if *self.peek() != Tok::KwUnit {
                    return self.err(format!(
                        "lint pragmas must precede a unit declaration, found {}",
                        self.peek()
                    ));
                }
                self.unit_decl(pragmas)
            }
            other => self.err(format!("expected a declaration, found {other}")),
        }
    }

    /// `#[allow(lint_name, ...)]` (also `warn`/`deny`).
    fn pragma(&mut self) -> Result<LintPragma, KError> {
        let span = self.span();
        self.expect(Tok::Hash)?;
        self.expect(Tok::LBracket)?;
        let level = match self.ident()?.as_str() {
            "allow" => PragmaLevel::Allow,
            "warn" => PragmaLevel::Warn,
            "deny" => PragmaLevel::Deny,
            other => {
                return Err(KError::parse(
                    &self.file,
                    span,
                    format!("expected `allow`, `warn`, or `deny` in pragma, found `{other}`"),
                ))
            }
        };
        self.expect(Tok::LParen)?;
        let mut lints = vec![self.ident()?];
        while self.eat(Tok::Comma) {
            lints.push(self.ident()?);
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::RBracket)?;
        Ok(LintPragma { level, lints, span })
    }

    fn unit_decl(&mut self, pragmas: Vec<LintPragma>) -> Result<Decl, KError> {
        let span = self.span();
        self.expect(Tok::KwUnit)?;
        let name = self.ident()?;
        self.expect(Tok::Eq)?;
        self.expect(Tok::LBrace)?;

        let mut imports = Vec::new();
        let mut exports = Vec::new();
        let mut atomic = AtomicBody::default();
        let mut compound: Option<CompoundBody> = None;
        let mut constraints = Vec::new();
        let mut flatten = false;
        let mut saw_files = false;

        while !self.eat(Tok::RBrace) {
            match self.peek().clone() {
                Tok::KwImports => {
                    self.bump();
                    imports = self.port_list()?;
                    self.expect(Tok::Semi)?;
                }
                Tok::KwExports => {
                    self.bump();
                    exports = self.port_list()?;
                    self.expect(Tok::Semi)?;
                }
                Tok::KwDepends => {
                    self.bump();
                    self.expect(Tok::LBrace)?;
                    while !self.eat(Tok::RBrace) {
                        atomic.depends.push(self.depends_clause()?);
                    }
                    self.eat(Tok::Semi);
                }
                Tok::KwInitializer => {
                    self.bump();
                    let func = self.ident()?;
                    self.expect(Tok::KwFor)?;
                    let bundle = self.ident()?;
                    let ispan = self.span();
                    self.expect(Tok::Semi)?;
                    atomic.initializers.push(InitDecl { func, bundle, span: ispan });
                }
                Tok::KwFinalizer => {
                    self.bump();
                    let func = self.ident()?;
                    self.expect(Tok::KwFor)?;
                    let bundle = self.ident()?;
                    let ispan = self.span();
                    self.expect(Tok::Semi)?;
                    atomic.finalizers.push(InitDecl { func, bundle, span: ispan });
                }
                Tok::KwFiles => {
                    self.bump();
                    saw_files = true;
                    self.expect(Tok::LBrace)?;
                    if !self.eat(Tok::RBrace) {
                        loop {
                            atomic.files.push(self.string()?);
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::RBrace)?;
                    }
                    if self.eat(Tok::KwWith) {
                        self.expect(Tok::KwFlags)?;
                        atomic.flags = Some(self.ident()?);
                    }
                    self.expect(Tok::Semi)?;
                }
                Tok::KwRename => {
                    self.bump();
                    self.expect(Tok::LBrace)?;
                    while !self.eat(Tok::RBrace) {
                        let rspan = self.span();
                        let port = self.ident()?;
                        self.expect(Tok::Dot)?;
                        let member = self.ident()?;
                        self.expect(Tok::KwTo)?;
                        let to = self.ident()?;
                        self.expect(Tok::Semi)?;
                        atomic.renames.push(RenameClause { port, member, to, span: rspan });
                    }
                    self.eat(Tok::Semi);
                }
                Tok::KwConstraints => {
                    self.bump();
                    self.expect(Tok::LBrace)?;
                    while !self.eat(Tok::RBrace) {
                        constraints.push(self.constraint()?);
                    }
                    self.eat(Tok::Semi);
                }
                Tok::KwLink => {
                    self.bump();
                    compound = Some(self.link_block()?);
                    self.eat(Tok::Semi);
                }
                Tok::KwFlatten => {
                    self.bump();
                    flatten = true;
                    self.expect(Tok::Semi)?;
                }
                other => return self.err(format!("unexpected {other} in unit body")),
            }
        }
        self.eat(Tok::Semi);

        let body = match compound {
            Some(c) => {
                if saw_files {
                    return Err(KError::parse(
                        &self.file,
                        span,
                        format!("unit `{name}` has both `files` and `link`"),
                    ));
                }
                UnitBody::Compound(c)
            }
            None => {
                if !saw_files {
                    return Err(KError::parse(
                        &self.file,
                        span,
                        format!("unit `{name}` needs either `files` (atomic) or `link` (compound)"),
                    ));
                }
                UnitBody::Atomic(atomic)
            }
        };
        Ok(Decl::Unit(Box::new(UnitDecl {
            name,
            imports,
            exports,
            body,
            constraints,
            flatten,
            pragmas,
            span,
        })))
    }

    fn port_list(&mut self) -> Result<Vec<Port>, KError> {
        self.expect(Tok::LBracket)?;
        let mut out = Vec::new();
        if !self.eat(Tok::RBracket) {
            loop {
                let span = self.span();
                let name = self.ident()?;
                self.expect(Tok::Colon)?;
                let bundle_type = self.ident()?;
                out.push(Port { name, bundle_type, span });
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RBracket)?;
        }
        Ok(out)
    }

    fn depends_clause(&mut self) -> Result<DependsClause, KError> {
        let span = self.span();
        let lhs =
            if self.eat(Tok::KwExports) { DepSide::Exports } else { DepSide::Name(self.ident()?) };
        self.expect(Tok::KwNeeds)?;
        let mut rhs = Vec::new();
        if self.eat(Tok::LParen) {
            loop {
                rhs.push(self.dep_atom()?);
                if !self.eat(Tok::Plus) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        } else {
            loop {
                rhs.push(self.dep_atom()?);
                // allow `a, b` and `a + b` without parens
                if !self.eat(Tok::Plus) && !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::Semi)?;
        Ok(DependsClause { lhs, rhs, span })
    }

    fn dep_atom(&mut self) -> Result<DepAtom, KError> {
        if self.eat(Tok::KwImports) {
            Ok(DepAtom::Imports)
        } else {
            Ok(DepAtom::Name(self.ident()?))
        }
    }

    fn link_block(&mut self) -> Result<CompoundBody, KError> {
        self.expect(Tok::LBrace)?;
        let mut body = CompoundBody::default();
        while !self.eat(Tok::RBrace) {
            let span = self.span();
            let name = self.ident()?;
            if self.eat(Tok::Colon) {
                // instance: name : Unit [ import = path, ... ];
                let unit = self.ident()?;
                let mut bindings = Vec::new();
                if self.eat(Tok::LBracket) && !self.eat(Tok::RBracket) {
                    loop {
                        let import = self.ident()?;
                        self.expect(Tok::Eq)?;
                        let path = self.path_ref()?;
                        bindings.push((import, path));
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RBracket)?;
                }
                self.expect(Tok::Semi)?;
                body.instances.push(InstanceDecl { name, unit, bindings, span });
            } else if self.eat(Tok::Eq) {
                // export binding: export = instance.port;
                let instance = self.ident()?;
                self.expect(Tok::Dot)?;
                let port = self.ident()?;
                self.expect(Tok::Semi)?;
                body.export_bindings.push(ExportBinding { export: name, instance, port, span });
            } else {
                return self.err(format!("expected `:` or `=` after `{name}` in link block"));
            }
        }
        Ok(body)
    }

    fn path_ref(&mut self) -> Result<PathRef, KError> {
        let first = self.ident()?;
        if self.eat(Tok::Dot) {
            let second = self.ident()?;
            Ok(PathRef::Dotted(first, second))
        } else {
            Ok(PathRef::Name(first))
        }
    }

    fn constraint(&mut self) -> Result<Constraint, KError> {
        let span = self.span();
        let lhs = self.cterm()?;
        let op = match self.bump() {
            Tok::Eq => COp::Eq,
            Tok::Le => COp::Le,
            other => return self.err(format!("expected `=` or `<=`, found {other}")),
        };
        let rhs = self.cterm()?;
        self.expect(Tok::Semi)?;
        Ok(Constraint { lhs, op, rhs, span })
    }

    fn cterm(&mut self) -> Result<CTerm, KError> {
        let first = self.ident()?;
        if self.eat(Tok::LParen) {
            let target = match self.peek().clone() {
                Tok::KwImports => {
                    self.bump();
                    CTarget::Imports
                }
                Tok::KwExports => {
                    self.bump();
                    CTarget::Exports
                }
                _ => CTarget::Name(self.ident()?),
            };
            self.expect(Tok::RParen)?;
            Ok(CTerm::Prop { prop: first, target })
        } else {
            Ok(CTerm::Value(first))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 5, verbatim modulo our link-block syntax.
    pub const FIGURE5: &str = r#"
        bundletype Serve = { serve_web }
        bundletype Stdio = { fopen, fprintf }
        flags CFlags = { "-Ioskit/include" }

        unit Web = {
            imports [ serveFile : Serve, serveCGI : Serve ];
            exports [ serveWeb : Serve ];
            depends { serveWeb needs (serveFile + serveCGI); };
            files { "web.c" } with flags CFlags;
            rename {
                serveFile.serve_web to serve_file;
                serveCGI.serve_web to serve_cgi;
            };
        }

        unit Log = {
            imports [ serveWeb : Serve, stdio : Stdio ];
            exports [ serveLog : Serve ];
            initializer open_log for serveLog;
            finalizer close_log for serveLog;
            depends {
                open_log needs stdio;
                close_log needs stdio;
                serveLog needs (serveWeb + stdio);
            };
            files { "log.c" } with flags CFlags;
            rename {
                serveWeb.serve_web to serve_unlogged;
                serveLog.serve_web to serve_logged;
            };
        }

        unit LogServe = {
            imports [ serveFile : Serve, serveCGI : Serve, stdio : Stdio ];
            exports [ serveLog : Serve ];
            link {
                web : Web [ serveFile = serveFile, serveCGI = serveCGI ];
                log : Log [ serveWeb = web.serveWeb, stdio = stdio ];
                serveLog = log.serveLog;
            };
        }
    "#;

    #[test]
    fn parses_figure5() {
        let kf = parse("fig5.unit", FIGURE5).unwrap();
        assert_eq!(kf.decls.len(), 6);
        let web = kf.find_unit("Web").unwrap();
        assert_eq!(web.imports.len(), 2);
        assert_eq!(web.exports[0].name, "serveWeb");
        match &web.body {
            UnitBody::Atomic(a) => {
                assert_eq!(a.files, vec!["web.c"]);
                assert_eq!(a.flags.as_deref(), Some("CFlags"));
                assert_eq!(a.renames.len(), 2);
                assert_eq!(a.depends.len(), 1);
                assert_eq!(a.depends[0].rhs.len(), 2);
            }
            _ => panic!("Web should be atomic"),
        }
        let log = kf.find_unit("Log").unwrap();
        match &log.body {
            UnitBody::Atomic(a) => {
                assert_eq!(a.initializers.len(), 1);
                assert_eq!(a.initializers[0].func, "open_log");
                assert_eq!(a.finalizers[0].func, "close_log");
            }
            _ => panic!(),
        }
        let ls = kf.find_unit("LogServe").unwrap();
        match &ls.body {
            UnitBody::Compound(c) => {
                assert_eq!(c.instances.len(), 2);
                assert_eq!(
                    c.instances[1].bindings[0].1,
                    PathRef::Dotted("web".into(), "serveWeb".into())
                );
                assert_eq!(c.export_bindings.len(), 1);
            }
            _ => panic!("LogServe should be compound"),
        }
    }

    #[test]
    fn parses_properties_and_constraints() {
        let src = r#"
            property context
            type NoContext
            type ProcessContext < NoContext
            bundletype T = { f }
            unit U = {
                imports [ a : T ];
                exports [ b : T ];
                files { "u.c" };
                constraints {
                    context(b) <= NoContext;
                    context(exports) <= context(imports);
                    context(f) = ProcessContext;
                };
            }
        "#;
        let kf = parse("t.unit", src).unwrap();
        assert!(matches!(&kf.decls[0], Decl::Property(p) if p.name == "context"));
        assert!(matches!(&kf.decls[2], Decl::PropValue(v) if v.below == vec!["NoContext"]));
        let u = kf.find_unit("U").unwrap();
        assert_eq!(u.constraints.len(), 3);
        assert!(matches!(&u.constraints[1].lhs, CTerm::Prop { target: CTarget::Exports, .. }));
        assert!(matches!(&u.constraints[2].op, COp::Eq));
    }

    #[test]
    fn parses_exports_needs_imports_sugar() {
        let src = r#"
            bundletype T = { f }
            unit U = {
                imports [ a : T ];
                exports [ b : T ];
                depends { exports needs imports; };
                files { "u.c" };
            }
        "#;
        let kf = parse("t.unit", src).unwrap();
        let u = kf.find_unit("U").unwrap();
        match &u.body {
            UnitBody::Atomic(a) => {
                assert_eq!(a.depends[0].lhs, DepSide::Exports);
                assert_eq!(a.depends[0].rhs, vec![DepAtom::Imports]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_flatten_marker() {
        let src = r#"
            bundletype T = { f }
            unit U = {
                exports [ b : T ];
                link { };
                flatten;
            }
        "#;
        let kf = parse("t.unit", src).unwrap();
        assert!(kf.find_unit("U").unwrap().flatten);
    }

    #[test]
    fn parses_lint_pragmas() {
        let src = r#"
            bundletype T = { f }
            #[allow(unused_import, dead_export)]
            #[deny(undefined_export)]
            unit U = {
                imports [ a : T ];
                exports [ b : T ];
                files { "u.c" };
            }
        "#;
        let kf = parse("t.unit", src).unwrap();
        let u = kf.find_unit("U").unwrap();
        assert_eq!(u.pragmas.len(), 2);
        assert_eq!(u.pragmas[0].level, PragmaLevel::Allow);
        assert_eq!(u.pragmas[0].lints, vec!["unused_import", "dead_export"]);
        assert_eq!(u.pragmas[1].level, PragmaLevel::Deny);
        assert_eq!(u.pragmas[1].span.line, 4);
    }

    #[test]
    fn rejects_dangling_or_malformed_pragmas() {
        // pragma not followed by a unit declaration
        assert!(parse("t.unit", "#[allow(x)]\nbundletype T = { f }").is_err());
        // unknown level word
        assert!(parse("t.unit", "#[forbid(x)]\nunit U = { files { \"u.c\" }; }").is_err());
        // empty lint list
        assert!(parse("t.unit", "#[allow()]\nunit U = { files { \"u.c\" }; }").is_err());
    }

    #[test]
    fn rejects_unit_with_files_and_link() {
        let src = r#"
            unit U = {
                files { "u.c" };
                link { };
            }
        "#;
        assert!(parse("t.unit", src).is_err());
    }

    #[test]
    fn rejects_unit_with_neither() {
        assert!(parse("t.unit", "unit U = { }").is_err());
    }

    #[test]
    fn error_positions_are_useful() {
        let err = parse("t.unit", "unit U = {\n  imports [ x ];\n}").unwrap_err();
        match err {
            KError::Parse { span, .. } => assert_eq!(span.line, 2),
            other => panic!("{other:?}"),
        }
    }
}
