//! Pretty-printer for Knit files.
//!
//! Printing then re-parsing yields the same AST (checked by a property test
//! in `tests/roundtrip.rs`), which keeps the printer honest as the grammar
//! evolves — the paper notes "the syntax continues to evolve as we gain
//! experience".

use std::fmt::Write as _;

use crate::ast::*;

/// Render a whole file.
pub fn print(kf: &KnitFile) -> String {
    let mut out = String::new();
    for d in &kf.decls {
        match d {
            Decl::BundleType(b) => {
                let _ = writeln!(out, "bundletype {} = {{ {} }}", b.name, b.members.join(", "));
            }
            Decl::Flags(f) => {
                let items: Vec<String> = f.flags.iter().map(|s| format!("{s:?}")).collect();
                let _ = writeln!(out, "flags {} = {{ {} }}", f.name, items.join(", "));
            }
            Decl::Property(p) => {
                let _ = writeln!(out, "property {}", p.name);
            }
            Decl::PropValue(v) => {
                if v.below.is_empty() {
                    let _ = writeln!(out, "type {}", v.name);
                } else {
                    let _ = writeln!(out, "type {} < {}", v.name, v.below.join(", "));
                }
            }
            Decl::Unit(u) => print_unit(&mut out, u),
        }
    }
    out
}

fn print_ports(out: &mut String, kw: &str, ports: &[Port]) {
    if ports.is_empty() {
        return;
    }
    let items: Vec<String> =
        ports.iter().map(|p| format!("{} : {}", p.name, p.bundle_type)).collect();
    let _ = writeln!(out, "    {kw} [ {} ];", items.join(", "));
}

fn print_unit(out: &mut String, u: &UnitDecl) {
    for p in &u.pragmas {
        let level = match p.level {
            PragmaLevel::Allow => "allow",
            PragmaLevel::Warn => "warn",
            PragmaLevel::Deny => "deny",
        };
        let _ = writeln!(out, "#[{level}({})]", p.lints.join(", "));
    }
    let _ = writeln!(out, "unit {} = {{", u.name);
    print_ports(out, "imports", &u.imports);
    print_ports(out, "exports", &u.exports);
    match &u.body {
        UnitBody::Atomic(a) => {
            for i in &a.initializers {
                let _ = writeln!(out, "    initializer {} for {};", i.func, i.bundle);
            }
            for i in &a.finalizers {
                let _ = writeln!(out, "    finalizer {} for {};", i.func, i.bundle);
            }
            if !a.depends.is_empty() {
                let _ = writeln!(out, "    depends {{");
                for d in &a.depends {
                    let lhs = match &d.lhs {
                        DepSide::Exports => "exports".to_string(),
                        DepSide::Name(n) => n.clone(),
                    };
                    let rhs: Vec<String> = d
                        .rhs
                        .iter()
                        .map(|a| match a {
                            DepAtom::Imports => "imports".to_string(),
                            DepAtom::Name(n) => n.clone(),
                        })
                        .collect();
                    let _ = writeln!(out, "        {lhs} needs ({});", rhs.join(" + "));
                }
                let _ = writeln!(out, "    }};");
            }
            let files: Vec<String> = a.files.iter().map(|s| format!("{s:?}")).collect();
            match &a.flags {
                Some(fl) => {
                    let _ =
                        writeln!(out, "    files {{ {} }} with flags {};", files.join(", "), fl);
                }
                None => {
                    let _ = writeln!(out, "    files {{ {} }};", files.join(", "));
                }
            }
            if !a.renames.is_empty() {
                let _ = writeln!(out, "    rename {{");
                for r in &a.renames {
                    let _ = writeln!(out, "        {}.{} to {};", r.port, r.member, r.to);
                }
                let _ = writeln!(out, "    }};");
            }
        }
        UnitBody::Compound(c) => {
            let _ = writeln!(out, "    link {{");
            for i in &c.instances {
                let binds: Vec<String> = i
                    .bindings
                    .iter()
                    .map(|(name, p)| match p {
                        PathRef::Name(n) => format!("{name} = {n}"),
                        PathRef::Dotted(a, b) => format!("{name} = {a}.{b}"),
                    })
                    .collect();
                if binds.is_empty() {
                    let _ = writeln!(out, "        {} : {};", i.name, i.unit);
                } else {
                    let _ =
                        writeln!(out, "        {} : {} [ {} ];", i.name, i.unit, binds.join(", "));
                }
            }
            for e in &c.export_bindings {
                let _ = writeln!(out, "        {} = {}.{};", e.export, e.instance, e.port);
            }
            let _ = writeln!(out, "    }};");
        }
    }
    if !u.constraints.is_empty() {
        let _ = writeln!(out, "    constraints {{");
        for c in &u.constraints {
            let _ = writeln!(out, "        {} {} {};", cterm(&c.lhs), op(c.op), cterm(&c.rhs));
        }
        let _ = writeln!(out, "    }};");
    }
    if u.flatten {
        let _ = writeln!(out, "    flatten;");
    }
    let _ = writeln!(out, "}}");
}

fn op(o: COp) -> &'static str {
    match o {
        COp::Eq => "=",
        COp::Le => "<=",
    }
}

fn cterm(t: &CTerm) -> String {
    match t {
        CTerm::Value(v) => v.clone(),
        CTerm::Prop { prop, target } => {
            let t = match target {
                CTarget::Imports => "imports".to_string(),
                CTarget::Exports => "exports".to_string(),
                CTarget::Name(n) => n.clone(),
            };
            format!("{prop}({t})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn print_reparse_is_identity_on_example() {
        let src = r#"
            bundletype Serve = { serve_web }
            flags CFlags = { "-Ioskit/include" }
            property context
            type NoContext
            type ProcessContext < NoContext
            #[allow(unused_import)]
            #[deny(undefined_export)]
            unit Web = {
                imports [ serveFile : Serve ];
                exports [ serveWeb : Serve ];
                initializer boot for serveWeb;
                depends { serveWeb needs (serveFile); };
                files { "web.c" } with flags CFlags;
                rename { serveFile.serve_web to serve_file; };
                constraints { context(exports) <= context(imports); };
            }
            unit Top = {
                exports [ s : Serve ];
                link {
                    w : Web [ serveFile = w.serveWeb ];
                    s = w.serveWeb;
                };
                flatten;
            }
        "#;
        let kf1 = parse("t.unit", src).unwrap();
        let printed = print(&kf1);
        let kf2 = parse("t.unit", &printed).unwrap();
        // spans differ; compare printed forms instead
        assert_eq!(printed, print(&kf2));
        assert_eq!(kf1.decls.len(), kf2.decls.len());
    }
}
