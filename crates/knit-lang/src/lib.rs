//! # knit-lang — front end for the Knit language
//!
//! Knit (OSDI 2000) is "a new component definition and linking language for
//! systems code". This crate provides the language's lexer, AST, parser,
//! and pretty-printer. The semantic work — elaboration of compound units,
//! initializer scheduling, constraint checking, and the build pipeline —
//! lives in the `knit` crate.
//!
//! The concrete syntax follows Figure 5 of the paper:
//!
//! ```text
//! bundletype Serve = { serve_web }
//! flags CFlags = { "-Ioskit/include" }
//!
//! unit Web = {
//!     imports [ serveFile : Serve, serveCGI : Serve ];
//!     exports [ serveWeb : Serve ];
//!     depends { serveWeb needs (serveFile + serveCGI); };
//!     files { "web.c" } with flags CFlags;
//!     rename { serveFile.serve_web to serve_file; };
//! }
//! ```
//!
//! Compound units use a `link` block (the paper truncates its compound-unit
//! syntax; ours names each instance and binds its imports explicitly, which
//! also gives multiple instantiation for free):
//!
//! ```text
//! unit LogServe = {
//!     imports [ serveFile : Serve, serveCGI : Serve, stdio : Stdio ];
//!     exports [ serveLog : Serve ];
//!     link {
//!         web : Web [ serveFile = serveFile, serveCGI = serveCGI ];
//!         log : Log [ serveWeb = web.serveWeb, stdio = stdio ];
//!         serveLog = log.serveLog;
//!     };
//! }
//! ```
//!
//! Properties and architectural constraints follow §4:
//!
//! ```text
//! property context
//! type NoContext
//! type ProcessContext < NoContext
//! ```

pub mod ast;
pub mod error;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::KnitFile;
pub use error::KError;
pub use parser::parse;
pub use printer::print;
