//! Lexer for the Knit component definition and linking language.

use crate::error::KError;

/// 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Line, starting at 1.
    pub line: u32,
    /// Column, starting at 1.
    pub col: u32,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Tokens of the Knit language (syntax per §3.3 of the paper, Figure 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Str(String),
    // keywords
    KwBundletype,
    KwFlags,
    KwProperty,
    KwType,
    KwUnit,
    KwImports,
    KwExports,
    KwDepends,
    KwNeeds,
    KwFiles,
    KwWith,
    KwRename,
    KwTo,
    KwInitializer,
    KwFinalizer,
    KwFor,
    KwLink,
    KwFlatten,
    KwConstraints,
    // punctuation
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Semi,
    Comma,
    Colon,
    Dot,
    Eq,
    Le,
    Lt,
    Plus,
    Hash,
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Tok::Ident(n) => return write!(f, "identifier `{n}`"),
            Tok::Str(_) => return write!(f, "string literal"),
            Tok::KwBundletype => "bundletype",
            Tok::KwFlags => "flags",
            Tok::KwProperty => "property",
            Tok::KwType => "type",
            Tok::KwUnit => "unit",
            Tok::KwImports => "imports",
            Tok::KwExports => "exports",
            Tok::KwDepends => "depends",
            Tok::KwNeeds => "needs",
            Tok::KwFiles => "files",
            Tok::KwWith => "with",
            Tok::KwRename => "rename",
            Tok::KwTo => "to",
            Tok::KwInitializer => "initializer",
            Tok::KwFinalizer => "finalizer",
            Tok::KwFor => "for",
            Tok::KwLink => "link",
            Tok::KwFlatten => "flatten",
            Tok::KwConstraints => "constraints",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Colon => ":",
            Tok::Dot => ".",
            Tok::Eq => "=",
            Tok::Le => "<=",
            Tok::Lt => "<",
            Tok::Plus => "+",
            Tok::Hash => "#",
            Tok::Eof => return write!(f, "end of input"),
        };
        write!(f, "`{s}`")
    }
}

/// A token plus position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "bundletype" => Tok::KwBundletype,
        "flags" => Tok::KwFlags,
        "property" => Tok::KwProperty,
        "type" => Tok::KwType,
        "unit" => Tok::KwUnit,
        "imports" => Tok::KwImports,
        "exports" => Tok::KwExports,
        "depends" => Tok::KwDepends,
        "needs" => Tok::KwNeeds,
        "files" => Tok::KwFiles,
        "with" => Tok::KwWith,
        "rename" => Tok::KwRename,
        "to" => Tok::KwTo,
        "initializer" => Tok::KwInitializer,
        "finalizer" => Tok::KwFinalizer,
        "for" => Tok::KwFor,
        "link" => Tok::KwLink,
        "flatten" => Tok::KwFlatten,
        "constraints" => Tok::KwConstraints,
        _ => return None,
    })
}

/// Lex a Knit source string. `//` and `/* */` comments are skipped.
pub fn lex(file: &str, src: &str) -> Result<Vec<Token>, KError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let (mut i, mut line, mut col) = (0usize, 1u32, 1u32);

    macro_rules! bump {
        () => {{
            if i < b.len() {
                if b[i] == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        let span = Span { line, col };
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                bump!();
            }
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            bump!();
            bump!();
            loop {
                if i + 1 >= b.len() {
                    return Err(KError::lex(file, span, "unterminated block comment"));
                }
                if b[i] == b'*' && b[i + 1] == b'/' {
                    bump!();
                    bump!();
                    break;
                }
                bump!();
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                bump!();
            }
            let s = &src[start..i];
            out.push(Token { tok: keyword(s).unwrap_or_else(|| Tok::Ident(s.to_string())), span });
            continue;
        }
        if c == b'"' {
            bump!();
            let mut text = String::new();
            loop {
                if i >= b.len() {
                    return Err(KError::lex(file, span, "unterminated string literal"));
                }
                match b[i] {
                    b'"' => {
                        bump!();
                        break;
                    }
                    b'\\' => {
                        bump!();
                        if i >= b.len() {
                            return Err(KError::lex(file, span, "unterminated escape"));
                        }
                        let e = match b[i] {
                            b'n' => '\n',
                            b't' => '\t',
                            b'\\' => '\\',
                            b'"' => '"',
                            other => {
                                return Err(KError::lex(
                                    file,
                                    span,
                                    format!("bad escape `\\{}`", other as char),
                                ))
                            }
                        };
                        text.push(e);
                        bump!();
                    }
                    other => {
                        text.push(other as char);
                        bump!();
                    }
                }
            }
            out.push(Token { tok: Tok::Str(text), span });
            continue;
        }
        let tok = match c {
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b';' => Tok::Semi,
            b',' => Tok::Comma,
            b':' => Tok::Colon,
            b'.' => Tok::Dot,
            b'=' => Tok::Eq,
            b'+' => Tok::Plus,
            b'#' => Tok::Hash,
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    bump!();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            other => {
                return Err(KError::lex(
                    file,
                    span,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        bump!();
        out.push(Token { tok, span });
    }
    out.push(Token { tok: Tok::Eof, span: Span { line, col } });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex("t.unit", src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_bundletype_line() {
        assert_eq!(
            toks("bundletype Serve = { serve_web }"),
            vec![
                Tok::KwBundletype,
                Tok::Ident("Serve".into()),
                Tok::Eq,
                Tok::LBrace,
                Tok::Ident("serve_web".into()),
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            toks("a <= b < c + d.e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Lt,
                Tok::Ident("c".into()),
                Tok::Plus,
                Tok::Ident("d".into()),
                Tok::Dot,
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_strings_with_escapes() {
        assert_eq!(
            toks(r#""-Ioskit/include""#),
            vec![Tok::Str("-Ioskit/include".into()), Tok::Eof]
        );
        assert_eq!(toks(r#""a\"b""#), vec![Tok::Str("a\"b".into()), Tok::Eof]);
    }

    #[test]
    fn comments_ignored() {
        assert_eq!(
            toks("unit // a comment\n/* block */ Web"),
            vec![Tok::KwUnit, Tok::Ident("Web".into()), Tok::Eof]
        );
    }

    #[test]
    fn lex_pragma_hash() {
        assert_eq!(
            toks("#[allow(x)]"),
            vec![
                Tok::Hash,
                Tok::LBracket,
                Tok::Ident("allow".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::RBracket,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(lex("t", "\"open").is_err());
        assert!(lex("t", "/*").is_err());
        assert!(lex("t", "@").is_err());
    }
}
