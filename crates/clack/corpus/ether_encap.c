/* EtherEncap: restore the Ethernet header space and write fresh MACs and
 * ethertype for the chosen output link. MACs come from params (12 bytes as
 * 12 ints), ethertype is IP. */
#include "clack.h"

int param_get(int i);
int next_push(struct packet *p);

struct packet { char *data; int len; };

static char macs[12];

void encap_init() {
    for (int i = 0; i < 12; i++) macs[i] = param_get(i);
}

int push(struct packet *p) {
    p->data = p->data - ETHER_HLEN;
    p->len = p->len + ETHER_HLEN;
    for (int i = 0; i < 12; i++) p->data[i] = macs[i];
    pkt_set16(p->data, 12, ETHERTYPE_IP);
    return next_push(p);
}
