#ifndef CLACK_H
#define CLACK_H 1
#define PKT_BUF 1600
#define ETHER_HLEN 14
#define IP_HLEN 20
#define ETHERTYPE_IP 2048
#define ETHERTYPE_ARP 2054

/* Header-inline packet helpers, like Click's: every element that includes
 * this header gets its own (static, inlinable) copy. */
static int pkt_get16(char *p, int off) {
    return ((p[off] & 255) << 8) | (p[off + 1] & 255);
}

static void pkt_set16(char *p, int off, int v) {
    p[off] = (v >> 8) & 255;
    p[off + 1] = v & 255;
}

static int pkt_get32(char *p, int off) {
    return ((p[off] & 255) << 24) | ((p[off + 1] & 255) << 16)
         | ((p[off + 2] & 255) << 8) | (p[off + 3] & 255);
}

static int ip_cksum(char *p, int off, int words) {
    int sum = 0;
    for (int i = 0; i < words; i++) {
        sum += pkt_get16(p, off + i * 2);
    }
    while (sum >> 16) {
        sum = (sum & 65535) + (sum >> 16);
    }
    return (~sum) & 65535;
}
#endif
