/* Drives the router: one step services both input devices. */
int step0();
int step1();

int router_step() {
    int n = 0;
    n += step0();
    n += step1();
    return n;
}
