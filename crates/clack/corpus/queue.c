/* Queue(n): a ring buffer. This simplified push-path queue stores the
 * packet bytes and immediately forwards (store-and-forward cost without a
 * separate pull scheduler). */
#include "clack.h"

int param_get(int i);
int next_push(struct packet *p);
void *memcpy_local(void *d, void *s, int n);

struct packet { char *data; int len; };

static char ring[4][PKT_BUF];
static int head;
static int drops;

void *memcpy_local(void *dst, void *src, int n) {
    char *d = (char*)dst;
    char *s = (char*)src;
    for (int i = 0; i < n; i++) d[i] = s[i];
    return dst;
}

int push(struct packet *p) {
    int slot = head % 4;
    head++;
    int n = p->len;
    memcpy_local(ring[slot], p->data, n);
    struct packet q;
    q.data = ring[slot];
    q.len = n;
    return next_push(&q);
}

int count_value() {
    return drops;
}
