/* SharedQueue: the cross-core hand-off point of the sharded router.
 * Every core's LookupIPRoute pushes into one shared instance per output
 * port, so this unit's statics (lock word, ring, counter) live on shared,
 * bus-coherent lines: the per-core D-caches fight over them, which is
 * exactly the coherence traffic the multi-core bench measures.
 *
 * The mutex is a plain-word spinlock. Scheduling is deterministic
 * round-robin at call granularity (no preemption inside a call), so the
 * lock is never observed held — but acquiring it still write-invalidates
 * the line in every other core's cache. `contended` counts spins, and
 * must stay zero under the round-robin scheduler. */
#include "clack.h"

int next_push(struct packet *p);

struct packet { char *data; int len; };

/* Not `static`: the lock word stays link-visible (mangled `lock_p<inst>`)
 * so race-oracle harnesses can register it by name. The driver mangles it
 * instance-private either way. */
int lock;
static int contended;
static char ring[4][PKT_BUF];
static int head;
static int enqueued;

static void sq_copy(char *d, char *s, int n) {
    for (int i = 0; i < n; i++) d[i] = s[i];
}

int push(struct packet *p) {
    while (lock) { contended++; }
    lock = 1;
    int slot = head % 4;
    head++;
    int n = p->len;
    sq_copy(ring[slot], p->data, n);
    struct packet q;
    q.data = ring[slot];
    q.len = n;
    enqueued++;
    /* Forward while holding the lock: the downstream encap/device chain
     * is shared state too, so the lock serializes the whole egress path. */
    int r = next_push(&q);
    lock = 0;
    return r;
}

int count_value() {
    return enqueued;
}
