/* Discard: consume and count. */
#include "clack.h"

struct packet { char *data; int len; };

static int dropped;

int push(struct packet *p) {
    dropped++;
    return 0;
}

int count_value() {
    return dropped;
}
