/* Discard: consume and count. */
#include "clack.h"

struct packet { char *data; int len; };

/* Deliberately unsynchronized (the unit allows K1009: an approximate
 * drop count is fine). Non-`static` so it stays link-visible and
 * race-oracle harnesses can exempt it by name, mirroring the pragma. */
int dropped;

int push(struct packet *p) {
    dropped++;
    return 0;
}

int count_value() {
    return dropped;
}
