/* Drives one core's shard of the router: services that core's input
 * device once per step. One instance per core, each exporting the Router
 * bundle as `router{c}` from the generated multi-core compound unit. */
int core_step();

int router_step() {
    return core_step();
}
