/* Hand-optimized router input path: the paper's "less modular" rewrite —
 * 24 components' worth of per-packet work merged into one function in
 * idiomatic C, redundant data fetches eliminated by hand. */
#include "clack.h"

int __net_rx(int dev, char *buf, int max);
int __net_poll(int dev);
int out_port0(char *data, int len);
int out_port1(char *data, int len);

static char buf0[PKT_BUF];
static char buf1[PKT_BUF];
static int in_pkts;
static int dropped;

static int handle(char *b, int n) {
    in_pkts++;
    /* classify: ethertype must be IP */
    int ethertype = ((b[12] & 255) << 8) | (b[13] & 255);
    if (ethertype != ETHERTYPE_IP) { dropped++; return 0; }
    /* strip + check ip header, one pass, header fields cached */
    char *ip = b + ETHER_HLEN;
    int iplen = n - ETHER_HLEN;
    if (iplen < IP_HLEN) { dropped++; return 0; }
    if ((ip[0] & 255) != 69) { dropped++; return 0; }
    int totlen = ((ip[2] & 255) << 8) | (ip[3] & 255);
    if (totlen > iplen) { dropped++; return 0; }
    int sum = 0;
    for (int i = 0; i < 10; i++) {
        sum += ((ip[i * 2] & 255) << 8) | (ip[i * 2 + 1] & 255);
    }
    while (sum >> 16) sum = (sum & 65535) + (sum >> 16);
    if ((~sum & 65535) != 0) { dropped++; return 0; }
    /* ttl */
    int ttl = ip[8] & 255;
    if (ttl <= 1) { dropped++; return 0; }
    ip[8] = ttl - 1;
    int ck = (((ip[10] & 255) << 8) | (ip[11] & 255)) + 256;
    ck = (ck & 65535) + (ck >> 16);
    ip[10] = (ck >> 8) & 255;
    ip[11] = ck & 255;
    /* route on dst */
    int dst = ((ip[16] & 255) << 24) | ((ip[17] & 255) << 16)
            | ((ip[18] & 255) << 8) | (ip[19] & 255);
    int net = dst & 4294967040;        /* 255.255.255.0 */
    if (net == 167772416) return out_port0(ip, iplen);   /* 10.0.1.0 */
    if (net == 167772672) return out_port1(ip, iplen);   /* 10.0.2.0 */
    dropped++;
    return 0;
}

int step0() {
    if (__net_poll(0) <= 0) return 0;
    int n = __net_rx(0, buf0, PKT_BUF);
    if (n <= 0) return 0;
    handle(buf0, n);
    return 1;
}

int step1() {
    if (__net_poll(1) <= 0) return 0;
    int n = __net_rx(1, buf1, PKT_BUF);
    if (n <= 0) return 0;
    handle(buf1, n);
    return 1;
}

int router_step() {
    int n = 0;
    n += step0();
    n += step1();
    return n;
}

int in_count() {
    return in_pkts;
}
