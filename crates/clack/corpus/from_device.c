/* FromDevice(dev): poll the NIC, build a packet, push it downstream. */
#include "clack.h"

int __net_rx(int dev, char *buf, int max);
int __net_poll(int dev);
int param_get(int i);
int push(struct packet *p);

struct packet { char *data; int len; };

static char buf[PKT_BUF];
static struct packet pkt;
static int dev;

void from_init() {
    dev = param_get(0);
}

int step() {
    if (__net_poll(dev) <= 0) return 0;
    int n = __net_rx(dev, buf, PKT_BUF);
    if (n <= 0) return 0;
    pkt.data = buf;
    pkt.len = n;
    push(&pkt);
    return 1;
}
