/* Hand-optimized router output path: encapsulation, the store-and-forward
 * ring, and transmit for both ports in one component (the queue semantics
 * of the modular router are preserved — hand optimization merges
 * components, it does not drop functionality). */
#include "clack.h"

int __net_tx(int dev, char *buf, int len);

static char ring0[4][PKT_BUF];
static char ring1[4][PKT_BUF];
static int head0;
static int head1;
static int sent0;
static int sent1;

int out_port0(char *ip, int iplen) {
    char *b = ip - ETHER_HLEN;
    int n = iplen + ETHER_HLEN;
    for (int i = 0; i < 6; i++) b[i] = 16;
    for (int i = 6; i < 12; i++) b[i] = 32;
    b[12] = 8;
    b[13] = 0;
    char *slot = ring0[head0 % 4];
    head0++;
    for (int i = 0; i < n; i++) slot[i] = b[i];
    __net_tx(0, slot, n);
    sent0++;
    return 1;
}

int out_port1(char *ip, int iplen) {
    char *b = ip - ETHER_HLEN;
    int n = iplen + ETHER_HLEN;
    for (int i = 0; i < 6; i++) b[i] = 17;
    for (int i = 6; i < 12; i++) b[i] = 33;
    b[12] = 8;
    b[13] = 0;
    char *slot = ring1[head1 % 4];
    head1++;
    for (int i = 0; i < n; i++) slot[i] = b[i];
    __net_tx(1, slot, n);
    sent1++;
    return 1;
}

int out_count() {
    return sent0 + sent1;
}
