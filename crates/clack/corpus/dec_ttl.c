/* DecIPTTL: decrement TTL, incrementally fixing the checksum (RFC 1624);
 * expired packets exit the second output. */
#include "clack.h"

int next_push(struct packet *p);
int expired_push(struct packet *p);

struct packet { char *data; int len; };

static int expired;

int push(struct packet *p) {
    int ttl = p->data[8] & 255;
    if (ttl <= 1) { expired++; return expired_push(p); }
    p->data[8] = ttl - 1;
    /* incremental checksum update: adding 0x0100 to the sum */
    int sum = pkt_get16(p->data, 10) + 256;
    sum = (sum & 65535) + (sum >> 16);
    pkt_set16(p->data, 10, sum);
    return next_push(p);
}

int count_value() {
    return expired;
}
