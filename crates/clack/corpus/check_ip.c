/* CheckIPHeader: version/length/checksum validation; bad packets exit the
 * second output (usually a Discard). */
#include "clack.h"

int next_push(struct packet *p);
int bad_push(struct packet *p);

struct packet { char *data; int len; };

static int bad;

int push(struct packet *p) {
    if (p->len < IP_HLEN) { bad++; return bad_push(p); }
    int vihl = p->data[0] & 255;
    if (vihl != 69) { bad++; return bad_push(p); }  /* 0x45 */
    int totlen = pkt_get16(p->data, 2);
    if (totlen > p->len) { bad++; return bad_push(p); }
    if (ip_cksum(p->data, 0, 10) != 0) { bad++; return bad_push(p); }
    return next_push(p);
}

int count_value() {
    return bad;
}
