/* Tee: duplicate each packet to two outputs. Like Click's Tee, the copy
 * sent to output 0 is a clone, so downstream modification on one branch
 * cannot corrupt the other. */
#include "clack.h"

int out0_push(struct packet *p);
int out1_push(struct packet *p);

struct packet { char *data; int len; };

static char clone[PKT_BUF];

int push(struct packet *p) {
    int n = p->len;
    char *src = p->data;
    for (int i = 0; i < n; i++) clone[i] = src[i];
    struct packet q;
    q.data = clone;
    q.len = n;
    out0_push(&q);
    return out1_push(p);
}
