/* Counter: count packets and bytes, pass through. */
#include "clack.h"

int next_push(struct packet *p);

struct packet { char *data; int len; };

static int packets;
static int bytes;

int push(struct packet *p) {
    packets++;
    bytes += p->len;
    return next_push(p);
}

int count_value() {
    return packets;
}

int byte_value() {
    return bytes;
}
