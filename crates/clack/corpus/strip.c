/* Strip(n): remove n bytes of header. */
#include "clack.h"

int param_get(int i);
int next_push(struct packet *p);

struct packet { char *data; int len; };

static int n;

void strip_init() {
    n = param_get(0);
}

int push(struct packet *p) {
    p->data = p->data + n;
    p->len = p->len - n;
    return next_push(p);
}
