/* ToDevice(dev): transmit and consume. */
#include "clack.h"

int __net_tx(int dev, char *buf, int len);
int param_get(int i);

struct packet { char *data; int len; };

static int dev;
static int sent;

void to_init() {
    dev = param_get(0);
}

int push(struct packet *p) {
    __net_tx(dev, p->data, p->len);
    sent++;
    return 1;
}

int count_value() {
    return sent;
}
