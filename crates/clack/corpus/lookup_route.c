/* LookupIPRoute: prefix match over a route table cached at init from the
 * param unit; two output ports, third output when no route matches. */
#include "clack.h"

int param_count();
int param_get(int i);
int out0_push(struct packet *p);
int out1_push(struct packet *p);
int nomatch_push(struct packet *p);

struct packet { char *data; int len; };

static int nroutes;
static int addrs[8];
static int masks[8];
static int ports[8];

void route_init() {
    nroutes = param_count() / 3;
    if (nroutes > 8) nroutes = 8;
    for (int i = 0; i < nroutes; i++) {
        addrs[i] = param_get(i * 3) & param_get(i * 3 + 1);
        masks[i] = param_get(i * 3 + 1);
        ports[i] = param_get(i * 3 + 2);
    }
}

int push(struct packet *p) {
    int dst = pkt_get32(p->data, 16);
    for (int i = 0; i < nroutes; i++) {
        if ((dst & masks[i]) == addrs[i]) {
            if (ports[i] == 0) return out0_push(p);
            return out1_push(p);
        }
    }
    return nomatch_push(p);
}
