/* Classifier(offset/value, …): generic pattern interpreter, like Click's.
 * Patterns are cached from the param unit at initialization (Click parses
 * its configuration strings at init time too); the per-packet table walk
 * is what Click's "fast classifier" optimization replaces with
 * straight-line compares. */
#include "clack.h"

int param_count();
int param_get(int i);
int out_match(struct packet *p);
int out_other(struct packet *p);

struct packet { char *data; int len; };

static int npat;
static int offs[8];
static int vals[8];

void classifier_init() {
    npat = param_count() / 2;
    if (npat > 8) npat = 8;
    for (int i = 0; i < npat; i++) {
        offs[i] = param_get(i * 2);
        vals[i] = param_get(i * 2 + 1);
    }
}

int push(struct packet *p) {
    for (int i = 0; i < npat; i++) {
        if (p->len >= offs[i] + 2 && pkt_get16(p->data, offs[i]) == vals[i]) {
            return out_match(p);
        }
    }
    return out_other(p);
}
