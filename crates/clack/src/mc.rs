//! The multi-core router: build and drive the RSS-sharded Clack router
//! on a [`MultiMachine`].
//!
//! The sharded configuration (see [`crate::clackgen::generate_mc`]) gives
//! every simulated core its own input pipeline over its own input device;
//! the pipelines converge on two `SharedQueue` elements whose spinlock,
//! ring, and counters live in shared guest memory, so cores genuinely
//! contend for cache lines on the egress path. [`MultiRouterHarness`]
//! shards incoming frames RSS-style (`rss_hash(frame) % ncores` picks the
//! input device) and drives the cores in the deterministic round-robin
//! order that both interpreter loops must reproduce bit-identically —
//! that determinism is what the lockstep differential tests in
//! `tests/mc.rs` lean on.

use knit::{build, BuildOptions, BuildReport, KnitError, Program, SourceTree};
use machine::{BusStats, ExecMode, Fault, MultiMachine, PerfCounters};

use crate::clackgen;
use crate::packets::{rss_hash, WorkItem};

/// Build inputs for the sharded `ncores`-way router (cf.
/// [`crate::router_build_inputs`]).
pub fn mc_router_build_inputs(
    ncores: usize,
    flatten: bool,
) -> Result<(Program, SourceTree, BuildOptions), KnitError> {
    let kernel = if flatten { "McRouterFlat" } else { "McRouter" };
    let generated = clackgen::generate_mc(ncores, kernel, flatten)
        .map_err(|e| KnitError::BadDeclaration { unit: kernel.into(), what: e })?;
    let mut p = crate::program();
    p.load_str("generated_mc.unit", &generated.unit_text)?;
    let mut t = crate::sources();
    clackgen::install(&generated, &mut t);
    let mut o = BuildOptions::new(kernel, machine::runtime_symbols());
    o.entry = None; // the harness drives router0..routerN-1 directly
    Ok((p, t, o))
}

/// Build the sharded multi-core Clack router for `ncores` cores.
pub fn build_mc_router(ncores: usize, flatten: bool) -> Result<BuildReport, KnitError> {
    let (p, t, o) = mc_router_build_inputs(ncores, flatten)?;
    build(&p, &t, &o)
}

/// One multi-core measurement (a `table_mc` row).
#[derive(Debug, Clone)]
pub struct McMeasurement {
    /// Packets processed in the timed batch.
    pub packets: u64,
    /// Wall-clock cycles per packet: the *slowest core's* cycle delta over
    /// the batch. Cores run concurrently in the machine model (the
    /// round-robin serialization is a simulation artifact), so this is the
    /// number whose inverse scales with core count.
    pub wall_cycles_per_packet: u64,
    /// Total cycles per packet summed over every core — the work metric;
    /// coherence overhead makes it rise with core count.
    pub total_cycles_per_packet: u64,
    /// Bus stall cycles (coherence + write-back) per packet, all cores.
    pub coherence_stalls_per_packet: u64,
    /// Summed counter deltas over the timed batch.
    pub raw_total: PerfCounters,
    /// Per-core counter deltas over the timed batch.
    pub per_core: Vec<PerfCounters>,
    /// Bus transaction counts over the timed batch.
    pub bus: BusStats,
}

/// Drives a built sharded router image on N coherent cores.
pub struct MultiRouterHarness {
    mm: MultiMachine,
    /// Per-core `router{c}.router_step` image function indices, resolved
    /// once so the per-round dispatch is a direct `call_idx_on`.
    entries: Vec<u32>,
}

impl MultiRouterHarness {
    /// Build a harness from a Knit build report (expects root exports
    /// `router0..router{ncores-1}` providing `router_step`).
    pub fn new(report: &BuildReport, ncores: usize) -> Result<MultiRouterHarness, Fault> {
        MultiRouterHarness::with_machine(MultiMachine::new(report.image.clone(), ncores)?, report)
    }

    /// Build a harness over a preconfigured [`MultiMachine`] (custom cost
    /// model or run limits). Runs `__knit_init` on core 0; shared memory
    /// makes the initialized state visible to every core.
    pub fn with_machine(
        mut mm: MultiMachine,
        report: &BuildReport,
    ) -> Result<MultiRouterHarness, Fault> {
        mm.call_on(0, "__knit_init", &[])?;
        let ncores = mm.ncores();
        // input devices 0..ncores-1 (rx side), output ports on devices
        // 0 and 1 (tx side; rx and tx queues are independent)
        mm.ensure_netdevs(ncores.max(2));
        let mut entries = Vec::with_capacity(ncores);
        for c in 0..ncores {
            let key = format!("router{c}.router_step");
            let sym = report
                .exports
                .iter()
                .find(|(k, _)| k.as_str() == key)
                .map(|(_, v)| v.clone())
                .ok_or(Fault::NoSuchFunction(key))?;
            let fi = mm.core(0).image().func_by_name(&sym).ok_or(Fault::NoSuchFunction(sym))?;
            entries.push(fi);
        }
        Ok(MultiRouterHarness { mm, entries })
    }

    /// Number of cores.
    pub fn ncores(&self) -> usize {
        self.entries.len()
    }

    /// Select the interpreter loop on every core.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mm.set_exec_mode(mode);
    }

    /// Shard a frame to its core by RSS hash; returns the chosen device.
    pub fn inject(&mut self, frame: Vec<u8>) -> usize {
        let dev = rss_hash(&frame) as usize % self.ncores();
        self.mm.netdevs[dev].inject(frame);
        dev
    }

    /// Queue a frame on a specific input device (bypasses the RSS hash).
    pub fn inject_to(&mut self, dev: usize, frame: Vec<u8>) {
        self.mm.netdevs[dev].inject(frame);
    }

    /// One scheduling round: each core runs `router_step` once, in core
    /// order — the unit of the deterministic interleaving. Returns the
    /// number of packets processed across all cores.
    pub fn step_round(&mut self) -> Result<i64, Fault> {
        let mut n = 0;
        for c in 0..self.entries.len() {
            n += self.mm.call_idx_on(c, self.entries[c], &[])?;
        }
        Ok(n)
    }

    /// Step rounds until every input device is drained.
    pub fn run_until_idle(&mut self) {
        loop {
            match self.step_round() {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => panic!("sharded router fault: {e}"),
            }
        }
    }

    /// Drain transmitted frames from output port `port` (device `port`'s
    /// tx queue).
    pub fn collect(&mut self, port: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(f) = self.mm.netdevs[port].collect() {
            out.push(f);
        }
        out
    }

    /// Direct access to the underlying machine (counters, bus, memory).
    pub fn machine(&mut self) -> &mut MultiMachine {
        &mut self.mm
    }

    /// Measure steady-state per-packet cost over `work`. The workload's
    /// device assignment is ignored — frames are sharded by RSS hash, as
    /// the NIC would. The first quarter (at least 8 frames) warms caches
    /// on every core; the rest is injected as one batch and drained in
    /// round-robin rounds so the cores genuinely interleave.
    pub fn measure(&mut self, work: &[WorkItem]) -> Result<McMeasurement, Fault> {
        let warmup = (work.len() / 4).clamp(8, 64).min(work.len().saturating_sub(1)).max(1);
        let (warm, timed) = work.split_at(warmup.min(work.len()));
        for (_, pkt) in warm {
            self.inject(pkt.clone());
        }
        while self.step_round()? > 0 {}

        let ncores = self.ncores();
        let before: Vec<PerfCounters> = (0..ncores).map(|c| self.mm.counters(c)).collect();
        let bus_before = self.mm.bus_stats();
        for (_, pkt) in timed {
            self.inject(pkt.clone());
        }
        let mut processed = 0u64;
        loop {
            let n = self.step_round()?;
            if n == 0 {
                break;
            }
            processed += n as u64;
        }

        let per_core: Vec<PerfCounters> =
            (0..ncores).map(|c| self.mm.counters(c).delta_since(&before[c])).collect();
        let mut raw_total = PerfCounters::default();
        let mut wall = 0u64;
        for d in &per_core {
            raw_total.cycles += d.cycles;
            raw_total.instructions += d.instructions;
            raw_total.ifetch_stall_cycles += d.ifetch_stall_cycles;
            raw_total.icache_misses += d.icache_misses;
            raw_total.calls += d.calls;
            raw_total.indirect_calls += d.indirect_calls;
            raw_total.intrinsic_calls += d.intrinsic_calls;
            raw_total.dcache_misses += d.dcache_misses;
            raw_total.coherence_misses += d.coherence_misses;
            raw_total.invalidations += d.invalidations;
            raw_total.bus_stall_cycles += d.bus_stall_cycles;
            wall = wall.max(d.cycles);
        }
        let bus_after = self.mm.bus_stats();
        let packets = processed.max(1);
        Ok(McMeasurement {
            packets: processed,
            wall_cycles_per_packet: wall / packets,
            total_cycles_per_packet: raw_total.cycles / packets,
            coherence_stalls_per_packet: raw_total.bus_stall_cycles / packets,
            raw_total,
            per_core,
            bus: bus_after.delta_since(&bus_before),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packets::{self, WorkloadOptions};

    #[test]
    fn sharded_router_matches_single_core_oracle() {
        // The sharded 2-core router must emit the same multiset of frames
        // per output port as the canonical single-core router, anomalies
        // included — sharding may only change interleaving, never routing.
        let work = packets::workload(&WorkloadOptions {
            count: 96,
            pct_non_ip: 10,
            pct_ttl_expired: 10,
            pct_no_route: 10,
            ..Default::default()
        });
        let single = crate::build_clack_router(&crate::ip_router(), false).unwrap();
        let mut hs = crate::RouterHarness::new(&single).unwrap();
        for (dev, pkt) in &work {
            hs.inject(*dev, pkt.clone());
        }
        hs.run_until_idle();

        let mc = build_mc_router(2, false).unwrap();
        let mut hm = MultiRouterHarness::new(&mc, 2).unwrap();
        for (_, pkt) in &work {
            hm.inject(pkt.clone());
        }
        hm.run_until_idle();

        for port in 0..2 {
            let mut a = hs.collect(port);
            let mut b = hm.collect(port);
            a.sort();
            b.sort();
            assert_eq!(a, b, "port {port} multiset differs from the single-core oracle");
        }
        hm.machine().check_invariants().unwrap();
    }

    #[test]
    fn sharded_router_generates_coherence_traffic() {
        let mc = build_mc_router(2, false).unwrap();
        let mut h = MultiRouterHarness::new(&mc, 2).unwrap();
        let work = packets::workload(&WorkloadOptions { count: 64, ..Default::default() });
        let m = h.measure(&work).unwrap();
        assert!(m.packets >= 32);
        // both cores did real work
        assert!(m.per_core.iter().all(|c| c.instructions > 0), "{:?}", m.per_core);
        // the SharedQueue lines ping-pong between cores
        let total = h.machine().counters_total();
        assert!(total.coherence_misses > 0, "no coherence misses: {total:?}");
        assert!(total.invalidations > 0, "no invalidations: {total:?}");
        assert!(total.bus_stall_cycles > 0);
        h.machine().check_invariants().unwrap();
    }
}
