//! The Click-style baseline (Table 2 of the paper).
//!
//! Click implements router elements as C++ class instances linked by
//! passing object references around; every inter-element hop is a virtual
//! call. This module generates that architecture in mini-C: a generic
//! `struct element` with a `push` function pointer, one translation unit
//! per element *type* (separate compilation, like Click's), and a
//! generated configuration file that wires instances at `click_init` time
//! — "linking via arbitrary run-time code" in the paper's §2.2 taxonomy.
//!
//! It also re-implements MIT's three optimizations ([Kohler et al. 2000],
//! the paper's Table 2 "optimized" row), which — just like the originals —
//! work by *generating specialized source code*:
//!
//! * **fast classifier**: "generates specialized versions of generic
//!   components" — the pattern-table interpreter becomes straight-line
//!   compares;
//! * **specializer**: "makes indirect function calls direct" — per-instance
//!   functions calling their successors by name;
//! * **xform**: "recognizes certain patterns of components and replaces
//!   them with faster ones" — adjacent Strip→CheckIPHeader pairs fuse into
//!   one element.
//!
//! The optimized output is a single translation unit in callee-first order,
//! so the ordinary compiler's inliner finishes the job.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use cobj::{link, Image, LinkInput, LinkOptions};

use crate::graph::{ElemType, Graph};

/// Which MIT optimizations to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClickOpts {
    /// Specialize classifiers to straight-line compares.
    pub fast_classifier: bool,
    /// Devirtualize inter-element calls.
    pub specialize: bool,
    /// Pattern-replace fusable element pairs.
    pub xform: bool,
}

impl ClickOpts {
    /// No optimizations (Table 2's "unoptimized" row).
    pub fn none() -> ClickOpts {
        ClickOpts { fast_classifier: false, specialize: false, xform: false }
    }

    /// All three optimizations (Table 2's "optimized" row).
    pub fn all() -> ClickOpts {
        ClickOpts { fast_classifier: true, specialize: true, xform: true }
    }
}

const CLICK_H: &str = r#"
#ifndef CLICK_H
#define CLICK_H 1
struct packet { char *data; int len; };
struct element {
    int (*push)(struct element *self, struct packet *p);
    struct element *next0;
    struct element *next1;
    struct element *next2;
    int s0;
    int s1;
    int s2;
    int nparams;
    int *params;
    char *buf;
};
/* header-inline helpers, as in real Click */
static int pk_get16(char *p, int off) {
    return ((p[off] & 255) << 8) | (p[off + 1] & 255);
}
static void pk_set16(char *p, int off, int v) {
    p[off] = (v >> 8) & 255;
    p[off + 1] = v & 255;
}
static int pk_get32(char *p, int off) {
    return ((p[off] & 255) << 24) | ((p[off + 1] & 255) << 16)
         | ((p[off + 2] & 255) << 8) | (p[off + 3] & 255);
}
static int pk_cksum(char *p, int off, int words) {
    int sum = 0;
    for (int i = 0; i < words; i++) sum += pk_get16(p, off + i * 2);
    while (sum >> 16) sum = (sum & 65535) + (sum >> 16);
    return (~sum) & 65535;
}
#endif
"#;

/// Generic per-type push code (one separately-compiled file per type, like
/// Click element classes).
fn generic_type_source(ty: ElemType) -> Option<(&'static str, &'static str)> {
    Some(match ty {
        ElemType::Counter => (
            "click_counter.c",
            r#"
#include "click.h"
int counter_push(struct element *self, struct packet *p) {
    self->s0 = self->s0 + 1;
    self->s1 = self->s1 + p->len;
    struct element *n = self->next0;
    return n->push(n, p);
}
"#,
        ),
        ElemType::Classifier => (
            "click_classifier.c",
            r#"
#include "click.h"
int classifier_push(struct element *self, struct packet *p) {
    int npat = self->nparams / 2;
    for (int i = 0; i < npat; i++) {
        int off = self->params[i * 2];
        int val = self->params[i * 2 + 1];
        if (p->len >= off + 2 && pk_get16(p->data, off) == val) {
            struct element *m = self->next0;
            return m->push(m, p);
        }
    }
    struct element *o = self->next1;
    return o->push(o, p);
}
"#,
        ),
        ElemType::Strip => (
            "click_strip.c",
            r#"
#include "click.h"
int strip_push(struct element *self, struct packet *p) {
    p->data = p->data + self->params[0];
    p->len = p->len - self->params[0];
    struct element *n = self->next0;
    return n->push(n, p);
}
"#,
        ),
        ElemType::Unstrip => (
            "click_unstrip.c",
            r#"
#include "click.h"
int unstrip_push(struct element *self, struct packet *p) {
    p->data = p->data - self->params[0];
    p->len = p->len + self->params[0];
    struct element *n = self->next0;
    return n->push(n, p);
}
"#,
        ),
        ElemType::CheckIPHeader => (
            "click_checkip.c",
            r#"
#include "click.h"
int checkip_push(struct element *self, struct packet *p) {
    struct element *bad = self->next1;
    if (p->len < 20) { self->s0++; return bad->push(bad, p); }
    if ((p->data[0] & 255) != 69) { self->s0++; return bad->push(bad, p); }
    if (pk_get16(p->data, 2) > p->len) { self->s0++; return bad->push(bad, p); }
    if (pk_cksum(p->data, 0, 10) != 0) { self->s0++; return bad->push(bad, p); }
    struct element *n = self->next0;
    return n->push(n, p);
}
"#,
        ),
        ElemType::DecIPTTL => (
            "click_decttl.c",
            r#"
#include "click.h"
int decttl_push(struct element *self, struct packet *p) {
    int ttl = p->data[8] & 255;
    if (ttl <= 1) {
        self->s0++;
        struct element *x = self->next1;
        return x->push(x, p);
    }
    p->data[8] = ttl - 1;
    int sum = pk_get16(p->data, 10) + 256;
    sum = (sum & 65535) + (sum >> 16);
    pk_set16(p->data, 10, sum);
    struct element *n = self->next0;
    return n->push(n, p);
}
"#,
        ),
        ElemType::LookupIPRoute => (
            "click_lookup.c",
            r#"
#include "click.h"
int lookup_push(struct element *self, struct packet *p) {
    int dst = pk_get32(p->data, 16);
    int nroutes = self->nparams / 3;
    for (int i = 0; i < nroutes; i++) {
        int addr = self->params[i * 3];
        int mask = self->params[i * 3 + 1];
        int port = self->params[i * 3 + 2];
        if ((dst & mask) == (addr & mask)) {
            if (port == 0) { struct element *a = self->next0; return a->push(a, p); }
            struct element *b = self->next1;
            return b->push(b, p);
        }
    }
    struct element *c = self->next2;
    return c->push(c, p);
}
"#,
        ),
        ElemType::EtherEncap => (
            "click_encap.c",
            r#"
#include "click.h"
int encap_push(struct element *self, struct packet *p) {
    p->data = p->data - 14;
    p->len = p->len + 14;
    for (int i = 0; i < 12; i++) p->data[i] = self->params[i];
    pk_set16(p->data, 12, 2048);
    struct element *n = self->next0;
    return n->push(n, p);
}
"#,
        ),
        ElemType::Queue => (
            "click_queue.c",
            r#"
#include "click.h"
int queue_push(struct element *self, struct packet *p) {
    int slot = self->s0 % 4;
    self->s0 = self->s0 + 1;
    char *dst = self->buf + slot * 1600;
    for (int i = 0; i < p->len; i++) dst[i] = p->data[i];
    struct packet q;
    q.data = dst;
    q.len = p->len;
    struct element *n = self->next0;
    return n->push(n, &q);
}
"#,
        ),
        ElemType::Discard => (
            "click_discard.c",
            r#"
#include "click.h"
int discard_push(struct element *self, struct packet *p) {
    self->s0 = self->s0 + 1;
    return 0;
}
"#,
        ),
        ElemType::Tee => (
            "click_tee.c",
            r#"
#include "click.h"
int tee_push(struct element *self, struct packet *p) {
    char *dst = self->buf;
    for (int i = 0; i < p->len; i++) dst[i] = p->data[i];
    struct packet q;
    q.data = dst;
    q.len = p->len;
    struct element *a = self->next0;
    a->push(a, &q);
    struct element *b = self->next1;
    return b->push(b, p);
}
"#,
        ),
        ElemType::ToDevice => (
            "click_todevice.c",
            r#"
#include "click.h"
int __net_tx(int dev, char *buf, int len);
int todevice_push(struct element *self, struct packet *p) {
    __net_tx(self->s0, p->data, p->len);
    self->s1 = self->s1 + 1;
    return 1;
}
"#,
        ),
        ElemType::FromDevice => return None, // driven by router_step
    })
}

fn type_push_fn(ty: ElemType) -> &'static str {
    match ty {
        ElemType::Counter => "counter_push",
        ElemType::Classifier => "classifier_push",
        ElemType::Strip => "strip_push",
        ElemType::Unstrip => "unstrip_push",
        ElemType::CheckIPHeader => "checkip_push",
        ElemType::DecIPTTL => "decttl_push",
        ElemType::LookupIPRoute => "lookup_push",
        ElemType::EtherEncap => "encap_push",
        ElemType::Queue => "queue_push",
        ElemType::Discard => "discard_push",
        ElemType::Tee => "tee_push",
        ElemType::ToDevice => "todevice_push",
        ElemType::FromDevice => unreachable!("FromDevice has no push"),
    }
}

/// Generate the generic (unoptimized) Click program: per-type sources plus
/// the configuration file.
pub fn generate_generic(graph: &Graph) -> Result<Vec<(String, String)>, String> {
    graph.validate()?;
    let mut files: Vec<(String, String)> = Vec::new();
    files.push(("click.h".into(), CLICK_H.to_string()));
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for e in &graph.elems {
        if let Some((name, src)) = generic_type_source(e.ty) {
            if seen.insert(name) {
                files.push((name.to_string(), src.to_string()));
            }
        }
    }

    // configuration file
    let mut c = String::new();
    let _ = writeln!(c, "#include \"click.h\"");
    let _ = writeln!(c, "int __net_poll(int dev);");
    let _ = writeln!(c, "int __net_rx(int dev, char *buf, int max);");
    for e in &graph.elems {
        if e.ty != ElemType::FromDevice {
            let _ =
                writeln!(c, "int {}(struct element *self, struct packet *p);", type_push_fn(e.ty));
        }
    }
    let n = graph.elems.len();
    let _ = writeln!(c, "struct element elems[{n}];");
    for (i, e) in graph.elems.iter().enumerate() {
        if !e.params.is_empty() {
            let vals: Vec<String> = e.params.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(
                c,
                "static int params_{i}[{}] = {{ {} }};",
                e.params.len(),
                vals.join(", ")
            );
        }
        match e.ty {
            ElemType::FromDevice => {
                let _ = writeln!(c, "static char rxbuf_{i}[1600];");
                let _ = writeln!(c, "static struct packet inpkt_{i};");
            }
            ElemType::Queue => {
                let _ = writeln!(c, "static char qbuf_{i}[6400];");
            }
            ElemType::Tee => {
                let _ = writeln!(c, "static char tbuf_{i}[1600];");
            }
            _ => {}
        }
    }
    let _ = writeln!(c, "void click_init() {{");
    for (i, e) in graph.elems.iter().enumerate() {
        if e.ty != ElemType::FromDevice {
            let _ = writeln!(c, "    elems[{i}].push = {};", type_push_fn(e.ty));
        }
        for port in 0..e.ty.out_ports() {
            let to = graph.target(i, port).expect("validated");
            let _ = writeln!(c, "    elems[{i}].next{port} = &elems[{to}];");
        }
        if !e.params.is_empty() {
            let _ = writeln!(c, "    elems[{i}].nparams = {};", e.params.len());
            let _ = writeln!(c, "    elems[{i}].params = params_{i};");
        }
        match e.ty {
            ElemType::ToDevice | ElemType::FromDevice => {
                let _ = writeln!(c, "    elems[{i}].s0 = {};", e.params[0]);
            }
            ElemType::Queue => {
                let _ = writeln!(c, "    elems[{i}].s0 = 0;");
                let _ = writeln!(c, "    elems[{i}].buf = qbuf_{i};");
            }
            ElemType::Tee => {
                let _ = writeln!(c, "    elems[{i}].buf = tbuf_{i};");
            }
            _ => {}
        }
    }
    let _ = writeln!(c, "}}");

    let _ = writeln!(c, "int router_step() {{");
    let _ = writeln!(c, "    int n = 0;");
    for (i, e) in graph.elems.iter().enumerate() {
        if e.ty != ElemType::FromDevice {
            continue;
        }
        let dev = e.params[0];
        let first = graph.target(i, 0).expect("validated");
        let _ = writeln!(c, "    if (__net_poll({dev}) > 0) {{");
        let _ = writeln!(c, "        int len{i} = __net_rx({dev}, rxbuf_{i}, 1600);");
        let _ = writeln!(c, "        if (len{i} > 0) {{");
        let _ = writeln!(c, "            inpkt_{i}.data = rxbuf_{i};");
        let _ = writeln!(c, "            inpkt_{i}.len = len{i};");
        let _ = writeln!(c, "            struct element *e{i} = &elems[{first}];");
        let _ = writeln!(c, "            e{i}->push(e{i}, &inpkt_{i});");
        let _ = writeln!(c, "            n++;");
        let _ = writeln!(c, "        }}");
        let _ = writeln!(c, "    }}");
    }
    let _ = writeln!(c, "    return n;");
    let _ = writeln!(c, "}}");
    let _ = writeln!(c, "int click_stat(int i) {{ return elems[i].s0; }}");
    files.push(("click_config.c".into(), c));
    Ok(files)
}

/// Generate the optimized Click program: one specialized translation unit.
pub fn generate_optimized(
    graph: &Graph,
    opts: &ClickOpts,
) -> Result<Vec<(String, String)>, String> {
    graph.validate()?;
    let n = graph.elems.len();

    // xform: fuse Strip directly into a following CheckIPHeader.
    let mut fused_into: Vec<Option<usize>> = vec![None; n]; // check idx -> strip idx
    let mut skip: BTreeSet<usize> = BTreeSet::new();
    if opts.xform {
        for (i, e) in graph.elems.iter().enumerate() {
            if e.ty == ElemType::Strip {
                if let Some(t) = graph.target(i, 0) {
                    if graph.elems[t].ty == ElemType::CheckIPHeader {
                        fused_into[t] = Some(i);
                        skip.insert(i);
                    }
                }
            }
        }
    }

    // emission order: callee-first (reverse topological over edges),
    // so the definition-before-use inliner can fire.
    let order = reverse_topo(graph);

    let mut c = String::new();
    let _ = writeln!(
        c,
        "/* generated by the Click optimizer: fast_classifier={} specialize={} xform={} */",
        opts.fast_classifier, opts.specialize, opts.xform
    );
    let _ = writeln!(c, "struct packet {{ char *data; int len; }};");
    let _ = writeln!(c, "int __net_poll(int dev);");
    let _ = writeln!(c, "int __net_rx(int dev, char *buf, int max);");
    let _ = writeln!(c, "int __net_tx(int dev, char *buf, int len);");
    // helpers (static, inlinable)
    let _ = writeln!(
        c,
        r#"
static int pk_get16(char *p, int off) {{
    return ((p[off] & 255) << 8) | (p[off + 1] & 255);
}}
static void pk_set16(char *p, int off, int v) {{
    p[off] = (v >> 8) & 255;
    p[off + 1] = v & 255;
}}
static int pk_get32(char *p, int off) {{
    return ((p[off] & 255) << 24) | ((p[off + 1] & 255) << 16)
         | ((p[off + 2] & 255) << 8) | (p[off + 3] & 255);
}}
"#
    );
    // forward prototypes for every emitted push (cycles are impossible in
    // our router DAG but prototypes keep generation simple)
    for &i in &order {
        if graph.elems[i].ty != ElemType::FromDevice && !skip.contains(&i) {
            let _ = writeln!(c, "static int push_{}(struct packet *p);", graph.elems[i].name);
        }
    }
    // per-instance state
    for (i, e) in graph.elems.iter().enumerate() {
        let nm = &e.name;
        match e.ty {
            ElemType::Counter => {
                let _ = writeln!(c, "static int cnt_{nm}; static int bytes_{nm};");
            }
            ElemType::CheckIPHeader | ElemType::DecIPTTL | ElemType::Discard => {
                let _ = writeln!(c, "static int cnt_{nm};");
            }
            ElemType::ToDevice => {
                let _ = writeln!(c, "static int cnt_{nm};");
            }
            ElemType::Queue => {
                let _ = writeln!(c, "static char qbuf_{nm}[6400]; static int qhead_{nm};");
            }
            ElemType::FromDevice => {
                let _ =
                    writeln!(c, "static char rxbuf_{nm}[1600]; static struct packet inpkt_{nm};");
            }
            ElemType::Tee => {
                let _ = writeln!(c, "static char tbuf_{nm}[1600];");
            }
            _ => {}
        }
        let _ = i;
    }
    // dispatch: direct when specializing, through fn-pointer globals when not
    if !opts.specialize {
        for &i in &order {
            let e = &graph.elems[i];
            if e.ty == ElemType::FromDevice || skip.contains(&i) {
                continue;
            }
            for port in 0..e.ty.out_ports() {
                let to = effective_target(graph, i, port, &skip);
                let _ = writeln!(
                    c,
                    "static int (*vt_{}_{port})(struct packet *p) = &push_{};",
                    e.name, graph.elems[to].name
                );
            }
        }
    }

    let call_next = |graph: &Graph, i: usize, port: usize, skip: &BTreeSet<usize>| -> String {
        let to = effective_target(graph, i, port, skip);
        if opts.specialize {
            format!("push_{}(p)", graph.elems[to].name)
        } else {
            format!("vt_{}_{port}(p)", graph.elems[i].name)
        }
    };

    for &i in &order {
        let e = &graph.elems[i];
        if e.ty == ElemType::FromDevice || skip.contains(&i) {
            continue;
        }
        let nm = &e.name;
        let next0 = || call_next(graph, i, 0, &skip);
        match e.ty {
            ElemType::Counter => {
                let _ = writeln!(
                    c,
                    "static int push_{nm}(struct packet *p) {{\n    cnt_{nm}++;\n    bytes_{nm} += p->len;\n    return {};\n}}",
                    next0()
                );
            }
            ElemType::Classifier => {
                if opts.fast_classifier {
                    // straight-line compares generated from the pattern
                    let mut body = String::new();
                    for pair in e.params.chunks(2) {
                        let _ = writeln!(
                            body,
                            "    if (p->len >= {o} + 2 && pk_get16(p->data, {o}) == {v}) return {m};",
                            o = pair[0],
                            v = pair[1],
                            m = call_next(graph, i, 0, &skip)
                        );
                    }
                    let _ = writeln!(
                        c,
                        "static int push_{nm}(struct packet *p) {{\n{body}    return {};\n}}",
                        call_next(graph, i, 1, &skip)
                    );
                } else {
                    let np = e.params.len();
                    let vals: Vec<String> = e.params.iter().map(|v| v.to_string()).collect();
                    let _ = writeln!(c, "static int pat_{nm}[{np}] = {{ {} }};", vals.join(", "));
                    let _ = writeln!(
                        c,
                        "static int push_{nm}(struct packet *p) {{\n    for (int i = 0; i < {half}; i++) {{\n        int off = pat_{nm}[i * 2];\n        int val = pat_{nm}[i * 2 + 1];\n        if (p->len >= off + 2 && pk_get16(p->data, off) == val) return {m};\n    }}\n    return {o};\n}}",
                        half = np / 2,
                        m = call_next(graph, i, 0, &skip),
                        o = call_next(graph, i, 1, &skip)
                    );
                }
            }
            ElemType::Strip => {
                let _ = writeln!(
                    c,
                    "static int push_{nm}(struct packet *p) {{\n    p->data += {v};\n    p->len -= {v};\n    return {};\n}}",
                    next0(),
                    v = e.params[0]
                );
            }
            ElemType::Unstrip => {
                let _ = writeln!(
                    c,
                    "static int push_{nm}(struct packet *p) {{\n    p->data -= {v};\n    p->len += {v};\n    return {};\n}}",
                    next0(),
                    v = e.params[0]
                );
            }
            ElemType::CheckIPHeader => {
                let pre = match fused_into[i] {
                    Some(s) => format!(
                        "    /* xform: fused Strip({v}) */\n    p->data += {v};\n    p->len -= {v};\n",
                        v = graph.elems[s].params[0]
                    ),
                    None => String::new(),
                };
                let bad = call_next(graph, i, 1, &skip);
                let _ = writeln!(
                    c,
                    r#"static int push_{nm}(struct packet *p) {{
{pre}    if (p->len < 20) {{ cnt_{nm}++; return {bad}; }}
    if ((p->data[0] & 255) != 69) {{ cnt_{nm}++; return {bad}; }}
    if (pk_get16(p->data, 2) > p->len) {{ cnt_{nm}++; return {bad}; }}
    int sum = 0;
    for (int i = 0; i < 10; i++) sum += pk_get16(p->data, i * 2);
    while (sum >> 16) sum = (sum & 65535) + (sum >> 16);
    if ((~sum & 65535) != 0) {{ cnt_{nm}++; return {bad}; }}
    return {ok};
}}"#,
                    ok = next0()
                );
            }
            ElemType::DecIPTTL => {
                let _ = writeln!(
                    c,
                    r#"static int push_{nm}(struct packet *p) {{
    int ttl = p->data[8] & 255;
    if (ttl <= 1) {{ cnt_{nm}++; return {exp}; }}
    p->data[8] = ttl - 1;
    int sum = pk_get16(p->data, 10) + 256;
    sum = (sum & 65535) + (sum >> 16);
    pk_set16(p->data, 10, sum);
    return {ok};
}}"#,
                    exp = call_next(graph, i, 1, &skip),
                    ok = next0()
                );
            }
            ElemType::LookupIPRoute => {
                // specialized: unrolled route compares
                let mut body = String::new();
                let _ = writeln!(body, "    int dst = pk_get32(p->data, 16);");
                for triple in e.params.chunks(3) {
                    let port = if triple[2] == 0 { 0 } else { 1 };
                    let _ = writeln!(
                        body,
                        "    if ((dst & {mask}) == {net}) return {t};",
                        mask = triple[1],
                        net = triple[0] & triple[1],
                        t = call_next(graph, i, port, &skip)
                    );
                }
                let _ = writeln!(
                    c,
                    "static int push_{nm}(struct packet *p) {{\n{body}    return {};\n}}",
                    call_next(graph, i, 2, &skip)
                );
            }
            ElemType::EtherEncap => {
                let mut writes = String::new();
                for (j, b) in e.params.iter().enumerate() {
                    let _ = writeln!(writes, "    p->data[{j}] = {b};");
                }
                let _ = writeln!(
                    c,
                    "static int push_{nm}(struct packet *p) {{\n    p->data -= 14;\n    p->len += 14;\n{writes}    pk_set16(p->data, 12, 2048);\n    return {};\n}}",
                    next0()
                );
            }
            ElemType::Queue => {
                let _ = writeln!(
                    c,
                    r#"static int push_{nm}(struct packet *p) {{
    int slot = qhead_{nm} % 4;
    qhead_{nm}++;
    char *dst = qbuf_{nm} + slot * 1600;
    for (int i = 0; i < p->len; i++) dst[i] = p->data[i];
    struct packet q;
    q.data = dst;
    q.len = p->len;
    struct packet *p2 = &q;
    return {};
}}"#,
                    call_next(graph, i, 0, &skip).replace("(p)", "(p2)")
                );
            }
            ElemType::Discard => {
                let _ = writeln!(
                    c,
                    "static int push_{nm}(struct packet *p) {{\n    cnt_{nm}++;\n    return 0;\n}}"
                );
            }
            ElemType::Tee => {
                let _ = writeln!(
                    c,
                    r#"static int push_{nm}(struct packet *p) {{
    char *dst = tbuf_{nm};
    for (int i = 0; i < p->len; i++) dst[i] = p->data[i];
    struct packet q;
    q.data = dst;
    q.len = p->len;
    struct packet *p2 = &q;
    {clone_call};
    return {orig_call};
}}"#,
                    clone_call = call_next(graph, i, 0, &skip).replace("(p)", "(p2)"),
                    orig_call = call_next(graph, i, 1, &skip)
                );
            }
            ElemType::ToDevice => {
                let _ = writeln!(
                    c,
                    "static int push_{nm}(struct packet *p) {{\n    __net_tx({dev}, p->data, p->len);\n    cnt_{nm}++;\n    return 1;\n}}",
                    dev = e.params[0]
                );
            }
            ElemType::FromDevice => unreachable!(),
        }
    }

    // init (nothing to wire when fully specialized; fn-ptr globals already
    // initialized statically) and driver
    let _ = writeln!(c, "void click_init() {{ }}");
    let _ = writeln!(c, "int router_step() {{");
    let _ = writeln!(c, "    int n = 0;");
    for (i, e) in graph.elems.iter().enumerate() {
        if e.ty != ElemType::FromDevice {
            continue;
        }
        let nm = &e.name;
        let dev = e.params[0];
        let first = effective_target(graph, i, 0, &skip);
        let entry = if opts.specialize {
            format!("push_{}(&inpkt_{nm})", graph.elems[first].name)
        } else {
            // even the driver hop is indirect in unspecialized Click
            format!("vt_from_{nm}(&inpkt_{nm})")
        };
        if !opts.specialize {
            let _ = writeln!(c, "    static int once_{nm};\n    if (!once_{nm}) once_{nm} = 1;");
        }
        let _ = writeln!(c, "    if (__net_poll({dev}) > 0) {{");
        let _ = writeln!(c, "        int len = __net_rx({dev}, rxbuf_{nm}, 1600);");
        let _ = writeln!(c, "        if (len > 0) {{");
        let _ = writeln!(c, "            inpkt_{nm}.data = rxbuf_{nm};");
        let _ = writeln!(c, "            inpkt_{nm}.len = len;");
        let _ = writeln!(c, "            {entry};");
        let _ = writeln!(c, "            n++;");
        let _ = writeln!(c, "        }}");
        let _ = writeln!(c, "    }}");
    }
    let _ = writeln!(c, "    return n;");
    let _ = writeln!(c, "}}");

    // fn-ptr entries for the driver when not specializing
    if !opts.specialize {
        let mut pre = String::new();
        for (i, e) in graph.elems.iter().enumerate() {
            if e.ty == ElemType::FromDevice {
                let first = effective_target(graph, i, 0, &skip);
                let _ = writeln!(
                    pre,
                    "static int (*vt_from_{})(struct packet *p) = &push_{};",
                    e.name, graph.elems[first].name
                );
            }
        }
        // insert before click_init
        c = c.replace("void click_init() {", &format!("{pre}void click_init() {{"));
    }

    Ok(vec![("click_opt.c".into(), c)])
}

/// Follow an edge, skipping xform-fused elements.
fn effective_target(graph: &Graph, from: usize, port: usize, skip: &BTreeSet<usize>) -> usize {
    let mut t = graph.target(from, port).expect("validated");
    while skip.contains(&t) {
        t = graph.target(t, 0).expect("strip has one output");
    }
    t
}

/// Reverse-topological order of elements (sinks first). The router graph
/// is a DAG; any back edge would simply fall back to prototype-based calls.
fn reverse_topo(graph: &Graph) -> Vec<usize> {
    let n = graph.elems.len();
    let mut order = Vec::with_capacity(n);
    let mut emitted = vec![false; n];
    // Kahn over reversed edges: emit elements whose successors are all out.
    loop {
        let mut progressed = false;
        for i in 0..n {
            if emitted[i] {
                continue;
            }
            let ready = (0..graph.elems[i].ty.out_ports())
                .all(|p| graph.target(i, p).map(|t| emitted[t]).unwrap_or(true));
            if ready {
                emitted[i] = true;
                order.push(i);
                progressed = true;
            }
        }
        if !progressed {
            // cycle: emit the rest in index order
            for (i, e) in emitted.iter_mut().enumerate() {
                if !*e {
                    *e = true;
                    order.push(i);
                }
            }
        }
        if order.len() == n {
            break;
        }
    }
    order
}

/// Compile and link a generated Click program into a runnable image.
pub fn build_click_image(files: &[(String, String)]) -> Result<Image, String> {
    let mut tree: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    for (name, text) in files {
        tree.insert(name.clone(), text.clone());
    }
    let opts = cmini::CompileOptions::from_flags(&["-O2"]).expect("valid flags");
    let mut inputs = Vec::new();
    for (name, text) in files {
        if !name.ends_with(".c") {
            continue;
        }
        let obj = cmini::compile(name, text, &opts, &tree).map_err(|e| e.to_string())?;
        inputs.push(LinkInput::Object(obj));
    }
    link(
        &inputs,
        &LinkOptions {
            entry: None,
            runtime_symbols: machine::runtime_symbols().collect(),
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())
}

/// Build the Click router (generic or optimized) for a graph.
pub fn build_click_router(graph: &Graph, opts: Option<ClickOpts>) -> Result<Image, String> {
    let files = match opts {
        None => generate_generic(graph)?,
        Some(o) if o == ClickOpts::none() => generate_generic(graph)?,
        Some(o) => generate_optimized(graph, &o)?,
    };
    build_click_image(&files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ip_router;
    use crate::harness::RouterHarness;
    use crate::packets::{self, WorkloadOptions};

    fn harness(image: Image) -> RouterHarness {
        RouterHarness::from_image(image, Some("click_init"), "router_step").unwrap()
    }

    #[test]
    fn generic_click_routes_packets() {
        let img = build_click_router(&ip_router(), None).unwrap();
        let mut h = harness(img);
        let pkt = packets::ip_packet(0x0A000301, packets::NET1 | 3, 9, &[5; 16]);
        h.inject(0, pkt);
        h.run_until_idle();
        let out = h.collect(1);
        assert_eq!(out.len(), 1);
        assert_eq!(packets::frame_ttl(&out[0]), Some(8));
        assert!(packets::frame_checksum_ok(&out[0]));
    }

    #[test]
    fn optimized_click_matches_generic_output() {
        let generic = build_click_router(&ip_router(), None).unwrap();
        let optimized = build_click_router(&ip_router(), Some(ClickOpts::all())).unwrap();
        let work = packets::workload(&WorkloadOptions {
            count: 64,
            pct_non_ip: 10,
            pct_ttl_expired: 10,
            pct_no_route: 5,
            ..Default::default()
        });
        let mut hg = harness(generic);
        let mut ho = harness(optimized);
        for (dev, p) in &work {
            hg.inject(*dev, p.clone());
            ho.inject(*dev, p.clone());
        }
        hg.run_until_idle();
        ho.run_until_idle();
        assert_eq!(hg.collect(0), ho.collect(0));
        assert_eq!(hg.collect(1), ho.collect(1));
    }

    #[test]
    fn optimized_click_is_much_faster() {
        let generic = build_click_router(&ip_router(), None).unwrap();
        let optimized = build_click_router(&ip_router(), Some(ClickOpts::all())).unwrap();
        let work = packets::workload(&WorkloadOptions { count: 128, ..Default::default() });
        let mg = harness(generic).measure(&work).unwrap();
        let mo = harness(optimized).measure(&work).unwrap();
        assert!(
            mo.cycles_per_packet * 10 < mg.cycles_per_packet * 9,
            "optimized {} should be well under generic {}",
            mo.cycles_per_packet,
            mg.cycles_per_packet
        );
    }

    #[test]
    fn generic_click_uses_indirect_calls_optimized_does_not() {
        let work = packets::workload(&WorkloadOptions { count: 16, ..Default::default() });
        let mut hg = harness(build_click_router(&ip_router(), None).unwrap());
        hg.measure(&work).unwrap();
        assert!(hg.machine().counters().indirect_calls > 0);

        let mut ho = harness(build_click_router(&ip_router(), Some(ClickOpts::all())).unwrap());
        ho.measure(&work).unwrap();
        assert_eq!(ho.machine().counters().indirect_calls, 0);
    }

    #[test]
    fn individual_optimizations_each_help() {
        let work = packets::workload(&WorkloadOptions { count: 96, ..Default::default() });
        let cycles = |opts: Option<ClickOpts>| {
            let img = build_click_router(&ip_router(), opts).unwrap();
            harness(img).measure(&work).unwrap().cycles_per_packet
        };
        let base = cycles(None);
        let spec_only =
            cycles(Some(ClickOpts { fast_classifier: false, specialize: true, xform: false }));
        let all = cycles(Some(ClickOpts::all()));
        assert!(spec_only < base, "specializer helps: {spec_only} vs {base}");
        assert!(all <= spec_only, "all opts at least as good: {all} vs {spec_only}");
    }
}
