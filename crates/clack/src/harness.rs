//! The measurement harness: stands in for the paper's two edge machines
//! blasting packets at the router in the middle.
//!
//! Table 1 measures "number of cycles from the moment a packet enters the
//! router graph to the moment it leaves". [`RouterHarness::measure`]
//! reproduces the methodology: warm the caches with a few packets, then
//! time a batch and report per-packet cycles, instruction-fetch stall
//! cycles, and the image's text size.

use cobj::Image;
use knit::BuildReport;
use machine::{Fault, Machine, PerfCounters};

use crate::packets::WorkItem;

/// Per-packet measurement results (one Table 1 row).
#[derive(Debug, Clone, Copy)]
pub struct RouterMeasurement {
    /// Cycles per packet, steady-state.
    pub cycles_per_packet: u64,
    /// Instruction-fetch stall cycles per packet.
    pub ifetch_stalls_per_packet: u64,
    /// Text size of the router image in bytes.
    pub text_size: u64,
    /// Packets measured.
    pub packets: u64,
    /// Raw counter deltas over the measured batch.
    pub raw: PerfCounters,
}

/// Drives a built router image.
pub struct RouterHarness {
    machine: Machine,
    /// `router_step`'s image function index, resolved once at construction
    /// so the per-packet [`RouterHarness::step`] is a direct `call_idx` —
    /// no name lookup, no `String` clone on the hot path.
    entry: u32,
}

impl RouterHarness {
    /// Build a harness from a Knit build report (expects a root export
    /// providing `router_step`).
    pub fn new(report: &BuildReport) -> Result<RouterHarness, Fault> {
        let entry = report
            .exports
            .iter()
            .find(|(k, _)| k.ends_with(".router_step"))
            .map(|(_, v)| v.clone())
            .ok_or_else(|| Fault::NoSuchFunction("router_step".into()))?;
        let mut machine = Machine::new(report.image.clone())?;
        machine.call("__knit_init", &[])?;
        let entry = machine.image().func_by_name(&entry).ok_or(Fault::NoSuchFunction(entry))?;
        Ok(RouterHarness { machine, entry })
    }

    /// Build a harness from a raw image whose `router_step` and optional
    /// `click_init` are link-level symbols (the Click baseline path).
    pub fn from_image(
        image: Image,
        init: Option<&str>,
        entry: &str,
    ) -> Result<RouterHarness, Fault> {
        let mut machine = Machine::new(image)?;
        if let Some(f) = init {
            machine.call(f, &[])?;
        }
        let entry = machine
            .image()
            .func_by_name(entry)
            .ok_or_else(|| Fault::NoSuchFunction(entry.to_string()))?;
        Ok(RouterHarness { machine, entry })
    }

    /// Queue a frame on input device `dev`.
    pub fn inject(&mut self, dev: usize, frame: Vec<u8>) {
        self.machine.netdevs[dev].inject(frame);
    }

    /// One router step (services each input device once). Returns the
    /// number of packets processed.
    pub fn step(&mut self) -> Result<i64, Fault> {
        self.machine.call_idx(self.entry, &[])
    }

    /// Step until no input remains.
    pub fn run_until_idle(&mut self) {
        loop {
            match self.step() {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => panic!("router fault: {e}"),
            }
        }
    }

    /// Drain transmitted frames from output device `dev`.
    pub fn collect(&mut self, dev: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(f) = self.machine.netdevs[dev].collect() {
            out.push(f);
        }
        out
    }

    /// Direct access to the underlying machine (for counters, consoles).
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Measure steady-state per-packet cost over `work`: the first quarter
    /// (at least 8 packets) warms the I-cache, the rest is timed.
    pub fn measure(&mut self, work: &[WorkItem]) -> Result<RouterMeasurement, Fault> {
        let warmup = (work.len() / 4).clamp(1, 64).min(work.len().saturating_sub(1)).max(1);
        let (warm, timed) = work.split_at(warmup.min(work.len()));
        for (dev, pkt) in warm {
            self.inject(*dev, pkt.clone());
            while self.step()? > 0 {}
        }
        let before = self.machine.counters();
        let mut processed = 0u64;
        for (dev, pkt) in timed {
            self.inject(*dev, pkt.clone());
            loop {
                let n = self.step()?;
                if n == 0 {
                    break;
                }
                processed += n as u64;
            }
        }
        let delta = self.machine.counters().delta_since(&before);
        let packets = processed.max(1);
        Ok(RouterMeasurement {
            cycles_per_packet: delta.cycles / packets,
            ifetch_stalls_per_packet: delta.ifetch_stall_cycles / packets,
            text_size: self.machine.image().text_size,
            packets,
            raw: delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packets::{self, WorkloadOptions};

    #[test]
    fn measure_reports_sane_numbers() {
        let report = crate::build_hand_router(false).unwrap();
        let mut h = RouterHarness::new(&report).unwrap();
        let work = packets::workload(&WorkloadOptions { count: 64, ..Default::default() });
        let m = h.measure(&work).unwrap();
        assert!(m.cycles_per_packet > 100, "routers do real work: {}", m.cycles_per_packet);
        assert!(m.packets >= 32);
        assert!(m.text_size > 0);
        assert!(m.raw.cycles > 0);
    }

    #[test]
    fn warm_measurement_is_stable() {
        let report = crate::build_hand_router(false).unwrap();
        let work = packets::workload(&WorkloadOptions { count: 200, ..Default::default() });
        let mut h = RouterHarness::new(&report).unwrap();
        let a = h.measure(&work).unwrap();
        let mut h2 = RouterHarness::new(&report).unwrap();
        let b = h2.measure(&work).unwrap();
        assert_eq!(a.cycles_per_packet, b.cycles_per_packet, "deterministic machine");
    }
}
