//! Packet construction and the benchmark workload generator.
//!
//! The paper's testbed pushed real Ethernet/IP traffic through the router;
//! here the harness builds simulated Ethernet+IPv4 frames, injects them
//! into the machine's net devices, and inspects what comes out.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Ethernet header length.
pub const ETHER_HLEN: usize = 14;
/// IPv4 header length (no options).
pub const IP_HLEN: usize = 20;
/// Ethertype for IPv4.
pub const ETHERTYPE_IP: u16 = 0x0800;
/// Ethertype for ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;

/// Network 10.0.1.0/24 — routed to port 0.
pub const NET0: u32 = 0x0A00_0100;
/// Network 10.0.2.0/24 — routed to port 1.
pub const NET1: u32 = 0x0A00_0200;
/// The /24 netmask.
pub const MASK24: u32 = 0xFFFF_FF00;

/// Compute the IPv4 header checksum over `IP_HLEN` bytes at `off`.
pub fn ip_checksum(buf: &[u8], off: usize) -> u16 {
    let mut sum: u32 = 0;
    for i in 0..IP_HLEN / 2 {
        sum += u32::from(u16::from_be_bytes([buf[off + 2 * i], buf[off + 2 * i + 1]]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Build an Ethernet+IPv4 frame.
pub fn ip_packet(src: u32, dst: u32, ttl: u8, payload: &[u8]) -> Vec<u8> {
    let total = IP_HLEN + payload.len();
    let mut b = vec![0u8; ETHER_HLEN + total];
    // ethernet
    b[..6].copy_from_slice(&[2, 0, 0, 0, 0, 1]);
    b[6..12].copy_from_slice(&[2, 0, 0, 0, 0, 2]);
    b[12..14].copy_from_slice(&ETHERTYPE_IP.to_be_bytes());
    // ip
    let ip = ETHER_HLEN;
    b[ip] = 0x45;
    b[ip + 1] = 0;
    b[ip + 2..ip + 4].copy_from_slice(&(total as u16).to_be_bytes());
    b[ip + 8] = ttl;
    b[ip + 9] = 17; // udp-ish
    b[ip + 12..ip + 16].copy_from_slice(&src.to_be_bytes());
    b[ip + 16..ip + 20].copy_from_slice(&dst.to_be_bytes());
    let ck = ip_checksum(&b, ip);
    b[ip + 10..ip + 12].copy_from_slice(&ck.to_be_bytes());
    b[ip + IP_HLEN..].copy_from_slice(payload);
    b
}

/// Build a non-IP (ARP) frame, which the router's classifier discards.
pub fn arp_packet() -> Vec<u8> {
    let mut b = vec![0u8; ETHER_HLEN + 28];
    b[12..14].copy_from_slice(&ETHERTYPE_ARP.to_be_bytes());
    b
}

/// Read a frame's IPv4 TTL.
pub fn frame_ttl(frame: &[u8]) -> Option<u8> {
    frame.get(ETHER_HLEN + 8).copied()
}

/// Read a frame's IPv4 destination address.
pub fn frame_dst(frame: &[u8]) -> Option<u32> {
    let b = frame.get(ETHER_HLEN + 16..ETHER_HLEN + 20)?;
    Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

/// Verify a frame's IPv4 header checksum.
pub fn frame_checksum_ok(frame: &[u8]) -> bool {
    frame.len() >= ETHER_HLEN + IP_HLEN && ip_checksum(frame, ETHER_HLEN) == 0
}

/// RSS-style flow hash: FNV-1a over the IPv4 source/destination addresses
/// (the flow identity receive-side scaling steers by), falling back to the
/// whole frame for non-IP traffic. Deterministic, so a flow always lands
/// on the same core; `rss_hash(frame) % ncores` picks the input device of
/// the sharded router.
pub fn rss_hash(frame: &[u8]) -> u32 {
    fn fnv(mut h: u32, bytes: &[u8]) -> u32 {
        for &b in bytes {
            h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
        }
        h
    }
    // final avalanche: plain FNV's low bits are weak for short keys (the
    // shard index is `h % ncores`), so fold the high bits down
    fn fmix(mut h: u32) -> u32 {
        h ^= h >> 16;
        h = h.wrapping_mul(0x85eb_ca6b);
        h ^= h >> 13;
        h = h.wrapping_mul(0xc2b2_ae35);
        h ^ (h >> 16)
    }
    let h = 0x811c_9dc5;
    if frame.len() >= ETHER_HLEN + IP_HLEN && frame[12..14] == ETHERTYPE_IP.to_be_bytes() {
        fmix(fnv(h, &frame[ETHER_HLEN + 12..ETHER_HLEN + 20]))
    } else {
        fmix(fnv(h, frame))
    }
}

/// One workload item: (input device, frame bytes).
pub type WorkItem = (usize, Vec<u8>);

/// Options for the workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadOptions {
    /// Number of frames.
    pub count: usize,
    /// RNG seed (workloads are reproducible).
    pub seed: u64,
    /// Fraction (0..=100) of non-IP frames the classifier must discard.
    pub pct_non_ip: u32,
    /// Fraction (0..=100) of frames with TTL 1 (expired at the router).
    pub pct_ttl_expired: u32,
    /// Fraction (0..=100) of frames to unrouted destinations.
    pub pct_no_route: u32,
    /// Payload size in bytes.
    pub payload: usize,
}

impl Default for WorkloadOptions {
    fn default() -> Self {
        WorkloadOptions {
            count: 256,
            seed: 0x6b6e6974, // "knit"
            pct_non_ip: 0,
            pct_ttl_expired: 0,
            pct_no_route: 0,
            payload: 40,
        }
    }
}

/// Generate a reproducible routing workload: frames alternate between the
/// two input devices with destinations spread across the two routed
/// networks (and optional anomalies).
pub fn workload(opts: &WorkloadOptions) -> Vec<WorkItem> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut out = Vec::with_capacity(opts.count);
    let payload: Vec<u8> = (0..opts.payload).map(|i| i as u8).collect();
    for i in 0..opts.count {
        let dev = i % 2;
        let roll: u32 = rng.random_range(0..100);
        if roll < opts.pct_non_ip {
            out.push((dev, arp_packet()));
            continue;
        }
        let ttl = if roll < opts.pct_non_ip + opts.pct_ttl_expired {
            1
        } else {
            16 + rng.random_range(0..32) as u8
        };
        let dst = if roll < opts.pct_non_ip + opts.pct_ttl_expired + opts.pct_no_route {
            0xC0A8_0101 // 192.168.1.1 — not in the table
        } else if rng.random_bool(0.5) {
            NET0 | rng.random_range(1..255)
        } else {
            NET1 | rng.random_range(1..255)
        };
        let src = 0x0A00_0300 | rng.random_range(1..255);
        out.push((dev, ip_packet(src, dst, ttl, &payload)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_round_trip() {
        let p = ip_packet(0x0A000301, NET0 | 7, 64, &[1, 2, 3, 4]);
        assert!(frame_checksum_ok(&p));
        assert_eq!(frame_ttl(&p), Some(64));
        assert_eq!(frame_dst(&p), Some(NET0 | 7));
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut p = ip_packet(1, NET1 | 9, 8, &[0; 8]);
        p[ETHER_HLEN + 10] ^= 0xff;
        assert!(!frame_checksum_ok(&p));
    }

    #[test]
    fn workload_is_reproducible_and_split() {
        let opts = WorkloadOptions { count: 100, ..Default::default() };
        let a = workload(&opts);
        let b = workload(&opts);
        assert_eq!(a, b);
        let dev0 = a.iter().filter(|(d, _)| *d == 0).count();
        assert_eq!(dev0, 50);
        // destinations split between both networks
        let to0 = a
            .iter()
            .filter(|(_, f)| frame_dst(f).map(|d| d & MASK24 == NET0).unwrap_or(false))
            .count();
        assert!(to0 > 10 && to0 < 90, "to0 = {to0}");
    }

    #[test]
    fn rss_hash_is_deterministic_and_spreads_flows() {
        let a = ip_packet(0x0A000301, NET0 | 7, 64, &[0; 8]);
        assert_eq!(rss_hash(&a), rss_hash(&a));
        // distinct flows spread across 4 shards
        let mut shards = [0usize; 4];
        for host in 1..64u32 {
            let p = ip_packet(0x0A000300 | host, NET1 | host, 16, &[0; 8]);
            shards[(rss_hash(&p) % 4) as usize] += 1;
        }
        assert!(shards.iter().all(|&n| n > 4), "shards = {shards:?}");
        // non-IP frames hash too (over the whole frame)
        assert_eq!(rss_hash(&arp_packet()), rss_hash(&arp_packet()));
    }

    #[test]
    fn anomalies_present_when_requested() {
        let opts = WorkloadOptions {
            count: 200,
            pct_non_ip: 20,
            pct_ttl_expired: 20,
            pct_no_route: 10,
            ..Default::default()
        };
        let w = workload(&opts);
        let arps = w.iter().filter(|(_, f)| f[12..14] == ETHERTYPE_ARP.to_be_bytes()).count();
        let expired = w.iter().filter(|(_, f)| frame_ttl(f) == Some(1)).count();
        assert!(arps > 10, "arps = {arps}");
        assert!(expired > 10, "expired = {expired}");
    }
}
