//! Clack realization: a configuration [`Graph`] → Knit units.
//!
//! Element code is fixed (the units in `corpus/elements.unit`); per-element
//! parameters become generated "trivial components that provide
//! initialization data" (§5.2), and the graph's wiring becomes a generated
//! compound unit. "The rapid deployment of new configurations" is a
//! `Graph` → `generate` → `knit::build` round trip.

use knit::SourceTree;

use crate::graph::{ElemType, Graph};

/// What the generator produced: text to append to the Knit program and
/// files to add to the source tree.
pub struct Generated {
    /// `.unit` source declaring the param units and the router compound.
    pub unit_text: String,
    /// Generated parameter C sources.
    pub sources: Vec<(String, String)>,
    /// The compound unit's name.
    pub kernel: String,
}

/// Generate the Knit configuration for `graph` as compound unit `kernel`.
/// With `flatten`, the whole router becomes one flattening group (§6).
pub fn generate(graph: &Graph, kernel: &str, flatten: bool) -> Result<Generated, String> {
    graph.validate()?;
    let mut unit_text = String::new();
    let mut sources = Vec::new();

    // --- param units ---
    for e in &graph.elems {
        if !e.ty.takes_params() {
            continue;
        }
        let file = format!("p_{}.c", e.name);
        sources.push((file.clone(), param_source(&e.params)));
        unit_text.push_str(&format!(
            "unit P_{name} = {{\n    exports [ params : Params ];\n    files {{ \"{file}\" }} with flags ClackFlags;\n}}\n\n",
            name = e.name,
        ));
    }

    // --- the compound unit ---
    unit_text
        .push_str(&format!("unit {kernel} = {{\n    exports [ router : Router ];\n    link {{\n"));
    for e in &graph.elems {
        if e.ty.takes_params() {
            unit_text.push_str(&format!("        p_{0} : P_{0};\n", e.name));
        }
    }
    let mut from_devices = Vec::new();
    for (i, e) in graph.elems.iter().enumerate() {
        let mut binds: Vec<String> = Vec::new();
        for port in 0..e.ty.out_ports() {
            let to = graph.target(i, port).expect("validated");
            let binding = e.ty.out_port_binding(port);
            // Push consumers export their input port as `in`
            binds.push(format!("{binding} = {}.in", graph.elems[to].name));
        }
        if e.ty.takes_params() {
            binds.push(format!("params = p_{}.params", e.name));
        }
        if e.ty == ElemType::FromDevice {
            from_devices.push(e.name.clone());
        }
        if binds.is_empty() {
            unit_text.push_str(&format!("        {} : {};\n", e.name, e.ty.unit_name()));
        } else {
            unit_text.push_str(&format!(
                "        {} : {} [ {} ];\n",
                e.name,
                e.ty.unit_name(),
                binds.join(", ")
            ));
        }
    }
    if from_devices.len() != 2 {
        return Err(format!(
            "the RouterDriver expects exactly two FromDevice elements, found {}",
            from_devices.len()
        ));
    }
    unit_text.push_str(&format!(
        "        drv : RouterDriver [ in0 = {}.src, in1 = {}.src ];\n",
        from_devices[0], from_devices[1]
    ));
    unit_text.push_str("        router = drv.router;\n    };\n");
    if flatten {
        unit_text.push_str("    flatten;\n");
    }
    unit_text.push_str("}\n");

    Ok(Generated { unit_text, sources, kernel: kernel.to_string() })
}

/// Generate the sharded multi-core router as compound unit `kernel`
/// (DESIGN.md §8): one input pipeline per core (FromDevice(c) → Counter →
/// Classifier → Strip → CheckIPHeader → DecIPTTL → LookupIPRoute, fresh
/// instances via Knit multiple instantiation), converging on two
/// [`SharedQueue`] instances whose state lives in shared, bus-coherent
/// memory, then a single egress chain per output port (EtherEncap →
/// Counter → ToDevice). Exports `router0..router{ncores-1}`, one Router
/// bundle per core, so the harness can drive each core's shard
/// independently under the round-robin scheduler.
pub fn generate_mc(ncores: usize, kernel: &str, flatten: bool) -> Result<Generated, String> {
    use crate::graph::mac_params;
    use crate::packets::{MASK24, NET0, NET1};

    if ncores < 1 {
        return Err("a sharded router needs at least one core".to_string());
    }
    let mut unit_text = String::new();
    let mut sources = Vec::new();
    let mut param_unit = |name: &str, params: &[i64], unit_text: &mut String| {
        let file = format!("p_{name}.c");
        sources.push((file.clone(), param_source(params)));
        unit_text.push_str(&format!(
            "unit P_{name} = {{\n    exports [ params : Params ];\n    files {{ \"{file}\" }} with flags ClackFlags;\n}}\n\n",
        ));
    };

    // --- param units: per-core ingress, shared egress ---
    let route = [NET0 as i64, MASK24 as i64, 0, NET1 as i64, MASK24 as i64, 1];
    for c in 0..ncores {
        param_unit(&format!("from{c}"), &[c as i64], &mut unit_text);
        param_unit(&format!("cls{c}"), &[12, 0x0800], &mut unit_text);
        param_unit(&format!("strip{c}"), &[14], &mut unit_text);
        param_unit(&format!("rt{c}"), &route, &mut unit_text);
    }
    param_unit("enc0", &mac_params(0), &mut unit_text);
    param_unit("enc1", &mac_params(1), &mut unit_text);
    param_unit("to0", &[0], &mut unit_text);
    param_unit("to1", &[1], &mut unit_text);

    // --- the compound unit ---
    let exports: Vec<String> = (0..ncores).map(|c| format!("router{c} : Router")).collect();
    unit_text.push_str(&format!(
        "unit {kernel} = {{\n    exports [ {} ];\n    link {{\n",
        exports.join(", ")
    ));
    for c in 0..ncores {
        for p in ["from", "cls", "strip", "rt"] {
            unit_text.push_str(&format!("        p_{p}{c} : P_{p}{c};\n"));
        }
    }
    for p in ["enc0", "enc1", "to0", "to1"] {
        unit_text.push_str(&format!("        p_{p} : P_{p};\n"));
    }
    // shared egress: SharedQueue → EtherEncap → Counter → ToDevice per port
    for port in 0..2 {
        unit_text.push_str(&format!("        sq{port} : SharedQueue [ out = enc{port}.in ];\n"));
        unit_text.push_str(&format!(
            "        enc{port} : EtherEncap [ out = cout{port}.in, params = p_enc{port}.params ];\n"
        ));
        unit_text.push_str(&format!("        cout{port} : Counter [ out = to{port}.in ];\n"));
        unit_text
            .push_str(&format!("        to{port} : ToDevice [ params = p_to{port}.params ];\n"));
    }
    for d in ["d_cls", "d_chk", "d_ttl", "d_rt"] {
        unit_text.push_str(&format!("        {d} : Discard;\n"));
    }
    // per-core ingress pipelines and drivers
    for c in 0..ncores {
        unit_text.push_str(&format!(
            "        from{c} : FromDevice [ out = cin{c}.in, params = p_from{c}.params ];\n"
        ));
        unit_text.push_str(&format!("        cin{c} : Counter [ out = cls{c}.in ];\n"));
        unit_text.push_str(&format!(
            "        cls{c} : Classifier [ out0 = strip{c}.in, out1 = d_cls.in, params = p_cls{c}.params ];\n"
        ));
        unit_text.push_str(&format!(
            "        strip{c} : Strip [ out = chk{c}.in, params = p_strip{c}.params ];\n"
        ));
        unit_text.push_str(&format!(
            "        chk{c} : CheckIPHeader [ out = ttl{c}.in, bad = d_chk.in ];\n"
        ));
        unit_text.push_str(&format!(
            "        ttl{c} : DecIPTTL [ out = rt{c}.in, expired = d_ttl.in ];\n"
        ));
        unit_text.push_str(&format!(
            "        rt{c} : LookupIPRoute [ out0 = sq0.in, out1 = sq1.in, nomatch = d_rt.in, params = p_rt{c}.params ];\n"
        ));
        unit_text.push_str(&format!("        drv{c} : CoreDriver [ in = from{c}.src ];\n"));
    }
    for c in 0..ncores {
        unit_text.push_str(&format!("        router{c} = drv{c}.router;\n"));
    }
    unit_text.push_str("    };\n");
    if flatten {
        unit_text.push_str("    flatten;\n");
    }
    unit_text.push_str("}\n");

    Ok(Generated { unit_text, sources, kernel: kernel.to_string() })
}

/// C source of a parameter unit.
fn param_source(params: &[i64]) -> String {
    let n = params.len();
    if n == 0 {
        return "int param_count() { return 0; }\nint param_get(int i) { return 0; }\n".to_string();
    }
    let vals: Vec<String> = params.iter().map(|v| v.to_string()).collect();
    format!(
        "static int vals[{n}] = {{ {} }};\nint param_count() {{ return {n}; }}\nint param_get(int i) {{ return vals[i]; }}\n",
        vals.join(", ")
    )
}

/// Add the generated sources to a tree.
pub fn install(gen: &Generated, tree: &mut SourceTree) {
    for (path, text) in &gen.sources {
        tree.add(path, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ip_router;

    #[test]
    fn generates_param_units_and_compound() {
        let g = ip_router();
        let gen = generate(&g, "IpRouter", false).unwrap();
        assert!(gen.unit_text.contains("unit P_from0"));
        assert!(gen.unit_text.contains("unit IpRouter"));
        assert!(gen.unit_text.contains("rt : LookupIPRoute [ out0 = enc0.in, out1 = enc1.in, nomatch = d_rt.in, params = p_rt.params ]"));
        assert!(gen.unit_text.contains("drv : RouterDriver [ in0 = from0.src, in1 = from1.src ]"));
        assert!(!gen.unit_text.contains("flatten;"));
        // counters take no params
        assert!(!gen.unit_text.contains("unit P_cin0"));
        let flat = generate(&g, "IpRouterFlat", true).unwrap();
        assert!(flat.unit_text.contains("flatten;"));
    }

    #[test]
    fn param_source_shapes() {
        assert!(param_source(&[]).contains("return 0"));
        let s = param_source(&[12, 2048]);
        assert!(s.contains("vals[2] = { 12, 2048 }"));
    }

    #[test]
    fn mc_generator_shapes() {
        let gen = generate_mc(4, "McRouter", false).unwrap();
        // one ingress pipeline + driver per core
        for c in 0..4 {
            assert!(gen.unit_text.contains(&format!("from{c} : FromDevice")));
            assert!(gen.unit_text.contains(&format!(
                "rt{c} : LookupIPRoute [ out0 = sq0.in, out1 = sq1.in, nomatch = d_rt.in, params = p_rt{c}.params ]"
            )));
            assert!(gen.unit_text.contains(&format!("router{c} = drv{c}.router;")));
        }
        // shared egress with exactly two SharedQueues
        assert_eq!(gen.unit_text.matches(": SharedQueue").count(), 2);
        assert!(gen.unit_text.contains(
            "exports [ router0 : Router, router1 : Router, router2 : Router, router3 : Router ]"
        ));
        assert!(!gen.unit_text.contains("flatten;"));
        assert!(generate_mc(2, "McFlat", true).unwrap().unit_text.contains("flatten;"));
        assert!(generate_mc(0, "Bad", false).is_err());
    }

    #[test]
    fn mc_generated_units_parse() {
        let gen = generate_mc(3, "McRouter", false).unwrap();
        let combined = format!("{}\n{}", include_str!("../corpus/elements.unit"), gen.unit_text);
        knit_lang::parse("mc_generated.unit", &combined).expect("mc unit text parses");
    }

    #[test]
    fn generated_units_parse() {
        let g = ip_router();
        let gen = generate(&g, "IpRouter", false).unwrap();
        // the generated text must parse as Knit (in context of the element
        // declarations, which define the bundletypes)
        let combined = format!("{}\n{}", include_str!("../corpus/elements.unit"), gen.unit_text);
        knit_lang::parse("generated.unit", &combined).expect("generated unit text parses");
    }
}
