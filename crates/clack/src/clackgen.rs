//! Clack realization: a configuration [`Graph`] → Knit units.
//!
//! Element code is fixed (the units in `corpus/elements.unit`); per-element
//! parameters become generated "trivial components that provide
//! initialization data" (§5.2), and the graph's wiring becomes a generated
//! compound unit. "The rapid deployment of new configurations" is a
//! `Graph` → `generate` → `knit::build` round trip.

use knit::SourceTree;

use crate::graph::{ElemType, Graph};

/// What the generator produced: text to append to the Knit program and
/// files to add to the source tree.
pub struct Generated {
    /// `.unit` source declaring the param units and the router compound.
    pub unit_text: String,
    /// Generated parameter C sources.
    pub sources: Vec<(String, String)>,
    /// The compound unit's name.
    pub kernel: String,
}

/// Generate the Knit configuration for `graph` as compound unit `kernel`.
/// With `flatten`, the whole router becomes one flattening group (§6).
pub fn generate(graph: &Graph, kernel: &str, flatten: bool) -> Result<Generated, String> {
    graph.validate()?;
    let mut unit_text = String::new();
    let mut sources = Vec::new();

    // --- param units ---
    for e in &graph.elems {
        if !e.ty.takes_params() {
            continue;
        }
        let file = format!("p_{}.c", e.name);
        sources.push((file.clone(), param_source(&e.params)));
        unit_text.push_str(&format!(
            "unit P_{name} = {{\n    exports [ params : Params ];\n    files {{ \"{file}\" }} with flags ClackFlags;\n}}\n\n",
            name = e.name,
        ));
    }

    // --- the compound unit ---
    unit_text
        .push_str(&format!("unit {kernel} = {{\n    exports [ router : Router ];\n    link {{\n"));
    for e in &graph.elems {
        if e.ty.takes_params() {
            unit_text.push_str(&format!("        p_{0} : P_{0};\n", e.name));
        }
    }
    let mut from_devices = Vec::new();
    for (i, e) in graph.elems.iter().enumerate() {
        let mut binds: Vec<String> = Vec::new();
        for port in 0..e.ty.out_ports() {
            let to = graph.target(i, port).expect("validated");
            let binding = e.ty.out_port_binding(port);
            // Push consumers export their input port as `in`
            binds.push(format!("{binding} = {}.in", graph.elems[to].name));
        }
        if e.ty.takes_params() {
            binds.push(format!("params = p_{}.params", e.name));
        }
        if e.ty == ElemType::FromDevice {
            from_devices.push(e.name.clone());
        }
        if binds.is_empty() {
            unit_text.push_str(&format!("        {} : {};\n", e.name, e.ty.unit_name()));
        } else {
            unit_text.push_str(&format!(
                "        {} : {} [ {} ];\n",
                e.name,
                e.ty.unit_name(),
                binds.join(", ")
            ));
        }
    }
    if from_devices.len() != 2 {
        return Err(format!(
            "the RouterDriver expects exactly two FromDevice elements, found {}",
            from_devices.len()
        ));
    }
    unit_text.push_str(&format!(
        "        drv : RouterDriver [ in0 = {}.src, in1 = {}.src ];\n",
        from_devices[0], from_devices[1]
    ));
    unit_text.push_str("        router = drv.router;\n    };\n");
    if flatten {
        unit_text.push_str("    flatten;\n");
    }
    unit_text.push_str("}\n");

    Ok(Generated { unit_text, sources, kernel: kernel.to_string() })
}

/// C source of a parameter unit.
fn param_source(params: &[i64]) -> String {
    let n = params.len();
    if n == 0 {
        return "int param_count() { return 0; }\nint param_get(int i) { return 0; }\n".to_string();
    }
    let vals: Vec<String> = params.iter().map(|v| v.to_string()).collect();
    format!(
        "static int vals[{n}] = {{ {} }};\nint param_count() {{ return {n}; }}\nint param_get(int i) {{ return vals[i]; }}\n",
        vals.join(", ")
    )
}

/// Add the generated sources to a tree.
pub fn install(gen: &Generated, tree: &mut SourceTree) {
    for (path, text) in &gen.sources {
        tree.add(path, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ip_router;

    #[test]
    fn generates_param_units_and_compound() {
        let g = ip_router();
        let gen = generate(&g, "IpRouter", false).unwrap();
        assert!(gen.unit_text.contains("unit P_from0"));
        assert!(gen.unit_text.contains("unit IpRouter"));
        assert!(gen.unit_text.contains("rt : LookupIPRoute [ out0 = enc0.in, out1 = enc1.in, nomatch = d_rt.in, params = p_rt.params ]"));
        assert!(gen.unit_text.contains("drv : RouterDriver [ in0 = from0.src, in1 = from1.src ]"));
        assert!(!gen.unit_text.contains("flatten;"));
        // counters take no params
        assert!(!gen.unit_text.contains("unit P_cin0"));
        let flat = generate(&g, "IpRouterFlat", true).unwrap();
        assert!(flat.unit_text.contains("flatten;"));
    }

    #[test]
    fn param_source_shapes() {
        assert!(param_source(&[]).contains("return 0"));
        let s = param_source(&[12, 2048]);
        assert!(s.contains("vals[2] = { 12, 2048 }"));
    }

    #[test]
    fn generated_units_parse() {
        let g = ip_router();
        let gen = generate(&g, "IpRouter", false).unwrap();
        // the generated text must parse as Knit (in context of the element
        // declarations, which define the bundletypes)
        let combined = format!("{}\n{}", include_str!("../corpus/elements.unit"), gen.unit_text);
        knit_lang::parse("generated.unit", &combined).expect("generated unit text parses");
    }
}
