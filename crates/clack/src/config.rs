//! A front end for (a subset of) the Click configuration language (§5.2).
//!
//! The paper shows:
//!
//! ```text
//! FromDevice(eth0) -> Counter -> Discard
//! ```
//!
//! This module parses declarations (`name :: Class(args);`) and chains
//! (`a -> b[1] -> c;`, with inline anonymous elements) into a
//! [`Graph`], which the Clack generator then turns into Knit units —
//! "Clack follows the basic architecture of Click, but the details have
//! been Knit-ified."

use std::collections::BTreeMap;

use crate::graph::{mac_params, ElemType, Graph};

/// Parse a Click-style configuration into a graph.
pub fn parse(src: &str) -> Result<Graph, String> {
    let mut g = Graph::default();
    let mut named: BTreeMap<String, usize> = BTreeMap::new();
    let mut anon = 0usize;

    for (lineno, raw_stmt) in split_statements(src) {
        let stmt = raw_stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {lineno}: {msg}");
        if let Some((name, rhs)) = stmt.split_once("::") {
            // declaration
            let name = name.trim();
            if !is_ident(name) {
                return Err(err(format!("bad element name `{name}`")));
            }
            if named.contains_key(name) {
                return Err(err(format!("duplicate element `{name}`")));
            }
            let (ty, params) = parse_class(rhs.trim()).map_err(&err)?;
            let idx = g.add(name, ty, params);
            named.insert(name.to_string(), idx);
        } else {
            // chain: endpoint -> endpoint -> …
            let parts: Vec<&str> = stmt.split("->").map(str::trim).collect();
            if parts.len() < 2 {
                return Err(err(format!("expected a chain or declaration: `{stmt}`")));
            }
            let mut prev: Option<(usize, usize)> = None; // (elem, out port)
            for part in parts {
                let (elem, out_port) =
                    resolve_endpoint(part, &mut g, &mut named, &mut anon).map_err(&err)?;
                if let Some((from, port)) = prev {
                    g.connect(from, port, elem);
                }
                prev = Some((elem, out_port));
            }
        }
    }
    g.validate()?;
    Ok(g)
}

/// Split on `;`, tracking line numbers and stripping `//` comments.
fn split_statements(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut start_line = 1;
    let mut line = 1;
    for c in src.chars() {
        match c {
            ';' => {
                out.push((start_line, cur.clone()));
                cur.clear();
                start_line = line;
            }
            '\n' => {
                line += 1;
                // strip trailing // comment on the line being accumulated
                if let Some(pos) = cur.rfind("//") {
                    let after_newline = cur.rfind('\n').map(|p| p + 1).unwrap_or(0);
                    if pos >= after_newline {
                        cur.truncate(pos);
                    }
                }
                cur.push(' ');
                if cur.trim().is_empty() {
                    start_line = line;
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push((start_line, cur));
    }
    out
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// `Class(args)` → element type + params.
fn parse_class(s: &str) -> Result<(ElemType, Vec<i64>), String> {
    let (class, args) = match s.find('(') {
        Some(i) => {
            let end = s.rfind(')').ok_or_else(|| format!("missing `)` in `{s}`"))?;
            (&s[..i], Some(&s[i + 1..end]))
        }
        None => (s, None),
    };
    let class = class.trim();
    let ty = ElemType::from_click_name(class)
        .ok_or_else(|| format!("unknown element class `{class}`"))?;
    let args: Vec<&str> = match args {
        Some(a) if !a.trim().is_empty() => a.split(',').map(str::trim).collect(),
        _ => Vec::new(),
    };
    let params = parse_params(ty, &args)?;
    Ok((ty, params))
}

fn parse_params(ty: ElemType, args: &[&str]) -> Result<Vec<i64>, String> {
    match ty {
        ElemType::FromDevice
        | ElemType::ToDevice
        | ElemType::Strip
        | ElemType::Unstrip
        | ElemType::Queue => {
            if args.len() != 1 {
                return Err(format!("{ty:?} takes exactly one integer argument"));
            }
            Ok(vec![parse_int(args[0])?])
        }
        ElemType::EtherEncap => {
            if args.len() != 1 {
                return Err("EtherEncap takes the output port number".to_string());
            }
            Ok(mac_params(parse_int(args[0])?))
        }
        ElemType::Classifier => {
            // patterns like `12/0800`; a trailing `-` names the fall-through
            let mut params = Vec::new();
            for a in args {
                if *a == "-" {
                    continue;
                }
                let (off, val) = a
                    .split_once('/')
                    .ok_or_else(|| format!("classifier pattern `{a}` is not offset/value"))?;
                params.push(parse_int(off)?);
                params.push(
                    i64::from_str_radix(val.trim(), 16)
                        .map_err(|_| format!("bad hex value `{val}`"))?,
                );
            }
            Ok(params)
        }
        ElemType::LookupIPRoute => {
            // entries like `10.0.1.0/24 0`
            let mut params = Vec::new();
            for a in args {
                let mut it = a.split_whitespace();
                let cidr = it.next().ok_or_else(|| format!("empty route in `{a}`"))?;
                let port = it.next().ok_or_else(|| format!("route `{a}` missing port"))?;
                let (addr, len) = cidr
                    .split_once('/')
                    .ok_or_else(|| format!("route `{cidr}` is not addr/len"))?;
                let ip = parse_ipv4(addr)?;
                let len: u32 = len.parse().map_err(|_| format!("bad prefix length `{len}`"))?;
                if len > 32 {
                    return Err(format!("prefix length {len} out of range"));
                }
                let mask: u32 = if len == 0 { 0 } else { u32::MAX << (32 - len) };
                params.push(ip as i64);
                params.push(mask as i64);
                params.push(parse_int(port)?);
            }
            Ok(params)
        }
        _ => {
            if !args.is_empty() {
                return Err(format!("{ty:?} takes no arguments"));
            }
            Ok(Vec::new())
        }
    }
}

fn parse_int(s: &str) -> Result<i64, String> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        return i64::from_str_radix(hex, 16).map_err(|_| format!("bad integer `{s}`"));
    }
    s.parse().map_err(|_| format!("bad integer `{s}`"))
}

fn parse_ipv4(s: &str) -> Result<u32, String> {
    let parts: Vec<&str> = s.split('.').collect();
    if parts.len() != 4 {
        return Err(format!("bad IPv4 address `{s}`"));
    }
    let mut v: u32 = 0;
    for p in parts {
        let b: u32 = p.parse().map_err(|_| format!("bad IPv4 octet `{p}`"))?;
        if b > 255 {
            return Err(format!("IPv4 octet {b} out of range"));
        }
        v = (v << 8) | b;
    }
    Ok(v)
}

/// Resolve one chain endpoint: a declared name (optionally with `[port]`)
/// or an inline anonymous `Class(args)`.
fn resolve_endpoint(
    part: &str,
    g: &mut Graph,
    named: &mut BTreeMap<String, usize>,
    anon: &mut usize,
) -> Result<(usize, usize), String> {
    // trailing output-port selector `name[2]`
    let (core, port) = match part.find('[') {
        Some(i) if part.ends_with(']') => {
            let p: usize = part[i + 1..part.len() - 1]
                .trim()
                .parse()
                .map_err(|_| format!("bad port selector in `{part}`"))?;
            (part[..i].trim(), p)
        }
        _ => (part, 0),
    };
    if let Some(&idx) = named.get(core) {
        return Ok((idx, port));
    }
    if is_ident(core) && ElemType::from_click_name(core).is_none() {
        return Err(format!("unknown element `{core}`"));
    }
    // inline anonymous element
    let (ty, params) = parse_class(core)?;
    let name = format!("anon{}", *anon);
    *anon += 1;
    let idx = g.add(&name, ty, params);
    Ok((idx, port))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        // "FromDevice(eth0) -> Counter -> Discard" (we use device numbers)
        let g = parse("FromDevice(0) -> Counter -> Discard;").unwrap();
        assert_eq!(g.elems.len(), 3);
        assert_eq!(g.elems[0].ty, ElemType::FromDevice);
        assert_eq!(g.elems[1].ty, ElemType::Counter);
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn parses_declarations_and_ports() {
        let src = r#"
            src :: FromDevice(0);
            cls :: Classifier(12/0800, -);
            ok :: Counter;
            src -> cls;
            cls[0] -> ok -> Discard;
            cls[1] -> Discard;
        "#;
        let g = parse(src).unwrap();
        assert_eq!(g.elems.len(), 5);
        let cls = g.find("cls").unwrap();
        assert_eq!(g.elems[cls].params, vec![12, 0x0800]);
        let ok = g.find("ok").unwrap();
        assert_eq!(g.target(cls, 0), Some(ok));
    }

    #[test]
    fn parses_routes_and_cidrs() {
        let src = r#"
            rt :: LookupIPRoute(10.0.1.0/24 0, 10.0.2.0/24 1);
            rt[0] -> Discard;
            rt[1] -> Discard;
            rt[2] -> Discard;
        "#;
        let g = parse(src).unwrap();
        let rt = g.find("rt").unwrap();
        assert_eq!(
            g.elems[rt].params,
            vec![0x0A000100, 0xFFFFFF00u32 as i64, 0, 0x0A000200, 0xFFFFFF00u32 as i64, 1]
        );
    }

    #[test]
    fn full_ip_router_config_round_trips() {
        let src = r#"
            // two-interface IP router
            from0 :: FromDevice(0);
            from1 :: FromDevice(1);
            cls0 :: Classifier(12/0800, -);
            cls1 :: Classifier(12/0800, -);
            ttl :: DecIPTTL;
            rt :: LookupIPRoute(10.0.1.0/24 0, 10.0.2.0/24 1);
            chk0 :: CheckIPHeader;
            chk1 :: CheckIPHeader;
            dbad :: Discard;
            dcls :: Discard;
            dttl :: Discard;
            drt :: Discard;

            from0 -> Counter -> cls0;
            from1 -> Counter -> cls1;
            cls0[0] -> Strip(14) -> chk0;
            cls1[0] -> Strip(14) -> chk1;
            cls0[1] -> dcls;
            cls1[1] -> dcls;
            chk0[0] -> ttl;
            chk1[0] -> ttl;
            chk0[1] -> dbad;
            chk1[1] -> dbad;
            ttl[0] -> rt;
            ttl[1] -> dttl;
            rt[0] -> EtherEncap(0) -> Queue(4) -> Counter -> ToDevice(0);
            rt[1] -> EtherEncap(1) -> Queue(4) -> Counter -> ToDevice(1);
            rt[2] -> drt;
        "#;
        let g = parse(src).unwrap();
        assert_eq!(g.elems.len(), 24);
        g.validate().unwrap();
    }

    #[test]
    fn error_cases() {
        assert!(parse("x -> y;").is_err(), "unknown names");
        assert!(parse("a :: Nope;").is_err(), "unknown class");
        assert!(parse("a :: Counter; a :: Counter;").is_err(), "duplicate");
        assert!(parse("a :: Strip;").is_err(), "missing arg");
        assert!(parse("rt :: LookupIPRoute(10.0.1.0/40 0);").is_err(), "bad prefix");
        assert!(parse("c :: Classifier(nonsense);").is_err(), "bad pattern");
        // validation: unwired port
        assert!(parse("a :: Counter;").is_err());
    }
}
