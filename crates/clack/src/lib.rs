//! # clack — the Click-subset modular router (§5.2, §6 of the Knit paper)
//!
//! "To demonstrate that Knit is general and more than just a tool for the
//! OSKit, we implemented a subset of Click version 1.0.1 with Knit
//! components instead of C++ classes. We dubbed our new component suite
//! Clack." This crate provides everything Table 1 and Table 2 measure:
//!
//! * fixed Clack element units in mini-C ([`corpus`]: FromDevice,
//!   Classifier, Strip, CheckIPHeader, DecIPTTL, LookupIPRoute,
//!   EtherEncap, Queue, Counter, Discard, ToDevice) — see
//!   `corpus/elements.unit`;
//! * a configuration [`graph::Graph`] with the paper's canonical
//!   24-element IP router ([`graph::ip_router`]);
//! * a Click-config-language front end ([`config`]) so configurations can
//!   be written as `FromDevice(0) -> Counter -> Discard`;
//! * the Clack generator ([`clackgen`]): graph → Knit compound unit plus
//!   "trivial components that provide initialization data";
//! * the hand-optimized 2-component router (Table 1's second column) in
//!   `corpus/fast_path.c` / `corpus/fast_out.c`;
//! * the Click-style baseline ([`click`]): the same elements as
//!   vtable-dispatching objects, plus re-implementations of MIT's three
//!   optimizations (fast classifier, devirtualizing specializer, xform);
//! * a measurement harness ([`harness`]) that feeds packets through a
//!   built image and reads the machine's cycle counters, Table 1-style.

pub mod clackgen;
pub mod click;
pub mod config;
pub mod graph;
pub mod harness;
pub mod mc;
pub mod packets;

use knit::{build, BuildOptions, BuildReport, KnitError, Program, SourceTree};

pub use graph::{ip_router, ElemType, Graph};
pub use harness::{RouterHarness, RouterMeasurement};
pub use mc::{build_mc_router, mc_router_build_inputs, McMeasurement, MultiRouterHarness};

/// The Clack element sources as a source tree.
pub fn sources() -> SourceTree {
    let mut t = SourceTree::new();
    t.add("include/clack.h", include_str!("../corpus/include/clack.h"));
    t.add("from_device.c", include_str!("../corpus/from_device.c"));
    t.add("to_device.c", include_str!("../corpus/to_device.c"));
    t.add("counter.c", include_str!("../corpus/counter.c"));
    t.add("classifier.c", include_str!("../corpus/classifier.c"));
    t.add("strip.c", include_str!("../corpus/strip.c"));
    t.add("unstrip.c", include_str!("../corpus/unstrip.c"));
    t.add("check_ip.c", include_str!("../corpus/check_ip.c"));
    t.add("dec_ttl.c", include_str!("../corpus/dec_ttl.c"));
    t.add("lookup_route.c", include_str!("../corpus/lookup_route.c"));
    t.add("ether_encap.c", include_str!("../corpus/ether_encap.c"));
    t.add("queue.c", include_str!("../corpus/queue.c"));
    t.add("discard.c", include_str!("../corpus/discard.c"));
    t.add("tee.c", include_str!("../corpus/tee.c"));
    t.add("router_driver.c", include_str!("../corpus/router_driver.c"));
    t.add("shared_queue.c", include_str!("../corpus/shared_queue.c"));
    t.add("core_driver.c", include_str!("../corpus/core_driver.c"));
    t.add("fast_path.c", include_str!("../corpus/fast_path.c"));
    t.add("fast_out.c", include_str!("../corpus/fast_out.c"));
    t
}

/// A program with the element units (and hand-optimized router) loaded.
pub fn program() -> Program {
    let mut p = Program::new();
    p.load_str("elements.unit", include_str!("../corpus/elements.unit"))
        .expect("elements.unit parses");
    p.load_str("hand.unit", include_str!("../corpus/hand.unit")).expect("hand.unit parses");
    p
}

/// The full build inputs for the modular Clack router: program, source
/// tree, and default options. Callers that tune parallelism
/// (`BuildOptions::jobs`) or want warm rebuilds take these and feed them
/// into a `knit::SessionHandle` (or a composition-server session)
/// themselves.
pub fn router_build_inputs(
    graph: &Graph,
    flatten: bool,
) -> Result<(Program, SourceTree, BuildOptions), KnitError> {
    let kernel = if flatten { "GenRouterFlat" } else { "GenRouter" };
    let generated = clackgen::generate(graph, kernel, flatten)
        .map_err(|e| KnitError::BadDeclaration { unit: kernel.into(), what: e })?;
    let mut p = program();
    p.load_str("generated.unit", &generated.unit_text)?;
    let mut t = sources();
    clackgen::install(&generated, &mut t);
    Ok((p, t, options(kernel)))
}

/// Build the modular Clack router for `graph` (24 units for the canonical
/// config), optionally flattened.
pub fn build_clack_router(graph: &Graph, flatten: bool) -> Result<BuildReport, KnitError> {
    let (p, t, opts) = router_build_inputs(graph, flatten)?;
    build(&p, &t, &opts)
}

/// Build the hand-optimized 2-component router, optionally flattened.
pub fn build_hand_router(flatten: bool) -> Result<BuildReport, KnitError> {
    let kernel = if flatten { "HandRouterKernelFlat" } else { "HandRouterKernel" };
    build(&program(), &sources(), &options(kernel))
}

fn options(kernel: &str) -> BuildOptions {
    let mut o = BuildOptions::new(kernel, machine::runtime_symbols());
    // router kernels export no `main`; the harness drives router_step
    o.entry = None;
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RouterHarness;
    use crate::packets::{self, WorkloadOptions};

    fn routed_output(h: &mut RouterHarness, work: &[packets::WorkItem]) -> (usize, usize) {
        for (dev, pkt) in work {
            h.inject(*dev, pkt.clone());
        }
        h.run_until_idle();
        (h.collect(0).len(), h.collect(1).len())
    }

    #[test]
    fn modular_router_routes_by_destination() {
        let report = build_clack_router(&ip_router(), false).unwrap();
        // 24 elements + driver + 13 param units
        assert_eq!(report.elaboration.instances.len(), 24 + 1 + 13);
        let mut h = RouterHarness::new(&report).unwrap();
        let work = packets::workload(&WorkloadOptions { count: 64, ..Default::default() });
        let (o0, o1) = routed_output(&mut h, &work);
        assert_eq!(o0 + o1, 64, "all good packets forwarded");
        assert!(o0 > 10 && o1 > 10, "both ports used: {o0}/{o1}");
    }

    #[test]
    fn router_decrements_ttl_and_fixes_checksum() {
        let report = build_clack_router(&ip_router(), false).unwrap();
        let mut h = RouterHarness::new(&report).unwrap();
        let pkt = packets::ip_packet(0x0A000301, packets::NET0 | 5, 17, &[9; 24]);
        h.inject(1, pkt);
        h.run_until_idle();
        let out = h.collect(0);
        assert_eq!(out.len(), 1);
        assert_eq!(packets::frame_ttl(&out[0]), Some(16));
        assert!(packets::frame_checksum_ok(&out[0]), "checksum incrementally fixed");
        assert_eq!(packets::frame_dst(&out[0]), Some(packets::NET0 | 5));
        // fresh ethernet header from EtherEncap port 0
        assert_eq!(out[0][0], 16);
        assert_eq!(out[0][6], 32);
    }

    #[test]
    fn router_drops_anomalies() {
        let report = build_clack_router(&ip_router(), false).unwrap();
        let mut h = RouterHarness::new(&report).unwrap();
        h.inject(0, packets::arp_packet()); // non-IP → classifier discard
        h.inject(0, packets::ip_packet(1, packets::NET0 | 2, 1, &[0; 8])); // ttl expired
        h.inject(0, packets::ip_packet(1, 0xC0A80101, 9, &[0; 8])); // no route
        let mut bad = packets::ip_packet(1, packets::NET1 | 2, 9, &[0; 8]);
        bad[packets::ETHER_HLEN + 10] ^= 0xff; // corrupt checksum
        h.inject(0, bad);
        h.run_until_idle();
        assert_eq!(h.collect(0).len() + h.collect(1).len(), 0, "all four dropped");
    }

    #[test]
    fn flattened_router_is_equivalent_and_faster() {
        let plain = build_clack_router(&ip_router(), false).unwrap();
        let flat = build_clack_router(&ip_router(), true).unwrap();
        assert!(flat.stats.flatten_groups >= 1);

        let work = packets::workload(&WorkloadOptions { count: 128, ..Default::default() });
        let mut hp = RouterHarness::new(&plain).unwrap();
        let mut hf = RouterHarness::new(&flat).unwrap();
        let rp = hp.measure(&work).unwrap();
        let rf = hf.measure(&work).unwrap();
        assert_eq!(hp.collect(0).len(), hf.collect(0).len());
        assert_eq!(hp.collect(1).len(), hf.collect(1).len());
        assert!(
            rf.cycles_per_packet < rp.cycles_per_packet,
            "flat {} vs plain {}",
            rf.cycles_per_packet,
            rp.cycles_per_packet
        );
    }

    #[test]
    fn hand_router_matches_modular_semantics() {
        let modular = build_clack_router(&ip_router(), false).unwrap();
        let hand = build_hand_router(false).unwrap();
        let work = packets::workload(&WorkloadOptions {
            count: 64,
            pct_non_ip: 10,
            pct_ttl_expired: 10,
            pct_no_route: 10,
            ..Default::default()
        });
        let mut hm = RouterHarness::new(&modular).unwrap();
        let mut hh = RouterHarness::new(&hand).unwrap();
        for (dev, pkt) in &work {
            hm.inject(*dev, pkt.clone());
            hh.inject(*dev, pkt.clone());
        }
        hm.run_until_idle();
        hh.run_until_idle();
        let m0 = hm.collect(0);
        let h0 = hh.collect(0);
        let m1 = hm.collect(1);
        let h1 = hh.collect(1);
        assert_eq!(m0, h0, "port 0 output identical");
        assert_eq!(m1, h1, "port 1 output identical");
    }

    #[test]
    fn strip_unstrip_bridge_is_identity() {
        // FromDevice -> Counter -> Strip(14) -> Unstrip(14) -> Queue -> ToDevice:
        // exercises Unstrip; the emitted frame equals the injected frame.
        let mut g = Graph::default();
        let from0 = g.add("from0", ElemType::FromDevice, vec![0]);
        let from1 = g.add("from1", ElemType::FromDevice, vec![1]);
        let cnt = g.add("cnt", ElemType::Counter, vec![]);
        let strip = g.add("strip", ElemType::Strip, vec![14]);
        let unstrip = g.add("unstrip", ElemType::Unstrip, vec![14]);
        let q = g.add("q", ElemType::Queue, vec![4]);
        let tx = g.add("tx", ElemType::ToDevice, vec![1]);
        let sink = g.add("sink", ElemType::Discard, vec![]);
        g.connect(from0, 0, cnt);
        g.connect(from1, 0, sink);
        g.connect(cnt, 0, strip);
        g.connect(strip, 0, unstrip);
        g.connect(unstrip, 0, q);
        g.connect(q, 0, tx);
        let report = build_clack_router(&g, false).expect("bridge builds");
        let mut h = RouterHarness::new(&report).unwrap();
        let frame = packets::ip_packet(7, packets::NET0 | 1, 9, &[1, 2, 3, 4, 5]);
        h.inject(0, frame.clone());
        h.run_until_idle();
        assert_eq!(h.collect(1), vec![frame], "bridge must be byte-identity");
    }

    #[test]
    fn tee_duplicates_to_a_monitor_port() {
        // main path: from0 -> tee -> [0] monitor counter -> discard
        //                          \ [1] queue -> tx(1)
        let mut g = Graph::default();
        let from0 = g.add("from0", ElemType::FromDevice, vec![0]);
        let from1 = g.add("from1", ElemType::FromDevice, vec![1]);
        let tee = g.add("tee", ElemType::Tee, vec![]);
        let mon = g.add("mon", ElemType::Counter, vec![]);
        let dmon = g.add("dmon", ElemType::Discard, vec![]);
        let q = g.add("q", ElemType::Queue, vec![4]);
        let tx = g.add("tx", ElemType::ToDevice, vec![1]);
        let sink = g.add("sink", ElemType::Discard, vec![]);
        g.connect(from0, 0, tee);
        g.connect(from1, 0, sink);
        g.connect(tee, 0, mon);
        g.connect(mon, 0, dmon);
        g.connect(tee, 1, q);
        g.connect(q, 0, tx);
        g.validate().unwrap();

        let report = build_clack_router(&g, false).expect("tee config builds");
        let mut h = RouterHarness::new(&report).unwrap();
        let frame = packets::ip_packet(7, packets::NET0 | 1, 9, &[1, 2, 3, 4]);
        h.inject(0, frame.clone());
        h.run_until_idle();
        // the main path still emits exactly one (unmodified) frame
        assert_eq!(h.collect(1), vec![frame]);

        // and the same config through the Click config language + both
        // Click backends agrees
        let g2 = crate::config::parse(
            "from0 :: FromDevice(0);\nfrom1 :: FromDevice(1);\nt :: Tee;\n\
             from0 -> t;\nfrom1 -> Discard;\nt[0] -> Counter -> Discard;\n\
             t[1] -> Queue(4) -> ToDevice(1);",
        )
        .expect("tee config parses");
        for opts in [None, Some(crate::click::ClickOpts::all())] {
            let img = crate::click::build_click_router(&g2, opts).expect("click tee builds");
            let mut hc = RouterHarness::from_image(img, Some("click_init"), "router_step").unwrap();
            let frame = packets::ip_packet(7, packets::NET0 | 1, 9, &[1, 2, 3, 4]);
            hc.inject(0, frame.clone());
            hc.run_until_idle();
            assert_eq!(hc.collect(1), vec![frame], "click backend {opts:?}");
        }
    }

    #[test]
    fn hand_router_is_faster_than_modular() {
        let modular = build_clack_router(&ip_router(), false).unwrap();
        let hand = build_hand_router(false).unwrap();
        let work = packets::workload(&WorkloadOptions { count: 128, ..Default::default() });
        let rm = RouterHarness::new(&modular).unwrap().measure(&work).unwrap();
        let rh = RouterHarness::new(&hand).unwrap().measure(&work).unwrap();
        assert!(
            rh.cycles_per_packet < rm.cycles_per_packet,
            "hand {} vs modular {}",
            rh.cycles_per_packet,
            rm.cycles_per_packet
        );
    }
}
