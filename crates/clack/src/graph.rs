//! The router configuration graph: element instances and their
//! connections, independent of whether the configuration is realized as
//! Knit units (Clack) or as C++-style objects (the Click baseline).

use crate::packets::{MASK24, NET0, NET1};

/// Element kinds mirroring Click's standard IP-router elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemType {
    /// Poll a NIC, push received frames. Param: device index.
    FromDevice,
    /// Transmit and consume. Param: device index.
    ToDevice,
    /// Count packets and bytes, pass through.
    Counter,
    /// Match (offset, value) 16-bit patterns; output 0 on match, 1
    /// otherwise. Params: offset/value pairs.
    Classifier,
    /// Remove N header bytes. Param: N.
    Strip,
    /// Restore N header bytes. Param: N.
    Unstrip,
    /// Validate the IPv4 header; output 0 good, 1 bad.
    CheckIPHeader,
    /// Decrement TTL (fix checksum); output 0 alive, 1 expired.
    DecIPTTL,
    /// Route on destination; params are (addr, mask, port) triples; output
    /// 0/1 by table, output 2 when no route matches.
    LookupIPRoute,
    /// Prepend a fresh Ethernet header. Params: 12 MAC bytes.
    EtherEncap,
    /// Store-and-forward ring. Param: capacity.
    Queue,
    /// Consume and count.
    Discard,
    /// Duplicate each packet to two outputs (output 0 gets a clone).
    Tee,
}

impl ElemType {
    /// Knit unit name realizing this element in the Clack kit.
    pub fn unit_name(self) -> &'static str {
        match self {
            ElemType::FromDevice => "FromDevice",
            ElemType::ToDevice => "ToDevice",
            ElemType::Counter => "Counter",
            ElemType::Classifier => "Classifier",
            ElemType::Strip => "Strip",
            ElemType::Unstrip => "Unstrip",
            ElemType::CheckIPHeader => "CheckIPHeader",
            ElemType::DecIPTTL => "DecIPTTL",
            ElemType::LookupIPRoute => "LookupIPRoute",
            ElemType::EtherEncap => "EtherEncap",
            ElemType::Queue => "Queue",
            ElemType::Discard => "Discard",
            ElemType::Tee => "Tee",
        }
    }

    /// Parse a Click-config element class name.
    pub fn from_click_name(s: &str) -> Option<ElemType> {
        Some(match s {
            "FromDevice" => ElemType::FromDevice,
            "ToDevice" => ElemType::ToDevice,
            "Counter" => ElemType::Counter,
            "Classifier" => ElemType::Classifier,
            "Strip" => ElemType::Strip,
            "Unstrip" => ElemType::Unstrip,
            "CheckIPHeader" => ElemType::CheckIPHeader,
            "DecIPTTL" => ElemType::DecIPTTL,
            "LookupIPRoute" => ElemType::LookupIPRoute,
            "EtherEncap" => ElemType::EtherEncap,
            "Queue" => ElemType::Queue,
            "Discard" => ElemType::Discard,
            "Tee" => ElemType::Tee,
            _ => return None,
        })
    }

    /// Number of output ports.
    pub fn out_ports(self) -> usize {
        match self {
            ElemType::ToDevice | ElemType::Discard => 0,
            ElemType::Classifier | ElemType::CheckIPHeader | ElemType::DecIPTTL | ElemType::Tee => {
                2
            }
            ElemType::LookupIPRoute => 3,
            _ => 1,
        }
    }

    /// Whether the element takes parameters (and so needs a Params unit).
    pub fn takes_params(self) -> bool {
        !matches!(
            self,
            ElemType::Counter
                | ElemType::CheckIPHeader
                | ElemType::DecIPTTL
                | ElemType::Discard
                | ElemType::Tee
        )
    }

    /// Knit import-port name for output port `p` of this element.
    pub fn out_port_binding(self, p: usize) -> &'static str {
        match (self, p) {
            (ElemType::Classifier, 0) => "out0",
            (ElemType::Classifier, 1) => "out1",
            (ElemType::CheckIPHeader, 0) => "out",
            (ElemType::CheckIPHeader, 1) => "bad",
            (ElemType::DecIPTTL, 0) => "out",
            (ElemType::DecIPTTL, 1) => "expired",
            (ElemType::LookupIPRoute, 0) => "out0",
            (ElemType::LookupIPRoute, 1) => "out1",
            (ElemType::LookupIPRoute, 2) => "nomatch",
            (ElemType::Tee, 0) => "out0",
            (ElemType::Tee, 1) => "out1",
            (_, 0) => "out",
            _ => unreachable!("port {p} out of range for {self:?}"),
        }
    }
}

/// One element instance.
#[derive(Debug, Clone)]
pub struct Elem {
    /// Instance name (valid identifier).
    pub name: String,
    /// Element kind.
    pub ty: ElemType,
    /// Integer parameters (see [`ElemType`] docs).
    pub params: Vec<i64>,
}

/// A directed connection `from[from_port] -> to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source element index.
    pub from: usize,
    /// Source output port.
    pub from_port: usize,
    /// Destination element index.
    pub to: usize,
}

/// A router configuration.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Elements, in declaration order.
    pub elems: Vec<Elem>,
    /// Connections.
    pub edges: Vec<Edge>,
}

impl Graph {
    /// Add an element, returning its index.
    pub fn add(&mut self, name: &str, ty: ElemType, params: Vec<i64>) -> usize {
        self.elems.push(Elem { name: name.to_string(), ty, params });
        self.elems.len() - 1
    }

    /// Connect `from[port] -> to`.
    pub fn connect(&mut self, from: usize, port: usize, to: usize) {
        self.edges.push(Edge { from, from_port: port, to });
    }

    /// The element index an output port is wired to, if any.
    pub fn target(&self, from: usize, port: usize) -> Option<usize> {
        self.edges.iter().find(|e| e.from == from && e.from_port == port).map(|e| e.to)
    }

    /// Find an element by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.elems.iter().position(|e| e.name == name)
    }

    /// Validate: every output port wired exactly once, edges in range.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.edges {
            if e.from >= self.elems.len() || e.to >= self.elems.len() {
                return Err(format!("edge {e:?} out of range"));
            }
            if e.from_port >= self.elems[e.from].ty.out_ports() {
                return Err(format!(
                    "element `{}` has no output port {}",
                    self.elems[e.from].name, e.from_port
                ));
            }
        }
        for (i, el) in self.elems.iter().enumerate() {
            for p in 0..el.ty.out_ports() {
                let n = self.edges.iter().filter(|e| e.from == i && e.from_port == p).count();
                if n != 1 {
                    return Err(format!(
                        "element `{}` output {} wired {} times (must be exactly once)",
                        el.name, p, n
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The canonical two-interface IP router of the paper's Table 1: exactly
/// 24 element instances.
///
/// Per-interface input path (FromDevice → Counter → Classifier → Strip),
/// converging on a shared CheckIPHeader → DecIPTTL → LookupIPRoute core,
/// then per-interface output (EtherEncap → Queue → Counter → ToDevice),
/// with four Discard sinks (non-IP, bad header, expired TTL, no route).
pub fn ip_router() -> Graph {
    let mut g = Graph::default();
    let from0 = g.add("from0", ElemType::FromDevice, vec![0]);
    let from1 = g.add("from1", ElemType::FromDevice, vec![1]);
    let cin0 = g.add("cin0", ElemType::Counter, vec![]);
    let cin1 = g.add("cin1", ElemType::Counter, vec![]);
    let cls0 = g.add("cls0", ElemType::Classifier, vec![12, 0x0800]);
    let cls1 = g.add("cls1", ElemType::Classifier, vec![12, 0x0800]);
    let strip0 = g.add("strip0", ElemType::Strip, vec![14]);
    let strip1 = g.add("strip1", ElemType::Strip, vec![14]);
    let chk0 = g.add("chk0", ElemType::CheckIPHeader, vec![]);
    let chk1 = g.add("chk1", ElemType::CheckIPHeader, vec![]);
    let ttl = g.add("ttl", ElemType::DecIPTTL, vec![]);
    let rt = g.add(
        "rt",
        ElemType::LookupIPRoute,
        vec![NET0 as i64, MASK24 as i64, 0, NET1 as i64, MASK24 as i64, 1],
    );
    let enc0 = g.add("enc0", ElemType::EtherEncap, mac_params(0));
    let enc1 = g.add("enc1", ElemType::EtherEncap, mac_params(1));
    let q0 = g.add("q0", ElemType::Queue, vec![4]);
    let q1 = g.add("q1", ElemType::Queue, vec![4]);
    let cout0 = g.add("cout0", ElemType::Counter, vec![]);
    let cout1 = g.add("cout1", ElemType::Counter, vec![]);
    let to0 = g.add("to0", ElemType::ToDevice, vec![0]);
    let to1 = g.add("to1", ElemType::ToDevice, vec![1]);
    let d_cls = g.add("d_cls", ElemType::Discard, vec![]);
    let d_bad = g.add("d_bad", ElemType::Discard, vec![]);
    let d_ttl = g.add("d_ttl", ElemType::Discard, vec![]);
    let d_rt = g.add("d_rt", ElemType::Discard, vec![]);

    g.connect(from0, 0, cin0);
    g.connect(from1, 0, cin1);
    g.connect(cin0, 0, cls0);
    g.connect(cin1, 0, cls1);
    g.connect(cls0, 0, strip0);
    g.connect(cls0, 1, d_cls);
    g.connect(cls1, 0, strip1);
    g.connect(cls1, 1, d_cls);
    g.connect(strip0, 0, chk0);
    g.connect(strip1, 0, chk1);
    g.connect(chk0, 0, ttl);
    g.connect(chk0, 1, d_bad);
    g.connect(chk1, 0, ttl);
    g.connect(chk1, 1, d_bad);
    g.connect(ttl, 0, rt);
    g.connect(ttl, 1, d_ttl);
    g.connect(rt, 0, enc0);
    g.connect(rt, 1, enc1);
    g.connect(rt, 2, d_rt);
    g.connect(enc0, 0, q0);
    g.connect(enc1, 0, q1);
    g.connect(q0, 0, cout0);
    g.connect(q1, 0, cout1);
    g.connect(cout0, 0, to0);
    g.connect(cout1, 0, to1);

    debug_assert_eq!(g.elems.len(), 24);
    g
}

/// Deterministic per-port MAC parameters for EtherEncap (12 bytes).
pub fn mac_params(port: i64) -> Vec<i64> {
    let mut v = Vec::with_capacity(12);
    for _ in 0..6 {
        v.push(16 + port);
    }
    for _ in 0..6 {
        v.push(32 + port);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_router_is_24_elements_and_valid() {
        let g = ip_router();
        assert_eq!(g.elems.len(), 24);
        g.validate().expect("router graph wires every port once");
    }

    #[test]
    fn validate_catches_unwired_port() {
        let mut g = Graph::default();
        let a = g.add("a", ElemType::Counter, vec![]);
        let _ = a;
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_catches_double_wiring() {
        let mut g = Graph::default();
        let a = g.add("a", ElemType::Counter, vec![]);
        let d1 = g.add("d1", ElemType::Discard, vec![]);
        let d2 = g.add("d2", ElemType::Discard, vec![]);
        g.connect(a, 0, d1);
        g.connect(a, 0, d2);
        assert!(g.validate().is_err());
    }

    #[test]
    fn target_lookup() {
        let g = ip_router();
        let rt = g.find("rt").unwrap();
        let enc0 = g.find("enc0").unwrap();
        assert_eq!(g.target(rt, 0), Some(enc0));
        assert_eq!(g.target(rt, 5), None);
    }
}
