//! # flatten — cross-component optimization by source merging
//!
//! Section 6 of the Knit paper: *"Knit merges the code from many different
//! C files into a single file, and then invokes the C compiler on the
//! resulting file. … Knit must rename variables to eliminate conflicts,
//! eliminate duplicate declarations for variables and types, and sort
//! function definitions so that the definition of each function comes
//! before as many uses as possible (to encourage inlining in the C
//! compiler)."*
//!
//! This crate does exactly that over `cmini` ASTs:
//!
//! 1. **Rename** each instance's code apart: link-visible names follow the
//!    instance's Knit symbol map (the same map `objcopy` would apply),
//!    private globals get an instance tag, `static`s get a per-file tag,
//!    struct tags get an instance tag. Runtime (`__`-prefixed) names pass
//!    through.
//! 2. **Merge** all items into one translation unit, dropping duplicate
//!    prototypes/extern declarations.
//! 3. **Sort** function definitions callee-before-caller (Kahn's algorithm
//!    over the direct-call graph; cycles broken by original order) — this
//!    is what arms `cmini`'s gcc-like definition-before-use inliner across
//!    what used to be component boundaries.
//!
//! The merged unit is then compiled at `-O2`, producing a single object
//! whose exports carry the same mangled names the unflattened build would
//! have produced — so flattening is a drop-in substitution at link time.

use std::collections::{BTreeMap, BTreeSet};

use cmini::ast::*;
use cmini::error::CError;
use cmini::CompileOptions;
use cobj::object::ObjectFile;

mod rename;
mod sort;

pub use rename::rename_tu;
pub use sort::sort_functions;

/// One unit instance's contribution to a flattened group.
pub struct FlattenInput {
    /// Unique tag for this instance (e.g. `"k3"`); used to rename private
    /// globals and struct tags apart.
    pub tag: String,
    /// The instance's parsed translation units (one per source file).
    pub tus: Vec<TranslationUnit>,
    /// Knit symbol map for link-visible names: C identifier → mangled
    /// link-level name (exports to their mangles, imports to their
    /// providers' mangles).
    pub symbol_map: BTreeMap<String, String>,
}

/// Merge a group of instances into one translation unit (public so tests
/// and ablation benches can inspect the merged source before compilation).
pub fn merge(name: &str, inputs: &[FlattenInput]) -> TranslationUnit {
    let mut items: Vec<Item> = Vec::new();
    for input in inputs {
        for (file_idx, tu) in input.tus.iter().enumerate() {
            let renamed = rename_tu(tu, &input.tag, file_idx, &input.symbol_map);
            items.extend(renamed.items);
        }
    }
    let items = dedup_decls(items);
    let items = sort_functions(items);
    TranslationUnit { file: name.to_string(), items }
}

/// Flatten a group and compile it to a single object file.
///
/// `external` lists the mangled names that must stay link-visible (exports
/// wired to units outside the group, plus initializers the generated boot
/// code calls). Everything else is localized and — once the inliner has
/// absorbed it — garbage-collected, so flattening *shrinks* text rather
/// than duplicating it (the paper observes flattening reduced the router's
/// text size).
pub fn flatten_group(
    name: &str,
    inputs: &[FlattenInput],
    opts: &CompileOptions,
    external: &BTreeSet<String>,
) -> Result<ObjectFile, CError> {
    let merged = merge(name, inputs);
    let mut obj = cmini::backend(merged, opts)?;
    cobj::objcopy::localize_except(&mut obj, external);
    Ok(cobj::objcopy::gc(&obj))
}

/// Remove duplicate prototypes and extern declarations: keep at most one
/// declaration per name, and none at all when a definition exists.
fn dedup_decls(items: Vec<Item>) -> Vec<Item> {
    let mut defined_funcs: BTreeSet<String> = BTreeSet::new();
    let mut defined_globals: BTreeSet<String> = BTreeSet::new();
    let mut defined_structs: BTreeSet<String> = BTreeSet::new();
    for i in &items {
        match i {
            Item::Func(f) if f.body.is_some() => {
                defined_funcs.insert(f.name.clone());
            }
            Item::Global(g) if g.storage != Storage::Extern => {
                defined_globals.insert(g.name.clone());
            }
            Item::Struct(s) if !s.fields.is_empty() => {
                defined_structs.insert(s.name.clone());
            }
            _ => {}
        }
    }
    let mut seen_protos: BTreeSet<String> = BTreeSet::new();
    let mut seen_extern: BTreeSet<String> = BTreeSet::new();
    let mut seen_structs: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::with_capacity(items.len());
    for i in items {
        match &i {
            Item::Func(f) if f.body.is_none() => {
                if defined_funcs.contains(&f.name) {
                    // a definition exists; keep the first prototype only if
                    // it precedes the definition — simplest is to keep one
                    // prototype always (harmless) but never duplicates
                    if !seen_protos.insert(f.name.clone()) {
                        continue;
                    }
                } else if !seen_protos.insert(f.name.clone()) {
                    continue;
                }
            }
            Item::Global(g) if g.storage == Storage::Extern => {
                if !seen_extern.insert(g.name.clone()) {
                    continue;
                }
                let _ = defined_globals.contains(&g.name); // both fine to keep once
            }
            Item::Struct(s)
                if s.fields.is_empty()
                // forward declarations are never needed after merging
                && (defined_structs.contains(&s.name) || !seen_structs.insert(s.name.clone())) =>
            {
                continue;
            }
            _ => {}
        }
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmini::parser::parse;

    fn input(tag: &str, srcs: &[&str], map: &[(&str, &str)]) -> FlattenInput {
        FlattenInput {
            tag: tag.to_string(),
            tus: srcs
                .iter()
                .enumerate()
                .map(|(i, s)| parse(&format!("{tag}_{i}.c"), s).unwrap())
                .collect(),
            symbol_map: map.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect(),
        }
    }

    #[test]
    fn merge_renames_instances_apart() {
        // two instances of the same "counter" unit
        let src = "static int count = 0; int bump() { count = count + 1; return count; }";
        let a = input("k0", &[src], &[("bump", "bump__a")]);
        let b = input("k1", &[src], &[("bump", "bump__b")]);
        let merged = merge("grp", &[a, b]);
        let names: Vec<&str> = merged
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Func(f) => Some(f.name.as_str()),
                Item::Global(g) => Some(g.name.as_str()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"bump__a"));
        assert!(names.contains(&"bump__b"));
        // statics tagged apart
        assert!(names.iter().filter(|n| n.contains("count")).count() == 2);
        assert!(names.iter().all(|n| *n != "count"));
    }

    #[test]
    fn merge_wires_import_to_provider_and_sorts_for_inlining() {
        // provider exports serve as `serve__p`; consumer imports serve
        // (undefined in its TU) wired to `serve__p`. The consumer appears
        // FIRST in the group, so only sorting makes inlining possible.
        let consumer = input(
            "k0",
            &["int serve(int x);\nint handle(int x) { return serve(x); }"],
            &[("serve", "serve__p"), ("handle", "handle__c")],
        );
        let provider =
            input("k1", &["int serve(int x) { return x + 1; }"], &[("serve", "serve__p")]);
        let merged = merge("grp", &[consumer, provider]);
        // the provider's definition must precede the consumer's
        let order: Vec<&str> = merged
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Func(f) if f.body.is_some() => Some(f.name.as_str()),
                _ => None,
            })
            .collect();
        let p = order.iter().position(|n| *n == "serve__p").unwrap();
        let c = order.iter().position(|n| *n == "handle__c").unwrap();
        assert!(p < c, "callee must come first: {order:?}");

        // and compiling it actually inlines the cross-component call
        let obj = cmini::backend(merged, &CompileOptions::default()).unwrap();
        let handle = obj
            .funcs
            .iter()
            .find(|f| obj.symbol(f.sym).name == "handle__c")
            .expect("handle compiled");
        assert!(
            !handle.body.iter().any(|i| matches!(i, cobj::Instr::Call { .. })),
            "cross-component call should be inlined after flattening"
        );
    }

    #[test]
    fn duplicate_prototypes_are_deduped() {
        let a = input(
            "k0",
            &["int shared(int x);\nint fa(int x) { return shared(x); }"],
            &[("shared", "shared__s"), ("fa", "fa__a")],
        );
        let b = input(
            "k1",
            &["int shared(int x);\nint fb(int x) { return shared(x); }"],
            &[("shared", "shared__s"), ("fb", "fb__b")],
        );
        let merged = merge("grp", &[a, b]);
        let protos = merged
            .items
            .iter()
            .filter(|i| matches!(i, Item::Func(f) if f.body.is_none() && f.name == "shared__s"))
            .count();
        assert_eq!(protos, 1);
    }

    #[test]
    fn statics_in_different_files_of_one_instance_stay_apart() {
        let a = input(
            "k0",
            &[
                "static int x = 1; int get1() { return x; }",
                "static int x = 2; int get2() { return x; }",
            ],
            &[("get1", "g1"), ("get2", "g2")],
        );
        let merged = merge("grp", &[a]);
        let globals: Vec<&str> = merged
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Global(g) => Some(g.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(globals.len(), 2);
        assert_ne!(globals[0], globals[1]);
    }

    #[test]
    fn struct_tags_are_renamed_per_instance() {
        let src = "struct state { int v; };\nstruct state st;\nint get() { return st.v; }";
        let a = input("k0", &[src], &[("get", "ga")]);
        let b = input("k1", &[src], &[("get", "gb")]);
        let merged = merge("grp", &[a, b]);
        let structs: Vec<&str> = merged
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Struct(s) => Some(s.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(structs.len(), 2);
        assert_ne!(structs[0], structs[1]);
        // and it still compiles
        assert!(cmini::backend(merged, &CompileOptions::default()).is_ok());
    }

    #[test]
    fn runtime_symbols_pass_through() {
        let a = input(
            "k0",
            &["int __con_putc(int c);\nvoid out(int c) { __con_putc(c); }"],
            &[("out", "out__a")],
        );
        let merged = merge("grp", &[a]);
        let obj = cmini::backend(merged, &CompileOptions::default()).unwrap();
        assert!(obj.undefined_names().contains("__con_putc"));
    }
}
