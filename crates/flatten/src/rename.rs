//! Whole-translation-unit renaming.
//!
//! Link-visible names follow the instance's Knit symbol map; private
//! globals get an instance tag; `static`s get a per-file tag (two files of
//! one instance may each have their own `static int x`); struct tags get an
//! instance tag. Locals and parameters are left alone, with proper
//! shadowing: a local that happens to share a global's name protects inner
//! references from renaming.

use std::collections::{BTreeMap, BTreeSet};

use cmini::ast::*;

/// Rename one translation unit of one instance.
///
/// * `tag` — instance tag (e.g. `"k3"`).
/// * `file_idx` — index of this file within the instance (statics tag).
/// * `symbol_map` — C identifier → mangled link-level name, for imports and
///   exports. Names absent from the map: `__`-prefixed names pass through
///   (runtime), everything else becomes `{tag}_{name}` (private).
pub fn rename_tu(
    tu: &TranslationUnit,
    tag: &str,
    file_idx: usize,
    symbol_map: &BTreeMap<String, String>,
) -> TranslationUnit {
    // Build the global-name map for this file.
    let mut map: BTreeMap<String, String> = BTreeMap::new();
    let mut structs: BTreeMap<String, String> = BTreeMap::new();
    for item in &tu.items {
        match item {
            Item::Struct(s) => {
                // per-file tags: two files of one instance may define the
                // same struct tag (via a shared header); C guarantees the
                // layouts agree, so keeping them distinct is safe.
                structs
                    .entry(s.name.clone())
                    .or_insert_with(|| format!("{tag}f{file_idx}_{}", s.name));
            }
            Item::Global(g) => {
                let new = global_name(&g.name, g.storage, tag, file_idx, symbol_map);
                map.insert(g.name.clone(), new);
            }
            Item::Func(f) => {
                let new = global_name(&f.name, f.storage, tag, file_idx, symbol_map);
                map.insert(f.name.clone(), new);
            }
        }
    }
    // References to names with no local declaration at all (e.g. a call to
    // an import with no prototype) still need mapping; fold the symbol map
    // in for names not otherwise declared.
    for (from, to) in symbol_map {
        map.entry(from.clone()).or_insert_with(|| to.clone());
    }

    let r = Renamer { map, structs, scopes: Vec::new() };
    let items = tu.items.iter().map(|i| r.item(i)).collect();
    TranslationUnit { file: tu.file.clone(), items }
}

fn global_name(
    name: &str,
    storage: Storage,
    tag: &str,
    file_idx: usize,
    symbol_map: &BTreeMap<String, String>,
) -> String {
    if let Some(mangled) = symbol_map.get(name) {
        return mangled.clone();
    }
    if name.starts_with("__") {
        return name.to_string(); // runtime symbol
    }
    match storage {
        Storage::Static => format!("{tag}f{file_idx}_{name}"),
        _ => format!("{tag}_{name}"),
    }
}

struct Renamer {
    map: BTreeMap<String, String>,
    structs: BTreeMap<String, String>,
    /// Stack of locally-bound names (shadowing protection). Interior
    /// mutability is avoided by cloning the stack per function — bodies are
    /// small.
    scopes: Vec<BTreeSet<String>>,
}

impl Renamer {
    fn item(&self, item: &Item) -> Item {
        match item {
            Item::Struct(s) => Item::Struct(StructDef {
                name: self.struct_name(&s.name),
                fields: s.fields.iter().map(|(n, t)| (n.clone(), self.ty(t))).collect(),
                span: s.span,
            }),
            Item::Global(g) => Item::Global(GlobalDef {
                name: self.map.get(&g.name).cloned().unwrap_or_else(|| g.name.clone()),
                ty: self.ty(&g.ty),
                init: g.init.as_ref().map(|i| self.init(i)),
                storage: g.storage,
                span: g.span,
            }),
            Item::Func(f) => {
                let mut me = Renamer {
                    map: self.map.clone(),
                    structs: self.structs.clone(),
                    scopes: vec![f.params.iter().map(|(n, _)| n.clone()).collect()],
                };
                Item::Func(FuncDef {
                    name: self.map.get(&f.name).cloned().unwrap_or_else(|| f.name.clone()),
                    ret: self.ty(&f.ret),
                    params: f.params.iter().map(|(n, t)| (n.clone(), self.ty(t))).collect(),
                    varargs: f.varargs,
                    body: f.body.as_ref().map(|b| me.stmts(b)),
                    storage: f.storage,
                    span: f.span,
                })
            }
        }
    }

    fn struct_name(&self, n: &str) -> String {
        self.structs.get(n).cloned().unwrap_or_else(|| n.to_string())
    }

    fn ty(&self, t: &Type) -> Type {
        match t {
            Type::Int | Type::Char | Type::Void => t.clone(),
            Type::Ptr(inner) => Type::Ptr(Box::new(self.ty(inner))),
            Type::Array(inner, n) => Type::Array(Box::new(self.ty(inner)), *n),
            Type::Struct(n) => Type::Struct(self.struct_name(n)),
            Type::Func(f) => Type::Func(Box::new(FuncType {
                ret: self.ty(&f.ret),
                params: f.params.iter().map(|p| self.ty(p)).collect(),
                varargs: f.varargs,
            })),
        }
    }

    fn init(&self, i: &Init) -> Init {
        match i {
            // Global initializers reference globals/functions; there is no
            // local scope, so a plain map lookup is correct.
            Init::Expr(e) => {
                let mut me = Renamer {
                    map: self.map.clone(),
                    structs: self.structs.clone(),
                    scopes: vec![],
                };
                Init::Expr(me.expr(e))
            }
            Init::List(items) => Init::List(items.iter().map(|x| self.init(x)).collect()),
        }
    }

    fn bound(&self, name: &str) -> bool {
        self.scopes.iter().any(|s| s.contains(name))
    }

    fn stmts(&mut self, ss: &[Stmt]) -> Vec<Stmt> {
        ss.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: &Stmt) -> Stmt {
        match s {
            Stmt::Expr(e) => Stmt::Expr(self.expr(e)),
            Stmt::Decl { name, ty, init, span } => {
                let init = init.as_ref().map(|e| self.expr(e));
                self.scopes.last_mut().expect("scope").insert(name.clone());
                Stmt::Decl { name: name.clone(), ty: self.ty(ty), init, span: *span }
            }
            Stmt::If { cond, then_s, else_s } => Stmt::If {
                cond: self.expr(cond),
                then_s: Box::new(self.in_scope(|me| me.stmt(then_s))),
                else_s: else_s.as_ref().map(|e| Box::new(self.in_scope(|me| me.stmt(e)))),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond: self.expr(cond),
                body: Box::new(self.in_scope(|me| me.stmt(body))),
            },
            Stmt::DoWhile { body, cond } => Stmt::DoWhile {
                body: Box::new(self.in_scope(|me| me.stmt(body))),
                cond: self.expr(cond),
            },
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(BTreeSet::new());
                let init = init.as_ref().map(|i| Box::new(self.stmt(i)));
                let cond = cond.as_ref().map(|c| self.expr(c));
                let step = step.as_ref().map(|st| self.expr(st));
                let body = Box::new(self.stmt(body));
                self.scopes.pop();
                Stmt::For { init, cond, step, body }
            }
            Stmt::Return(v, sp) => Stmt::Return(v.as_ref().map(|e| self.expr(e)), *sp),
            Stmt::Block(ss) => {
                self.scopes.push(BTreeSet::new());
                let out = self.stmts(ss);
                self.scopes.pop();
                Stmt::Block(out)
            }
            Stmt::Break(sp) => Stmt::Break(*sp),
            Stmt::Continue(sp) => Stmt::Continue(*sp),
            Stmt::Empty => Stmt::Empty,
        }
    }

    fn in_scope<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        self.scopes.push(BTreeSet::new());
        let out = f(self);
        self.scopes.pop();
        out
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        let kind = match &e.kind {
            ExprKind::Ident(n) => {
                if self.bound(n) {
                    ExprKind::Ident(n.clone())
                } else {
                    ExprKind::Ident(self.map.get(n).cloned().unwrap_or_else(|| n.clone()))
                }
            }
            ExprKind::Bin { op, lhs, rhs } => ExprKind::Bin {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
            },
            ExprKind::Un { op, expr } => ExprKind::Un { op: *op, expr: Box::new(self.expr(expr)) },
            ExprKind::Assign { op, lhs, rhs } => ExprKind::Assign {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
            },
            ExprKind::Cond { cond, then_e, else_e } => ExprKind::Cond {
                cond: Box::new(self.expr(cond)),
                then_e: Box::new(self.expr(then_e)),
                else_e: Box::new(self.expr(else_e)),
            },
            ExprKind::Call { callee, args } => ExprKind::Call {
                callee: Box::new(self.expr(callee)),
                args: args.iter().map(|a| self.expr(a)).collect(),
            },
            ExprKind::Index { base, index } => ExprKind::Index {
                base: Box::new(self.expr(base)),
                index: Box::new(self.expr(index)),
            },
            ExprKind::Member { base, field, arrow } => ExprKind::Member {
                base: Box::new(self.expr(base)),
                field: field.clone(),
                arrow: *arrow,
            },
            ExprKind::Deref(inner) => ExprKind::Deref(Box::new(self.expr(inner))),
            ExprKind::AddrOf(inner) => ExprKind::AddrOf(Box::new(self.expr(inner))),
            ExprKind::Cast { ty, expr } => {
                ExprKind::Cast { ty: self.ty(ty), expr: Box::new(self.expr(expr)) }
            }
            ExprKind::SizeofType(t) => ExprKind::SizeofType(self.ty(t)),
            ExprKind::SizeofExpr(inner) => ExprKind::SizeofExpr(Box::new(self.expr(inner))),
            ExprKind::IncDec { pre, inc, expr } => {
                ExprKind::IncDec { pre: *pre, inc: *inc, expr: Box::new(self.expr(expr)) }
            }
            ExprKind::VarArg(inner) => ExprKind::VarArg(Box::new(self.expr(inner))),
            other => other.clone(),
        };
        Expr::new(kind, e.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmini::parser::parse;

    fn map(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect()
    }

    #[test]
    fn exports_follow_symbol_map_and_privates_get_tagged() {
        let tu =
            parse("t.c", "int helper() { return 1; }\nint api() { return helper(); }").unwrap();
        let out = rename_tu(&tu, "k7", 0, &map(&[("api", "api__m")]));
        let names: Vec<&str> = out
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Func(f) => Some(f.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["k7_helper", "api__m"]);
        // the call site follows
        match &out.items[1] {
            Item::Func(f) => {
                let body = f.body.as_ref().unwrap();
                match &body[0] {
                    Stmt::Return(Some(e), _) => match &e.kind {
                        ExprKind::Call { callee, .. } => {
                            assert!(matches!(&callee.kind, ExprKind::Ident(n) if n == "k7_helper"));
                        }
                        _ => panic!(),
                    },
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn locals_shadow_globals() {
        let tu = parse(
            "t.c",
            "int x = 1;\nint f(int x) { return x; }\nint g() { int x = 2; { return x; } }",
        )
        .unwrap();
        let out = rename_tu(&tu, "k0", 0, &BTreeMap::new());
        // param and local uses stay `x`; the global got tagged
        let printed = format!("{out:?}");
        assert!(printed.contains("k0_x"));
        match &out.items[1] {
            Item::Func(f) => match &f.body.as_ref().unwrap()[0] {
                Stmt::Return(Some(e), _) => {
                    assert!(matches!(&e.kind, ExprKind::Ident(n) if n == "x"));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn runtime_names_pass_through() {
        let tu = parse("t.c", "int __brk(int n);\nint f() { return __brk(8); }").unwrap();
        let out = rename_tu(&tu, "k0", 0, &BTreeMap::new());
        match &out.items[0] {
            Item::Func(f) => assert_eq!(f.name, "__brk"),
            _ => panic!(),
        }
    }

    #[test]
    fn struct_tags_renamed_in_types_and_sizeof() {
        let tu = parse(
            "t.c",
            "struct s { int v; };\nstruct s inst;\nint f(struct s *p) { return p->v + sizeof(struct s); }",
        )
        .unwrap();
        let out = rename_tu(&tu, "k2", 0, &BTreeMap::new());
        match &out.items[0] {
            Item::Struct(s) => assert_eq!(s.name, "k2f0_s"),
            _ => panic!(),
        }
        match &out.items[2] {
            Item::Func(f) => {
                assert!(
                    matches!(&f.params[0].1, Type::Ptr(inner) if **inner == Type::Struct("k2f0_s".into()))
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn statics_tagged_per_file() {
        let tu = parse("t.c", "static int x; int get() { return x; }").unwrap();
        let a = rename_tu(&tu, "k1", 0, &BTreeMap::new());
        let b = rename_tu(&tu, "k1", 1, &BTreeMap::new());
        let name = |tu: &TranslationUnit| match &tu.items[0] {
            Item::Global(g) => g.name.clone(),
            _ => panic!(),
        };
        assert_ne!(name(&a), name(&b));
    }

    #[test]
    fn global_initializers_are_renamed() {
        let tu = parse("t.c", "int f();\nint (*fp)() = &f;").unwrap();
        let out = rename_tu(&tu, "k3", 0, &map(&[("f", "f__x")]));
        match &out.items[1] {
            Item::Global(g) => match g.init.as_ref().unwrap() {
                Init::Expr(e) => match &e.kind {
                    ExprKind::AddrOf(inner) => {
                        assert!(matches!(&inner.kind, ExprKind::Ident(n) if n == "f__x"));
                    }
                    _ => panic!(),
                },
                _ => panic!(),
            },
            _ => panic!(),
        }
    }
}
