//! Callee-before-caller ordering of function definitions.
//!
//! "sort function definitions so that the definition of each function comes
//! before as many uses as possible (to encourage inlining in the C
//! compiler)" — §6. Kahn's algorithm over the direct-call graph; cycles
//! (mutually recursive functions) are broken by original order, which is
//! exactly "as many uses as possible" rather than "all".

use std::collections::{BTreeMap, BTreeSet};

use cmini::ast::*;

/// Reorder: struct definitions first, then globals and prototypes (original
/// order), then function definitions callee-before-caller.
pub fn sort_functions(items: Vec<Item>) -> Vec<Item> {
    let mut structs = Vec::new();
    let mut decls = Vec::new();
    let mut funcs: Vec<FuncDef> = Vec::new();
    for i in items {
        match i {
            Item::Struct(_) => structs.push(i),
            Item::Global(_) => decls.push(i),
            Item::Func(f) => {
                if f.body.is_some() {
                    funcs.push(f);
                } else {
                    decls.push(Item::Func(f));
                }
            }
        }
    }

    // direct-call graph among defined functions
    let index: BTreeMap<&str, usize> =
        funcs.iter().enumerate().map(|(i, f)| (f.name.as_str(), i)).collect();
    let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); funcs.len()];
    for (i, f) in funcs.iter().enumerate() {
        if let Some(body) = &f.body {
            for s in body {
                collect_calls_stmt(s, &index, &mut callees[i]);
            }
        }
        callees[i].remove(&i); // self-recursion is not an ordering edge
    }

    // Kahn with original order as the tiebreak; on a cycle, emit the
    // earliest remaining function (breaking the cycle there).
    let n = funcs.len();
    let mut emitted = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    while order.len() < n {
        let mut picked = None;
        for i in 0..n {
            if !emitted[i] && callees[i].iter().all(|&c| emitted[c]) {
                picked = Some(i);
                break;
            }
        }
        let pick = picked.unwrap_or_else(|| {
            // cycle: emit the earliest remaining
            (0..n).find(|&i| !emitted[i]).expect("order incomplete implies something remains")
        });
        emitted[pick] = true;
        order.push(pick);
    }

    let mut out = structs;
    out.extend(decls);
    // reorder funcs without cloning bodies
    let mut slots: Vec<Option<FuncDef>> = funcs.into_iter().map(Some).collect();
    for i in order {
        out.push(Item::Func(slots[i].take().expect("each index emitted once")));
    }
    out
}

fn collect_calls_stmt(s: &Stmt, index: &BTreeMap<&str, usize>, out: &mut BTreeSet<usize>) {
    match s {
        Stmt::Expr(e) | Stmt::Return(Some(e), _) => collect_calls_expr(e, index, out),
        Stmt::Decl { init: Some(e), .. } => collect_calls_expr(e, index, out),
        Stmt::If { cond, then_s, else_s } => {
            collect_calls_expr(cond, index, out);
            collect_calls_stmt(then_s, index, out);
            if let Some(e) = else_s {
                collect_calls_stmt(e, index, out);
            }
        }
        Stmt::While { cond, body } => {
            collect_calls_expr(cond, index, out);
            collect_calls_stmt(body, index, out);
        }
        Stmt::DoWhile { body, cond } => {
            collect_calls_stmt(body, index, out);
            collect_calls_expr(cond, index, out);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                collect_calls_stmt(i, index, out);
            }
            if let Some(c) = cond {
                collect_calls_expr(c, index, out);
            }
            if let Some(st) = step {
                collect_calls_expr(st, index, out);
            }
            collect_calls_stmt(body, index, out);
        }
        Stmt::Block(ss) => {
            for s in ss {
                collect_calls_stmt(s, index, out);
            }
        }
        _ => {}
    }
}

fn collect_calls_expr(e: &Expr, index: &BTreeMap<&str, usize>, out: &mut BTreeSet<usize>) {
    match &e.kind {
        ExprKind::Ident(n) => {
            // any reference (call or address) counts as a use worth
            // ordering after the definition
            if let Some(&i) = index.get(n.as_str()) {
                out.insert(i);
            }
        }
        ExprKind::Call { callee, args } => {
            collect_calls_expr(callee, index, out);
            for a in args {
                collect_calls_expr(a, index, out);
            }
        }
        ExprKind::Bin { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            collect_calls_expr(lhs, index, out);
            collect_calls_expr(rhs, index, out);
        }
        ExprKind::Un { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::Deref(expr)
        | ExprKind::AddrOf(expr)
        | ExprKind::SizeofExpr(expr)
        | ExprKind::IncDec { expr, .. }
        | ExprKind::VarArg(expr) => collect_calls_expr(expr, index, out),
        ExprKind::Cond { cond, then_e, else_e } => {
            collect_calls_expr(cond, index, out);
            collect_calls_expr(then_e, index, out);
            collect_calls_expr(else_e, index, out);
        }
        ExprKind::Index { base, index: idx } => {
            collect_calls_expr(base, index, out);
            collect_calls_expr(idx, index, out);
        }
        ExprKind::Member { base, .. } => collect_calls_expr(base, index, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmini::parser::parse;

    fn order_of(src: &str) -> Vec<String> {
        let tu = parse("t.c", src).unwrap();
        sort_functions(tu.items)
            .into_iter()
            .filter_map(|i| match i {
                Item::Func(f) if f.body.is_some() => Some(f.name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn callee_moves_before_caller() {
        let order = order_of(
            "int caller(int x) { return callee(x); }\nint callee(int x) { return x + 1; }",
        );
        assert_eq!(order, vec!["callee", "caller"]);
    }

    #[test]
    fn chains_sort_depth_first() {
        let order = order_of(
            "int a(int x) { return b(x); }\nint b(int x) { return c(x); }\nint c(int x) { return x; }",
        );
        assert_eq!(order, vec!["c", "b", "a"]);
    }

    #[test]
    fn cycles_break_at_original_order() {
        let order = order_of(
            "int ping(int x) { return x ? pong(x - 1) : 0; }\nint pong(int x) { return x ? ping(x - 1) : 1; }",
        );
        // cycle: earliest remaining (ping) is emitted first
        assert_eq!(order, vec!["ping", "pong"]);
    }

    #[test]
    fn self_recursion_is_not_a_cycle() {
        let order =
            order_of("int f(int x) { return x ? f(x - 1) : 0; }\nint g(int x) { return f(x); }");
        assert_eq!(order, vec!["f", "g"]);
    }

    #[test]
    fn structs_and_globals_stay_in_front() {
        let tu = parse(
            "t.c",
            "int caller() { return callee(); }\nstruct s { int v; };\nint g = 3;\nint callee() { return g; }",
        )
        .unwrap();
        let sorted = sort_functions(tu.items);
        assert!(matches!(sorted[0], Item::Struct(_)));
        assert!(matches!(&sorted[1], Item::Global(_)));
        assert!(matches!(&sorted[2], Item::Func(f) if f.name == "callee"));
    }

    #[test]
    fn address_taken_functions_also_ordered_first() {
        let order = order_of(
            "int user() { return apply(&target); }\nint target() { return 1; }\nint apply(int (*f)()) { return f(); }",
        );
        let u = order.iter().position(|n| n == "user").unwrap();
        let t = order.iter().position(|n| n == "target").unwrap();
        assert!(t < u);
    }
}
