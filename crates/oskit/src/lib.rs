//! # oskit — a mini component kit for Knit
//!
//! The paper's primary target is the Flux OSKit, "a large collection of
//! components for building low-level systems" of which the authors
//! converted ~250 to Knit. This crate is the reproduction's component
//! corpus: a deliberately smaller kit (documented as a substitution in
//! DESIGN.md) that nonetheless exercises every Knit feature the paper
//! discusses:
//!
//! * swap-in providers of one interface (two consoles, two allocators,
//!   two locks);
//! * renaming on import and export (the serial console exports
//!   `serial_putc` as `console_putc`; the redirect kernel renames two
//!   `printf` imports apart);
//! * multiple instantiation (two `Printf`s, one per console — §5.1's
//!   device-driver output redirection);
//! * initializer scheduling with fine-grained dependencies (the allocator
//!   initializes before the filesystem that `needs` it);
//! * multi-file units with unit-private cross-file symbols (`MemFs`);
//! * `context` constraints that accept the spinlock interrupt kernel and
//!   reject the blocking-mutex one (§4);
//! * flattening boundaries (`ChainKernelFlat`).
//!
//! Sources live under `corpus/` as real `.c`/`.h`/`.unit` files embedded
//! into the library, served to the Knit pipeline through a [`SourceTree`].

use knit::{build, BuildOptions, BuildReport, KnitError, Program, SourceTree};

/// Name of the quickstart kernel (console + printf + hello).
pub const KERNEL_HELLO: &str = "HelloKernel";
/// Filesystem kernel (allocator + memfs + stdio + printf).
pub const KERNEL_FS: &str = "FsKernel";
/// Two-printf output-redirection kernel (§5.1's example).
pub const KERNEL_REDIRECT: &str = "RedirectKernel";
/// Interrupt kernel with a spinlock handler — passes constraints.
pub const KERNEL_IRQ_GOOD: &str = "IrqKernelGood";
/// Interrupt kernel with a blocking mutex — rejected by constraints (§4).
pub const KERNEL_IRQ_BAD: &str = "IrqKernelBad";
/// Blocking-mutex application kernel.
pub const KERNEL_LOCK: &str = "LockKernel";
/// The same application over a spinlock.
pub const KERNEL_LOCK_SPIN: &str = "LockKernelSpin";
/// Network echo kernel (device 0 → reversed payload → device 1).
pub const KERNEL_NETECHO: &str = "NetEchoKernel";
/// Timer kernel reading the cycle counter through the Time bundle.
pub const KERNEL_UPTIME: &str = "UptimeKernel";
/// The hello application over the serial console instead of VGA.
pub const KERNEL_HELLO_SERIAL: &str = "HelloSerialKernel";
/// Unit-boundary-crossing microbenchmark configuration (§6).
pub const KERNEL_CHAIN: &str = "ChainKernel";
/// The same configuration under a `flatten` boundary.
pub const KERNEL_CHAIN_FLAT: &str = "ChainKernelFlat";

/// All kernels that should build cleanly.
pub const GOOD_KERNELS: &[&str] = &[
    KERNEL_HELLO,
    KERNEL_HELLO_SERIAL,
    KERNEL_FS,
    KERNEL_REDIRECT,
    KERNEL_IRQ_GOOD,
    KERNEL_LOCK,
    KERNEL_LOCK_SPIN,
    KERNEL_NETECHO,
    KERNEL_UPTIME,
    KERNEL_CHAIN,
    KERNEL_CHAIN_FLAT,
];

/// The kit's C and header sources as an in-memory tree.
pub fn sources() -> SourceTree {
    let mut t = SourceTree::new();
    t.add("include/memfs.h", include_str!("../corpus/include/memfs.h"));
    t.add("str.c", include_str!("../corpus/str.c"));
    t.add("vga.c", include_str!("../corpus/vga.c"));
    t.add("serial.c", include_str!("../corpus/serial.c"));
    t.add("printf.c", include_str!("../corpus/printf.c"));
    t.add("bump_alloc.c", include_str!("../corpus/bump_alloc.c"));
    t.add("list_alloc.c", include_str!("../corpus/list_alloc.c"));
    t.add("memfs.c", include_str!("../corpus/memfs.c"));
    t.add("memfs_util.c", include_str!("../corpus/memfs_util.c"));
    t.add("stdio.c", include_str!("../corpus/stdio.c"));
    t.add("timer.c", include_str!("../corpus/timer.c"));
    t.add("sync_spin.c", include_str!("../corpus/sync_spin.c"));
    t.add("sync_mutex.c", include_str!("../corpus/sync_mutex.c"));
    t.add("irq.c", include_str!("../corpus/irq.c"));
    t.add("netstub.c", include_str!("../corpus/netstub.c"));
    t.add("hello_main.c", include_str!("../corpus/hello_main.c"));
    t.add("fs_main.c", include_str!("../corpus/fs_main.c"));
    t.add("redirect_main.c", include_str!("../corpus/redirect_main.c"));
    t.add("lock_main.c", include_str!("../corpus/lock_main.c"));
    t.add("irq_main.c", include_str!("../corpus/irq_main.c"));
    t.add("irq_handler_spin.c", include_str!("../corpus/irq_handler_spin.c"));
    t.add("netecho_main.c", include_str!("../corpus/netecho_main.c"));
    t.add("uptime_main.c", include_str!("../corpus/uptime_main.c"));
    t.add("bench_chain.c", include_str!("../corpus/bench_chain.c"));
    t.add("bench_floor.c", include_str!("../corpus/bench_floor.c"));
    t.add("bench_driver.c", include_str!("../corpus/bench_driver.c"));
    t
}

/// The kit's unit declarations as raw `(file, text)` pairs — for callers
/// that ship them somewhere else (e.g. over the composition-server
/// protocol) instead of loading them locally.
pub fn unit_sources() -> [(&'static str, &'static str); 4] {
    [
        ("base.unit", include_str!("../corpus/units/base.unit")),
        ("components.unit", include_str!("../corpus/units/components.unit")),
        ("kernels.unit", include_str!("../corpus/units/kernels.unit")),
        ("bench.unit", include_str!("../corpus/units/bench.unit")),
    ]
}

/// The kit's unit declarations, loaded into a fresh [`Program`].
pub fn program() -> Program {
    let mut p = Program::new();
    for (file, text) in unit_sources() {
        p.load_str(file, text).unwrap_or_else(|e| panic!("{file} parses: {e}"));
    }
    p
}

/// Program and sources together.
pub fn setup() -> (Program, SourceTree) {
    (program(), sources())
}

/// Default build options for a kit kernel: constraints on, flattening on,
/// runtime symbols from the `machine` crate.
pub fn kernel_options(root: &str) -> BuildOptions {
    BuildOptions::new(root, machine::runtime_symbols())
}

/// Build one of the kit's kernels with default options.
pub fn build_kernel(root: &str) -> Result<BuildReport, KnitError> {
    let (p, t) = setup();
    build(&p, &t, &kernel_options(root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::Machine;

    #[test]
    fn all_good_kernels_build() {
        for k in GOOD_KERNELS {
            if let Err(e) = build_kernel(k) {
                panic!("kernel {k} failed to build: {e}");
            }
        }
    }

    #[test]
    fn hello_kernel_runs() {
        let report = build_kernel(KERNEL_HELLO).unwrap();
        let mut m = Machine::new(report.image).unwrap();
        assert_eq!(m.run_entry().unwrap(), 42);
        assert!(m.console.output.contains("Hello from Knit!"));
        assert!(m.console.output.contains("answer=42 hex=ff char=k str=units"));
    }

    #[test]
    fn fs_kernel_round_trips_file_contents() {
        let report = build_kernel(KERNEL_FS).unwrap();
        // allocator must initialize before the filesystem
        let pos = |n: &str| {
            report
                .schedule
                .iter()
                .position(|s| s.ends_with(n))
                .unwrap_or_else(|| panic!("{n} missing from schedule {:?}", report.schedule))
        };
        assert!(pos("alloc_init") < pos("fs_init"));
        let mut m = Machine::new(report.image).unwrap();
        let n = m.run_entry().unwrap();
        assert_eq!(n, "component kits compose".len() as i64);
        assert!(m.console.output.contains("motd(22): component kits compose"));
    }

    #[test]
    fn redirect_kernel_splits_output_between_consoles() {
        let report = build_kernel(KERNEL_REDIRECT).unwrap();
        // two Printf instances share one compiled unit
        assert_eq!(report.stats.instances, 5);
        let mut m = Machine::new(report.image).unwrap();
        m.run_entry().unwrap();
        assert!(m.console.output.contains("app: user output 1"));
        assert!(m.console.output.contains("app: done"));
        assert!(!m.console.output.contains("drv:"), "vga got: {}", m.console.output);
        assert!(m.serial.output.contains("drv: device state ff"));
        assert!(!m.serial.output.contains("app:"), "serial got: {}", m.serial.output);
    }

    #[test]
    fn irq_bad_kernel_is_rejected_by_constraints() {
        match build_kernel(KERNEL_IRQ_BAD) {
            Err(err) => match err.root() {
                KnitError::ConstraintViolation { property, explanation } => {
                    assert_eq!(property, "context");
                    assert!(
                        explanation.contains("NoContext") && explanation.contains("ProcessContext"),
                        "{explanation}"
                    );
                }
                other => panic!("wrong error: {other}"),
            },
            Ok(_) => panic!("blocking mutex under interrupt context must be rejected"),
        }
    }

    #[test]
    fn irq_good_kernel_runs() {
        let report = build_kernel(KERNEL_IRQ_GOOD).unwrap();
        let mut m = Machine::new(report.image).unwrap();
        let r = m.run_entry().unwrap();
        assert!(m.console.output.contains("irqs=5"));
        assert!(r > 0);
    }

    #[test]
    fn lock_kernels_agree() {
        let a = build_kernel(KERNEL_LOCK).unwrap();
        let b = build_kernel(KERNEL_LOCK_SPIN).unwrap();
        let mut ma = Machine::new(a.image).unwrap();
        let mut mb = Machine::new(b.image).unwrap();
        assert_eq!(ma.run_entry().unwrap(), mb.run_entry().unwrap());
        assert_eq!(ma.console.output, mb.console.output);
    }

    #[test]
    fn chain_kernels_match_and_flat_is_faster() {
        let plain = build_kernel(KERNEL_CHAIN).unwrap();
        let flat = build_kernel(KERNEL_CHAIN_FLAT).unwrap();
        assert_eq!(flat.stats.flatten_groups, 1);
        let entry_p = plain.exports["chain.run_chain"].clone();
        let entry_f = flat.exports["chain.run_chain"].clone();

        let mut mp = Machine::new(plain.image).unwrap();
        mp.call("__knit_init", &[]).unwrap();
        mp.reset_counters();
        let rp = mp.call(&entry_p, &[1000]).unwrap();
        let cp = mp.counters();

        let mut mf = Machine::new(flat.image).unwrap();
        mf.call("__knit_init", &[]).unwrap();
        mf.reset_counters();
        let rf = mf.call(&entry_f, &[1000]).unwrap();
        let cf = mf.counters();

        assert_eq!(rp, rf, "flattening must not change results");
        assert!(cf.calls < cp.calls, "flat calls {} vs plain {}", cf.calls, cp.calls);
        assert!(cf.cycles < cp.cycles, "flat cycles {} vs plain {}", cf.cycles, cp.cycles);
    }

    #[test]
    fn netecho_kernel_reverses_payloads() {
        let report = build_kernel(KERNEL_NETECHO).unwrap();
        let mut m = Machine::new(report.image).unwrap();
        let mut frame = vec![0u8; 14];
        frame.extend_from_slice(b"abcdef");
        m.netdevs[0].inject(frame);
        m.netdevs[0].inject(vec![1; 14]); // header-only frame is skipped
        let echoed = m.run_entry().unwrap();
        assert_eq!(echoed, 1);
        let out = m.netdevs[1].collect().unwrap();
        assert_eq!(&out[14..], b"fedcba");
        assert!(m.console.output.contains("echoed 1 frames"));
    }

    #[test]
    fn uptime_kernel_reads_monotone_clock() {
        let report = build_kernel(KERNEL_UPTIME).unwrap();
        let mut m = Machine::new(report.image).unwrap();
        assert_eq!(m.run_entry().unwrap(), 1, "elapsed cycles must be positive");
        assert!(m.console.output.contains("cycles"));
    }

    #[test]
    fn serial_hello_goes_to_serial_only() {
        let report = build_kernel(KERNEL_HELLO_SERIAL).unwrap();
        let mut m = Machine::new(report.image).unwrap();
        assert_eq!(m.run_entry().unwrap(), 42);
        assert!(m.serial.output.contains("Hello from Knit!"));
        assert!(m.console.output.is_empty());
    }

    #[test]
    fn allocators_are_interchangeable() {
        // Swap ListAlloc for BumpAlloc in the fs kernel via a new config.
        let (mut p, t) = setup();
        p.load_str(
            "swap.unit",
            r#"
            unit FsKernelBump = {
                exports [ main : Main ];
                link {
                    con : VgaConsole;
                    out : Printf [ console = con.console ];
                    str : StrLib;
                    mem : BumpAlloc;
                    fs : MemFs [ mem = mem.mem, str = str.str ];
                    stdio : StdioUnit [ fs = fs.fs, str = str.str ];
                    m : FsMain [ stdout = out.stdout, stdio = stdio.stdio, str = str.str ];
                    main = m.main;
                };
            }
            "#,
        )
        .unwrap();
        let report = knit::build(&p, &t, &kernel_options("FsKernelBump")).unwrap();
        let mut m = Machine::new(report.image).unwrap();
        assert_eq!(m.run_entry().unwrap(), 22);
    }
}
