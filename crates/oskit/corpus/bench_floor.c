/* Bottom of the microbenchmark chain. */
int stage(int x) {
    return x;
}
