/* The paper's §5.1 example: "OSKit device drivers generate output by
 * calling printf, which is also used for application output. Redirecting
 * device driver output without Knit requires creating two separate copies
 * of printf" — with Knit it is just two instances of the same unit, wired
 * to different consoles, renamed apart here. */
int app_printf(char *fmt, ...);
int drv_printf(char *fmt, ...);

int main() {
    app_printf("app: user output %d\n", 1);
    drv_printf("drv: device state %x\n", 255);
    app_printf("app: done\n");
    return 0;
}
