/* Exercises a lock through the generic Lock bundle. */
int printf(char *fmt, ...);
int lock_acquire();
int lock_release();

int main() {
    for (int i = 0; i < 3; i++) {
        lock_acquire();
        printf("in critical section %d\n", i);
        lock_release();
    }
    return 3;
}
