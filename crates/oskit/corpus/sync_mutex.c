/* Blocking mutex: requires a process context to block in. */
static int held;
static int waiters;

int lock_acquire() {
    if (held) waiters++;
    while (held) { }
    held = 1;
    return 0;
}

int lock_release() {
    held = 0;
    return 0;
}
