/* In-memory filesystem: a fixed table of growable files. */
#include "memfs.h"

void *malloc(int n);
void free(void *p);
int strcmp(char *a, char *b);
char *strcpy(char *d, char *s);
void *memcpy(void *d, void *s, int n);

struct mfile {
    char name[MEMFS_NAME_MAX];
    char *data;
    int size;
    int cap;
    int used_slot;
};

struct mfile fs_table[MEMFS_MAX_FILES];

int fs_find(char *name);   /* defined in memfs_util.c (same unit) */

void fs_init() {
    for (int i = 0; i < MEMFS_MAX_FILES; i++) {
        fs_table[i].used_slot = 0;
        fs_table[i].size = 0;
        fs_table[i].cap = 0;
    }
}

int fs_create(char *name) {
    int existing = fs_find(name);
    if (existing >= 0) {
        fs_table[existing].size = 0;
        return existing;
    }
    for (int i = 0; i < MEMFS_MAX_FILES; i++) {
        if (!fs_table[i].used_slot) {
            fs_table[i].used_slot = 1;
            strcpy(fs_table[i].name, name);
            fs_table[i].size = 0;
            fs_table[i].cap = MEMFS_CHUNK;
            fs_table[i].data = (char*)malloc(MEMFS_CHUNK);
            return i;
        }
    }
    return -1;
}

int fs_open(char *name) {
    return fs_find(name);
}

int fs_write(int fd, char *buf, int n) {
    if (fd < 0 || fd >= MEMFS_MAX_FILES) return -1;
    struct mfile *f = &fs_table[fd];
    if (!f->used_slot) return -1;
    while (f->size + n > f->cap) {
        char *bigger = (char*)malloc(f->cap * 2);
        memcpy(bigger, f->data, f->size);
        free(f->data);
        f->data = bigger;
        f->cap = f->cap * 2;
    }
    memcpy(f->data + f->size, buf, n);
    f->size += n;
    return n;
}

int fs_read(int fd, char *buf, int max) {
    if (fd < 0 || fd >= MEMFS_MAX_FILES) return -1;
    struct mfile *f = &fs_table[fd];
    if (!f->used_slot) return -1;
    int n = f->size < max ? f->size : max;
    memcpy(buf, f->data, n);
    return n;
}

int fs_size(int fd) {
    if (fd < 0 || fd >= MEMFS_MAX_FILES) return -1;
    if (!fs_table[fd].used_slot) return -1;
    return fs_table[fd].size;
}
