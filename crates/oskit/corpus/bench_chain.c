/* Unit-boundary microbenchmark stage: one hop in a call chain across
 * component boundaries (§6's "programs designed to spend most of their
 * time traversing unit boundaries"). */
int next_stage(int x);

int stage(int x) {
    return next_stage(x + 1);
}
