/* Formatted output over an imported console. */
int console_putc(int c);

int putchar(int c) {
    return console_putc(c);
}

int puts(char *s) {
    while (*s) { console_putc(*s); s++; }
    console_putc('\n');
    return 0;
}

static void print_str(char *s) {
    while (*s) { console_putc(*s); s++; }
}

static void print_udec(int v) {
    if (v >= 10) print_udec(v / 10);
    console_putc('0' + v % 10);
}

static void print_dec(int v) {
    if (v < 0) { console_putc('-'); print_udec(-v); }
    else print_udec(v);
}

static char hexdigits[] = "0123456789abcdef";

static void print_hex(int v) {
    if (v >= 16) print_hex(v / 16);
    console_putc(hexdigits[v % 16]);
}

int printf(char *fmt, ...) {
    int argi = 0;
    int written = 0;
    while (*fmt) {
        if (*fmt == '%') {
            fmt++;
            if (*fmt == 'd') { print_dec(__vararg(argi)); argi++; }
            else if (*fmt == 's') { print_str((char*)__vararg(argi)); argi++; }
            else if (*fmt == 'c') { console_putc(__vararg(argi)); argi++; }
            else if (*fmt == 'x') { print_hex(__vararg(argi)); argi++; }
            else if (*fmt == '%') { console_putc('%'); }
            else { console_putc('%'); console_putc(*fmt); }
        } else {
            console_putc(*fmt);
        }
        fmt++;
        written++;
    }
    return written;
}
