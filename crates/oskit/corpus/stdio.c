/* Buffered-ish stdio over the filesystem. */
int fs_create(char *name);
int fs_open(char *name);
int fs_read(int fd, char *buf, int max);
int fs_write(int fd, char *buf, int n);
int fs_size(int fd);
int strlen(char *s);

int fopen(char *name, char *mode) {
    if (mode[0] == 'r') return fs_open(name);
    if (mode[0] == 'w') return fs_create(name);
    if (mode[0] == 'a') {
        int fd = fs_open(name);
        if (fd >= 0) return fd;
        return fs_create(name);
    }
    return -1;
}

int fclose(int fd) {
    return 0;
}

int fread(int fd, char *buf, int max) {
    return fs_read(fd, buf, max);
}

int fwrite(int fd, char *buf, int n) {
    return fs_write(fd, buf, n);
}

int fputs(int fd, char *s) {
    return fs_write(fd, s, strlen(s));
}
