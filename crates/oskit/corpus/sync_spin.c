/* Spinlock: usable from any context (the machine is single-core, so
 * acquisition always succeeds; the annotation is what matters). */
static int held;

int lock_acquire() {
    while (held) { }
    held = 1;
    return 0;
}

int lock_release() {
    held = 0;
    return 0;
}
