/* An interrupt-safe handler: touches a spinlock only. */
int lock_acquire();
int lock_release();

static int events;

int handle(int irq) {
    lock_acquire();
    events += irq;
    lock_release();
    return events;
}
