/* Timer kernel: measure the cost of a unit of work via the Time bundle. */
int printf(char *fmt, ...);
int uptime();

static int spin(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) acc += i * i;
    return acc;
}

int main() {
    int t0 = uptime();
    spin(1000);
    int t1 = uptime();
    int spent = t1 - t0;
    printf("1000 iterations took %d cycles\n", spent);
    return spent > 0;
}
