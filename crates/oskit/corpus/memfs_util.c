/* Second file of the memfs unit: exercises cross-file unit-private
 * symbols (fs_table, fs_find are unit-internal, not exported). */
#include "memfs.h"

int strcmp(char *a, char *b);

struct mfile {
    char name[MEMFS_NAME_MAX];
    char *data;
    int size;
    int cap;
    int used_slot;
};

extern struct mfile fs_table[16];

int fs_find(char *name) {
    for (int i = 0; i < MEMFS_MAX_FILES; i++) {
        if (fs_table[i].used_slot && !strcmp(fs_table[i].name, name)) return i;
    }
    return -1;
}
