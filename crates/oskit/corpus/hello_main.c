/* Quickstart kernel: print and return. */
int printf(char *fmt, ...);

int main() {
    printf("Hello from Knit!\n");
    printf("answer=%d hex=%x char=%c str=%s\n", 42, 255, 'k', "units");
    return 42;
}
