/* Filesystem kernel: create, write, read back, report. */
int printf(char *fmt, ...);
int fopen(char *name, char *mode);
int fputs(int fd, char *s);
int fread(int fd, char *buf, int max);
int fclose(int fd);
int strlen(char *s);

int main() {
    int f = fopen("motd", "w");
    fputs(f, "component kits ");
    fputs(f, "compose");
    fclose(f);

    int g = fopen("motd", "r");
    char buf[64];
    int n = fread(g, buf, 63);
    buf[n] = 0;
    printf("motd(%d): %s\n", n, buf);
    return n;
}
