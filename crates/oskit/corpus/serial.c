/* Serial console driver. Defines serial_putc/serial_getc; the unit's
 * rename clauses export them under the generic console interface —
 * the paper's own example of renaming (§3.2). */
int __serial_putc(int c);
int __serial_getc();

int serial_putc(int c) {
    return __serial_putc(c);
}

int serial_getc() {
    return __serial_getc();
}
