/* Cycle-counter timer. */
int __clock();

int uptime() {
    return __clock();
}
