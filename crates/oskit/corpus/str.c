/* String and memory utilities: the OSKit's minimal C library slice. */
int strlen(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}

int strcmp(char *a, char *b) {
    int i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
    for (int i = 0; i < n; i++) {
        if (a[i] != b[i]) return a[i] - b[i];
        if (a[i] == 0) return 0;
    }
    return 0;
}

char *strcpy(char *dst, char *src) {
    int i = 0;
    while (src[i]) { dst[i] = src[i]; i++; }
    dst[i] = 0;
    return dst;
}

void *memset(void *p, int c, int n) {
    char *b = (char*)p;
    for (int i = 0; i < n; i++) b[i] = c;
    return p;
}

void *memcpy(void *dst, void *src, int n) {
    char *d = (char*)dst;
    char *s = (char*)src;
    for (int i = 0; i < n; i++) d[i] = s[i];
    return dst;
}
