/* Interrupt dispatch: calls the wired handler with no process context. */
int handle(int irq);

static int count;

int irq_entry(int irq) {
    count++;
    return handle(irq);
}

int irq_count() {
    return count;
}
