/* VGA text console driver: the machine's primary console device. */
int __con_putc(int c);
int __con_getc();

int console_putc(int c) {
    return __con_putc(c);
}

int console_getc() {
    return __con_getc();
}
