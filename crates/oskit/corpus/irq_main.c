/* Drives the interrupt path: each "interrupt" bumps a counter through the
 * dispatcher and wired handler. */
int printf(char *fmt, ...);
int irq_entry(int irq);
int irq_count();

int main() {
    int sum = 0;
    for (int i = 0; i < 5; i++) sum += irq_entry(i);
    printf("irqs=%d sum=%d\n", irq_count(), sum);
    return sum;
}
