/* Network echo kernel: forward every frame from device 0 to device 1,
 * reversing the payload bytes after the 14-byte header. */
int printf(char *fmt, ...);
int net_recv(int dev, char *buf, int max);
int net_send(int dev, char *buf, int len);
int net_pending(int dev);

static char buf[1600];

int main() {
    int frames = 0;
    while (net_pending(0) > 0) {
        int n = net_recv(0, buf, 1600);
        if (n <= 14) continue;
        /* reverse payload in place */
        int lo = 14;
        int hi = n - 1;
        while (lo < hi) {
            char t = buf[lo];
            buf[lo] = buf[hi];
            buf[hi] = t;
            lo++;
            hi--;
        }
        net_send(1, buf, n);
        frames++;
    }
    printf("echoed %d frames\n", frames);
    return frames;
}
