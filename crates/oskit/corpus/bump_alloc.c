/* Bump allocator: fast, never frees. The simplest Malloc provider. */
int __brk(int n);

#define BUMP_POOL (1 << 20)

static char *pool;
static int used;
static int total;

void alloc_init() {
    pool = (char*)__brk(BUMP_POOL);
    used = 0;
    total = BUMP_POOL;
}

void *malloc(int n) {
    n = (n + 15) & ~15;
    if (used + n > total) {
        char *more = (char*)__brk(BUMP_POOL);
        /* pool growth only works when __brk is contiguous, which it is */
        total += BUMP_POOL;
    }
    char *p = pool + used;
    used += n;
    return p;
}

void free(void *p) {
    /* bump allocators do not free */
}
