/* Drives the cross-unit call chain many times. */
int next_stage(int x);

int run_chain(int iters) {
    int acc = 0;
    for (int i = 0; i < iters; i++) {
        acc += next_stage(i);
    }
    return acc;
}
