/* Free-list allocator: first-fit with block splitting; free() returns
 * blocks to the list. A drop-in alternative provider of Malloc — the point
 * of component kits is that callers cannot tell the difference. */
int __brk(int n);

struct block {
    int size;
    struct block *next;
};

#define LIST_CHUNK (1 << 18)
#define HDR ((int)sizeof(struct block))

static struct block *free_list;

void alloc_init() {
    free_list = (struct block*)0;
}

static void grow(int need) {
    int n = need + HDR;
    if (n < LIST_CHUNK) n = LIST_CHUNK;
    struct block *b = (struct block*)__brk(n);
    b->size = n - HDR;
    b->next = free_list;
    free_list = b;
}

void *malloc(int n) {
    n = (n + 15) & ~15;
    struct block *prev = (struct block*)0;
    struct block *cur = free_list;
    while (cur) {
        if (cur->size >= n) {
            if (cur->size >= n + HDR + 16) {
                /* split: tail becomes a new free block */
                char *raw = (char*)cur;
                struct block *tail = (struct block*)(raw + HDR + n);
                tail->size = cur->size - n - HDR;
                tail->next = cur->next;
                cur->size = n;
                if (prev) prev->next = tail; else free_list = tail;
            } else {
                if (prev) prev->next = cur->next; else free_list = cur->next;
            }
            return (char*)cur + HDR;
        }
        prev = cur;
        cur = cur->next;
    }
    grow(n);
    return malloc(n);
}

void free(void *p) {
    if (!p) return;
    struct block *b = (struct block*)((char*)p - HDR);
    b->next = free_list;
    free_list = b;
}
