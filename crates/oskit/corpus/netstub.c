/* Thin wrapper over the machine's network devices. */
int __net_rx(int dev, char *buf, int max);
int __net_tx(int dev, char *buf, int len);
int __net_poll(int dev);

int net_recv(int dev, char *buf, int max) {
    return __net_rx(dev, buf, max);
}

int net_send(int dev, char *buf, int len) {
    return __net_tx(dev, buf, len);
}

int net_pending(int dev) {
    return __net_poll(dev);
}
