#ifndef MEMFS_H
#define MEMFS_H 1
#define MEMFS_MAX_FILES 16
#define MEMFS_NAME_MAX 32
#define MEMFS_CHUNK 256
#endif
