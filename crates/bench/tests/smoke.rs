//! Smoke tests for the experiment binaries' underlying harnesses, on tiny
//! packet workloads so they run inside `cargo test` in seconds. The full
//! 512-packet runs (and the paper-ordering assertions) live in the crate's
//! unit tests and in the binaries themselves.

use bench::{
    analyze_time, build_time_breakdown, build_time_modes, router_workload_sized, table1_with,
    table2_with,
};

#[test]
fn table1_smoke() {
    let rows = table1_with(&router_workload_sized(32));
    assert_eq!(rows.len(), 4, "four Clack configurations");
    for r in &rows {
        assert!(r.cycles > 0, "row {:?} measured nothing", (r.hand_optimized, r.flattened));
        assert!(r.text_size > 0);
    }
}

#[test]
fn table2_smoke() {
    let t = table2_with(&router_workload_sized(32));
    assert!(t.click_unoptimized > 0);
    assert!(t.click_optimized > 0);
    assert!(t.clack_base > 0);
}

#[test]
fn build_time_modes_smoke() {
    // build_time_modes itself asserts byte-identical images across modes,
    // a zero-recompile warm rebuild, and the one-edit-one-recompile law
    let rows = build_time_modes();
    assert_eq!(rows.len(), 5);
    let (serial, parallel, warm) = (&rows[0], &rows[1], &rows[2]);
    let (incremental, incr_edit) = (&rows[3], &rows[4]);
    assert_eq!(serial.mode, "serial");
    assert_eq!(serial.jobs, 1);
    assert_eq!(serial.cache_hits, 0);
    assert_eq!(parallel.mode, "parallel");
    assert!(parallel.jobs >= 2, "parallel row must exercise the threaded path");
    assert_eq!(parallel.units_compiled, serial.units_compiled);
    assert_eq!(warm.mode, "warm cache");
    assert_eq!(warm.units_compiled, 0, "warm rebuild recompiles nothing");
    assert_eq!(warm.cache_hits, serial.units_compiled);
    assert_eq!(incremental.mode, "incremental");
    assert_eq!(incremental.units_compiled, 0, "no-op rebuild recompiles nothing");
    assert_eq!(incremental.units_reused, warm.units_compiled + warm.units_reused);
    assert!(
        incremental.total_ms < warm.total_ms,
        "incremental no-op ({:.3} ms) must beat the warm rebuild ({:.3} ms)",
        incremental.total_ms,
        warm.total_ms
    );
    assert_eq!(incr_edit.mode, "incr edit");
    assert_eq!(incr_edit.units_compiled, 1, "one edit, one recompile");
    assert!(incr_edit.units_reused > 0, "every other unit is reused");
    for r in &rows {
        assert!(r.compile_ms >= 0.0 && r.total_ms >= r.compile_ms);
    }
}

#[test]
fn analyze_time_smoke() {
    // analyze_time itself asserts the one-edit-one-resummary precision law
    let row = analyze_time();
    assert!(row.units >= 90, "around a hundred units: {}", row.units);
    assert_eq!(row.reanalyzed, 1);
    assert!(
        row.incremental_ms < row.cold_ms,
        "re-analyzing one of {} units ({:.3} ms) must beat the cold pass ({:.3} ms)",
        row.units,
        row.incremental_ms,
        row.cold_ms
    );
}

#[test]
fn build_time_breakdown_smoke() {
    let phases = build_time_breakdown();
    let total: f64 = phases.iter().map(|(_, pct)| pct).sum();
    assert!((total - 100.0).abs() < 1e-6, "percentages sum to 100, got {total}");
    for name in ["elaborate", "compile", "link"] {
        assert!(phases.iter().any(|(n, _)| n == name), "phase {name} missing");
    }
}
