//! Concurrent composition-server benchmark (`table_serve`): N clients
//! connected to one `knitc serve` engine over a real local socket, all
//! building the ~98-unit deep-lock kernel, then doing edit→rebuild rounds
//! concurrently.
//!
//! Three things are measured, three things are gated:
//!
//! * **cross-client compile dedupe** — client 0 builds cold, the others
//!   build the identical kernel afterwards and must be served entirely
//!   from the shared [`knit::BuildCache`] (gate: dedupe rate > 0 with ≥2
//!   clients; in fact it is 100% of their unit compiles);
//! * **rebuild latency** — each client then edits *its own* filter source
//!   and rebuilds, concurrently with every other client; p50/p99 of the
//!   request round-trip and aggregate throughput are reported;
//! * **byte-identity** — the wire image of client 0's cold build must
//!   equal a direct in-process [`knit::BuildSession`] build of the same
//!   inputs, byte for byte (gate).

use std::sync::{Arc, Barrier};
use std::time::Instant;

use knit::proto::{self, Request, Response, SessionOptions};
use knit::server::{Conn, Engine, Server};

use crate::deep_lock_kernel_texts;

/// Knobs for [`table_serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Concurrent clients (each with its own session). At least 2.
    pub clients: usize,
    /// Edit→rebuild rounds per client after the cold builds.
    pub edits: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions { clients: 4, edits: 8 }
    }
}

impl ServeOptions {
    /// The small CI configuration.
    pub fn smoke() -> ServeOptions {
        ServeOptions { clients: 2, edits: 2 }
    }
}

/// Results of one [`table_serve`] run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The options the run used.
    pub options: ServeOptions,
    /// Units compiled by client 0's cold build (the kernel's size).
    pub units: usize,
    /// Total rebuilds across the edit phase.
    pub edit_builds: usize,
    /// Edit-phase rebuilds per second, all clients together.
    pub throughput_builds_per_sec: f64,
    /// Median edit→rebuild round-trip (µs).
    pub p50_rebuild_us: u64,
    /// 99th-percentile edit→rebuild round-trip (µs).
    pub p99_rebuild_us: u64,
    /// Compile-cache hits summed over clients 1.. cold builds.
    pub dedupe_hits: u64,
    /// Compile-cache misses summed over clients 1.. cold builds.
    pub dedupe_misses: u64,
    /// Hits / (hits + misses) over the followers' cold builds.
    pub dedupe_rate: f64,
    /// Client 0's wire image was byte-identical to a direct session build.
    pub byte_identical: bool,
}

impl ServeReport {
    /// The CI gates, as human-readable failure strings (empty = pass).
    pub fn failures(&self) -> Vec<String> {
        let mut f = Vec::new();
        if !self.byte_identical {
            f.push("wire image differs from a direct in-process build".to_string());
        }
        if self.options.clients >= 2 && self.dedupe_rate <= 0.0 {
            f.push(format!(
                "no cross-client compile dedupe ({} hits / {} misses)",
                self.dedupe_hits, self.dedupe_misses
            ));
        }
        if self.edit_builds > 0 && self.p99_rebuild_us == 0 {
            f.push("p99 rebuild latency measured as zero".to_string());
        }
        f
    }
}

fn call(conn: &mut Conn, req: &Request) -> Response {
    match conn.call(req).expect("server connection") {
        Response::Error { diagnostics } => {
            panic!("server error: {}", diagnostics[0].human())
        }
        resp => resp,
    }
}

/// Ship the whole deep-lock kernel into `session` over `conn`.
fn seed(conn: &mut Conn, session: &str) {
    let (units, tree, _) = deep_lock_kernel_texts();
    let mut options = SessionOptions::new("DeepLockKernel");
    options.jobs = Some(1); // measure the server, not the compile pool
    call(conn, &Request::Open { session: session.into(), options });
    for (file, text) in units {
        call(conn, &Request::LoadUnits { session: session.into(), file, text });
    }
    for (path, text) in tree.iter() {
        call(
            conn,
            &Request::UpdateSource {
                session: session.into(),
                path: path.to_string(),
                text: text.to_string(),
            },
        );
    }
}

fn build(
    conn: &mut Conn,
    session: &str,
    want_image: bool,
) -> (proto::BuildOutcome, Option<String>) {
    match call(conn, &Request::Build { session: session.into(), want_image }) {
        Response::Built { outcome, image } => (outcome, image),
        other => panic!("unexpected build response {other:?}"),
    }
}

/// Run the benchmark: spin up a server, fan out clients, measure.
pub fn table_serve(opts: &ServeOptions) -> ServeReport {
    assert!(opts.clients >= 2, "table_serve needs at least 2 clients");
    let server = Server::bind(Engine::new(), "auto").expect("bind local socket");
    let addr = server.addr().to_string();
    let handle = server.spawn();

    // Phase 1 — client 0 builds cold and pins byte-identity against a
    // direct in-process session over the very same inputs.
    let mut first = Conn::connect(&addr).expect("connect");
    seed(&mut first, "client0");
    let (cold, image) = build(&mut first, "client0", true);
    let wire_image = proto::decode_image(&image.expect("image requested")).expect("wire image");
    let byte_identical = {
        let (units, tree, opts) = deep_lock_kernel_texts();
        let mut direct_opts = opts;
        direct_opts.jobs = 1;
        let direct = knit::SessionHandle::new(direct_opts);
        for (file, text) in units {
            direct.load_units(&file, &text).expect("units parse");
        }
        for (path, text) in tree.iter() {
            direct.update_source(path, text);
        }
        direct.build().expect("direct build").image == wire_image
    };

    // Phase 2 — the other clients build the identical kernel concurrently;
    // every unit compile must dedupe against client 0's.
    let followers: Vec<_> = (1..opts.clients)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let session = format!("client{i}");
                let mut conn = Conn::connect(&addr).expect("connect");
                seed(&mut conn, &session);
                let (outcome, _) = build(&mut conn, &session, false);
                (outcome.cache_hits, outcome.cache_misses)
            })
        })
        .collect();
    let mut dedupe_hits = 0u64;
    let mut dedupe_misses = 0u64;
    for t in followers {
        let (h, m) = t.join().expect("follower client");
        dedupe_hits += h as u64;
        dedupe_misses += m as u64;
    }
    let dedupe_rate = if dedupe_hits + dedupe_misses > 0 {
        dedupe_hits as f64 / (dedupe_hits + dedupe_misses) as f64
    } else {
        0.0
    };

    // Phase 3 — concurrent edit→rebuild rounds, one distinct filter file
    // per client so invalidations stay disjoint. All clients start
    // together behind a barrier; throughput is wall-clock over the whole
    // phase, latency is per-request.
    // clients + this thread, so the wall clock starts with the fan-out
    let barrier = Arc::new(Barrier::new(opts.clients + 1));
    let editors: Vec<_> = (0..opts.clients)
        .map(|i| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let edits = opts.edits;
            std::thread::spawn(move || {
                let session = format!("client{i}");
                let mut conn = Conn::connect(&addr).expect("connect");
                let mut latencies = Vec::with_capacity(edits);
                barrier.wait();
                for round in 0..edits {
                    call(&mut conn, &Request::UpdateSource {
                        session: session.clone(),
                        path: format!("filter{i}.c"),
                        text: format!(
                            "int inner_acquire();\nint inner_release();\nstatic int uses;\n\
                             int lock_acquire() {{ uses += {round} + 2; return inner_acquire(); }}\n\
                             int lock_release() {{ return inner_release(); }}\n"
                        ),
                    });
                    let start = Instant::now();
                    let (outcome, _) = build(&mut conn, &session, false);
                    latencies.push(start.elapsed().as_micros() as u64);
                    assert_eq!(outcome.units_compiled, 1, "a one-file edit recompiles one unit");
                }
                latencies
            })
        })
        .collect();
    barrier.wait();
    let phase_start = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    for t in editors {
        latencies.extend(t.join().expect("editor client"));
    }
    let phase_secs = phase_start.elapsed().as_secs_f64();

    let mut conn = first;
    call(&mut conn, &Request::Shutdown);
    handle.join().expect("clean shutdown");

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    ServeReport {
        options: opts.clone(),
        units: cold.units_compiled + cold.units_reused,
        edit_builds: latencies.len(),
        throughput_builds_per_sec: if phase_secs > 0.0 {
            latencies.len() as f64 / phase_secs
        } else {
            0.0
        },
        p50_rebuild_us: pct(0.50),
        p99_rebuild_us: pct(0.99),
        dedupe_hits,
        dedupe_misses,
        dedupe_rate,
        byte_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_passes_every_gate() {
        let report = table_serve(&ServeOptions::smoke());
        assert_eq!(report.failures(), Vec::<String>::new());
        assert!(report.byte_identical);
        assert_eq!(report.dedupe_misses, 0, "followers must compile nothing");
        assert!(report.units >= 98, "the deep-lock kernel is ~98 units, got {}", report.units);
    }
}
