//! Multi-core scaling table: the RSS-sharded Clack router on 1/2/4
//! MESI-coherent cores.
//!
//! ```text
//! cargo run --release -p bench --bin table_mc [-- --packets N] [--seed S]
//!     [--smoke] [--json <path>]
//! ```
//!
//! Reports wall cycles per packet (slowest core — the throughput number),
//! a packets/s proxy at a nominal 1 GHz guest clock, scaling versus one
//! core, total summed cycles per packet (the work metric, which rises with
//! coherence overhead), and the coherence columns (bus stall cycles per
//! packet, coherence misses and invalidations per 1000 packets). Exits
//! nonzero if either multi-core correctness gate fails on any row: the
//! Fast-vs-Reference bit-identity replay or the sharded-vs-single-core
//! output-multiset comparison. `--smoke` is the small CI configuration.

use std::process::ExitCode;

use bench::mc::{table_mc, McOptions};

struct Args {
    opts: McOptions,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut opts = McOptions::default();
    let mut json = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = Some(args.next().expect("--json needs a path")),
            other if other.starts_with("--json=") => {
                json = Some(other["--json=".len()..].to_string());
            }
            "--packets" => {
                opts.packets = args
                    .next()
                    .expect("--packets needs a count")
                    .parse()
                    .expect("--packets takes a number");
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed takes a number");
            }
            "--smoke" => opts.packets = McOptions::smoke().packets,
            other => {
                panic!("unknown argument `{other}` (expected --packets N, --seed S, --smoke, --json <path>)")
            }
        }
    }
    Args { opts, json }
}

fn main() -> ExitCode {
    let args = parse_args();
    println!("table_mc: sharded Clack router scaling on MESI-coherent cores");
    println!("  ({} workload frames, seed {:#x})\n", args.opts.packets, args.opts.seed);

    let report = table_mc(&args.opts);

    println!(
        "  {:>5} | {:>9} {:>11} {:>7} | {:>9} {:>9} | {:>9} {:>9} | gates",
        "cores",
        "wall c/p",
        "pkts/s@1G",
        "scaling",
        "total c/p",
        "stall c/p",
        "cohmiss/k",
        "inval/k"
    );
    for r in &report.rows {
        println!(
            "  {:>5} | {:>9} {:>11.0} {:>6.2}x | {:>9} {:>9} | {:>9} {:>9} | {}",
            r.ncores,
            r.wall_cycles_per_packet,
            r.packets_per_sec,
            r.scaling,
            r.total_cycles_per_packet,
            r.coherence_stalls_per_packet,
            r.coherence_misses_per_kpkt,
            r.invalidations_per_kpkt,
            match (r.modes_identical, r.multiset_ok) {
                (true, true) => "modes identical, multiset ok",
                (false, true) => "MODES DIVERGED",
                (true, false) => "MULTISET MISMATCH",
                (false, false) => "MODES DIVERGED, MULTISET MISMATCH",
            },
        );
    }

    if let Some(path) = &args.json {
        let mut out = format!(
            "{{\n  \"version\": 1,\n  \"packets\": {},\n  \"seed\": {},\n  \"rows\": [\n",
            report.options.packets, report.options.seed
        );
        for (i, r) in report.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"ncores\": {}, \"packets\": {}, \"wall_cycles_per_packet\": {}, \"total_cycles_per_packet\": {}, \"packets_per_sec\": {:.0}, \"scaling\": {:.2}, \"coherence_stalls_per_packet\": {}, \"coherence_misses_per_kpkt\": {}, \"invalidations_per_kpkt\": {}, \"bus_rd\": {}, \"bus_rdx\": {}, \"bus_upgr\": {}, \"writebacks\": {}, \"modes_identical\": {}, \"multiset_ok\": {}}}{}\n",
                r.ncores,
                r.packets,
                r.wall_cycles_per_packet,
                r.total_cycles_per_packet,
                r.packets_per_sec,
                r.scaling,
                r.coherence_stalls_per_packet,
                r.coherence_misses_per_kpkt,
                r.invalidations_per_kpkt,
                r.bus.bus_rd,
                r.bus.bus_rdx,
                r.bus.bus_upgr,
                r.bus.writebacks,
                r.modes_identical,
                r.multiset_ok,
                if i + 1 < report.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("table_mc: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n  wrote {path}");
    }

    let failures = report.failures();
    if !failures.is_empty() {
        eprintln!("table_mc: MULTI-CORE GATE FAILURE: {failures:?}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
