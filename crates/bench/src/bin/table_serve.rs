//! Concurrent composition-server table: N `knitc serve` clients
//! edit→rebuild the ~98-unit deep-lock kernel over a real local socket.
//!
//! ```text
//! cargo run --release -p bench --bin table_serve [-- --clients N]
//!     [--edits N] [--smoke] [--json <path>]
//! ```
//!
//! Reports edit-phase rebuild throughput (all clients together), p50/p99
//! rebuild round-trip latency, and the cross-client compile-dedupe rate of
//! the followers' cold builds against the shared cache. Exits nonzero if
//! any gate fails: wire images must be byte-identical to a direct
//! in-process build, and with ≥2 clients the dedupe rate must be positive.
//! `--smoke` is the small CI configuration.

use std::process::ExitCode;

use bench::serve::{table_serve, ServeOptions};

struct Args {
    opts: ServeOptions,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut opts = ServeOptions::default();
    let mut json = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = Some(args.next().expect("--json needs a path")),
            other if other.starts_with("--json=") => {
                json = Some(other["--json=".len()..].to_string());
            }
            "--clients" => {
                opts.clients = args
                    .next()
                    .expect("--clients needs a count")
                    .parse()
                    .expect("--clients takes a number");
            }
            "--edits" => {
                opts.edits = args
                    .next()
                    .expect("--edits needs a count")
                    .parse()
                    .expect("--edits takes a number");
            }
            "--smoke" => opts = ServeOptions::smoke(),
            other => {
                panic!(
                    "unknown argument `{other}` (expected --clients N, --edits N, --smoke, --json <path>)"
                )
            }
        }
    }
    Args { opts, json }
}

fn main() -> ExitCode {
    let args = parse_args();
    println!("table_serve: concurrent clients against one composition server");
    println!(
        "  ({} clients x {} edit/rebuild rounds, deep-lock kernel)\n",
        args.opts.clients, args.opts.edits
    );

    let report = table_serve(&args.opts);

    println!(
        "  {:>7} | {:>5} | {:>11} | {:>9} {:>9} | {:>9} | gates",
        "clients", "units", "rebuilds/s", "p50 us", "p99 us", "dedupe"
    );
    println!(
        "  {:>7} | {:>5} | {:>11.1} | {:>9} {:>9} | {:>8.0}% | {}",
        report.options.clients,
        report.units,
        report.throughput_builds_per_sec,
        report.p50_rebuild_us,
        report.p99_rebuild_us,
        report.dedupe_rate * 100.0,
        if report.byte_identical { "byte-identical" } else { "IMAGE DIVERGED" },
    );

    if let Some(path) = &args.json {
        let out = format!(
            "{{\n  \"version\": 1,\n  \"clients\": {},\n  \"edits_per_client\": {},\n  \"units\": {},\n  \"edit_builds\": {},\n  \"throughput_builds_per_sec\": {:.2},\n  \"p50_rebuild_us\": {},\n  \"p99_rebuild_us\": {},\n  \"dedupe_hits\": {},\n  \"dedupe_misses\": {},\n  \"dedupe_rate\": {:.4},\n  \"byte_identical\": {}\n}}\n",
            report.options.clients,
            report.options.edits,
            report.units,
            report.edit_builds,
            report.throughput_builds_per_sec,
            report.p50_rebuild_us,
            report.p99_rebuild_us,
            report.dedupe_hits,
            report.dedupe_misses,
            report.dedupe_rate,
            report.byte_identical,
        );
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("table_serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n  wrote {path}");
    }

    let failures = report.failures();
    if !failures.is_empty() {
        eprintln!("table_serve: SERVER GATE FAILURE: {failures:?}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
