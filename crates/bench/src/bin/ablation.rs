//! Ablation studies over the reproduction's own design choices (DESIGN.md
//! §6): which mechanism buys which part of the flattening win, and how
//! sensitive the Table 1 shape is to the cost model.
//!
//! ```text
//! cargo run --release -p bench --bin ablation
//! ```

use clack::packets::{self, WorkloadOptions};
use clack::{build_clack_router, build_hand_router, ip_router};
use cobj::Image;
use machine::{CostModel, ICacheParams, Machine};

/// Measure cycles/packet on `image` under an explicit cost model.
fn measure_image(
    image: Image,
    init: &str,
    entry: &str,
    costs: CostModel,
    work: &[packets::WorkItem],
) -> u64 {
    let mut m = Machine::with_costs(image, costs).expect("machine");
    m.call(init, &[]).expect("init");
    let (warm, timed) = work.split_at(work.len() / 4);
    fn drive(m: &mut Machine, entry: &str, items: &[packets::WorkItem]) -> u64 {
        let mut n = 0u64;
        for (dev, p) in items {
            m.netdevs[*dev].inject(p.clone());
            loop {
                let k = m.call(entry, &[]).expect("step");
                if k == 0 {
                    break;
                }
                n += k as u64;
            }
        }
        n
    }
    drive(&mut m, entry, warm);
    let before = m.counters();
    let n = drive(&mut m, entry, timed);
    m.counters().delta_since(&before).cycles / n.max(1)
}

fn measure_with(costs: CostModel, flatten: bool, hand: bool, work: &[packets::WorkItem]) -> u64 {
    let report = if hand {
        build_hand_router(flatten).expect("build")
    } else {
        build_clack_router(&ip_router(), flatten).expect("build")
    };
    let entry = report
        .exports
        .iter()
        .find(|(k, _)| k.ends_with(".router_step"))
        .map(|(_, v)| v.clone())
        .expect("router_step export");
    measure_image(report.image, "__knit_init", &entry, costs, work)
}

fn main() {
    let work = packets::workload(&WorkloadOptions { count: 256, ..Default::default() });

    println!("== ablation 1: I-cache size vs the flattening win ==");
    println!("(the paper's flattening win is partly an I-cache locality win;");
    println!(" with an infinite cache only the call-overhead part remains)\n");
    println!("  icache    modular  flattened   delta");
    for (name, params) in [
        ("2 KiB", ICacheParams { size: 2 * 1024, line: 32, miss_stall: 14 }),
        ("4 KiB*", ICacheParams { size: 4 * 1024, line: 32, miss_stall: 14 }),
        ("8 KiB", ICacheParams { size: 8 * 1024, line: 32, miss_stall: 14 }),
        ("infinite", ICacheParams { size: 8 * 1024, line: 32, miss_stall: 0 }),
    ] {
        let costs = CostModel { icache: params, ..CostModel::default() };
        let base = measure_with(costs.clone(), false, false, &work);
        let flat = measure_with(costs, true, false, &work);
        println!(
            "  {name:8}  {base:7}  {flat:9}   {:+.1}%",
            (flat as f64 - base as f64) / base as f64 * 100.0
        );
    }

    println!("\n== ablation 2: call-overhead cost vs the flattening win ==");
    println!("  call cost  modular  flattened   delta");
    for (name, call, ret) in
        [("cheap (2/1)", 2u64, 1u64), ("default (14/6)", 14, 6), ("expensive (30/12)", 30, 12)]
    {
        let costs = CostModel { call_overhead: call, ret_overhead: ret, ..CostModel::default() };
        let base = measure_with(costs.clone(), false, false, &work);
        let flat = measure_with(costs, true, false, &work);
        println!(
            "  {name:16}  {base:7}  {flat:9}   {:+.1}%",
            (flat as f64 - base as f64) / base as f64 * 100.0
        );
    }

    println!("\n== ablation 3: indirect-call penalty vs the Click gap ==");
    println!("(how much of Table 2's base-Click slowdown is dispatch cost)\n");
    println!("  penalty | clack modular | click generic |  gap");
    for penalty in [0u64, 9, 18, 36] {
        let costs = CostModel { indirect_call_penalty: penalty, ..CostModel::default() };
        let img = clack::click::build_click_router(&ip_router(), None).expect("click");
        let click = measure_image(img, "click_init", "router_step", costs.clone(), &work);
        let clack_base = measure_with(costs, false, false, &work);
        println!(
            "    {penalty:3}   |    {clack_base:7}    |    {click:7}    | {:+.1}%",
            (click as f64 - clack_base as f64) / clack_base as f64 * 100.0
        );
    }

    println!("\n== ablation 4: hand-optimization with and without flattening on top ==");
    let base = measure_with(CostModel::default(), false, false, &work);
    for (name, hand, flat) in
        [("modular", false, false), ("hand", true, false), ("hand+flatten", true, true)]
    {
        let c = measure_with(CostModel::default(), flat, hand, &work);
        println!(
            "  {name:14} {c:6} cycles/pkt ({:+.1}% vs modular)",
            (c as f64 - base as f64) / base as f64 * 100.0
        );
    }

    println!("\n== ablation 5: profile-guided layout and advisor-applied flattening ==");
    println!("(each configuration is profiled and laid out with its own profile;");
    println!(" the third row applies the advisor's flatten suggestion)\n");
    let (pgo, advice) = bench::table1_pgo_with(&work);
    let pgo_base = pgo[0].cycles;
    for r in &pgo {
        println!(
            "  {:22} {:6} cycles/pkt, {:4} stall cycles/pkt ({:+.1}% vs base)",
            r.config,
            r.cycles,
            r.ifetch_stalls,
            (r.cycles as f64 - pgo_base as f64) / pgo_base as f64 * 100.0
        );
    }
    println!(
        "  advisor: {} hot cross-instance edge(s); top suggestion flattens {} instances",
        advice.hot_edges.len(),
        advice.suggestions.first().map(|s| s.instances.len()).unwrap_or(0)
    );

    println!("\n== ablation 6: profile-guided layout on the deep-lock kernel boot ==");
    let k = bench::deep_lock_pgo();
    let (bc, bs, bm) = k.base;
    let (pc, ps, pm) = k.pgo;
    println!("  text size: {} B (4 KiB I-cache)", k.text_size);
    println!("  input order:  {bc:6} cycles, {bs:5} fetch-stall cycles, {bm:4} icache misses");
    println!("  pgo layout:   {pc:6} cycles, {ps:5} fetch-stall cycles, {pm:4} icache misses");
    println!(
        "  ({:+.1}% cycles, {:+.1}% stalls; non-stall work identical)",
        (pc as f64 - bc as f64) / bc as f64 * 100.0,
        (ps as f64 - bs as f64) / bs as f64 * 100.0
    );
}
