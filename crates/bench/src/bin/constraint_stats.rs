//! Regenerate the §5.1 constraint-system statistics: "We added constraints
//! to kernels composed of roughly 100 units. Among those units, 35 required
//! the addition of constraints, of which 70% simply propagated their
//! context from imports to exports … The constraint system caught a few
//! small errors in existing OSKit kernels" and §6's "constraint-checking
//! more than doubles the time taken to run Knit".
//!
//! ```text
//! cargo run --release -p bench --bin constraint_stats
//! ```

fn main() {
    println!("§5.1 constraint experiment (mini-OSKit kernel with generated filter layers)\n");
    let s = bench::constraint_stats();
    println!("  paper: ~100 units, 35 annotated, 70% propagation-only,");
    println!("         caught context bugs written by OSKit experts,");
    println!("         checking more than doubles Knit's own time\n");
    println!("  ours:");
    println!("    units in kernel:          {}", s.units);
    println!("    annotated units:          {}", s.annotated);
    println!(
        "    propagation-only:         {} ({}%)",
        s.propagation_only,
        s.propagation_only * 100 / s.annotated.max(1)
    );
    println!("    constraint variables:     {}", s.vars);
    println!("    constraints checked:      {}", s.constraints);
    println!(
        "    seeded context bug caught: {}",
        if s.caught_seeded_bug {
            "yes (blocking mutex under interrupt context rejected)"
        } else {
            "NO"
        }
    );
    println!(
        "    Knit-only time:           {} us unchecked -> {} us checked ({:.1}x)",
        s.knit_time_unchecked_us,
        s.knit_time_checked_us,
        s.knit_time_checked_us as f64 / s.knit_time_unchecked_us.max(1) as f64
    );
}
