//! Regenerate Table 1 of the paper: Clack router performance under the
//! hand-optimization and flattening axes — extended with the
//! reproduction's profile-guided rows (layout and advisor-applied
//! flattening; see DESIGN.md §6).
//!
//! ```text
//! cargo run --release -p bench --bin table1 [-- --json <path>]
//!     [--packets N] [--seed S]
//! ```
//!
//! With `--json <path>` the rows are also written as a schema-stable JSON
//! object (committed as `BENCH_table1.json` at the repo root; CI uploads a
//! fresh copy as an artifact). `--packets` / `--seed` size and reseed the
//! measurement workload (defaults: 512 packets, the standard deterministic
//! stream — the committed baseline's configuration). Exits nonzero if the
//! profile-guided layout regresses instruction-fetch stalls against the
//! input-order baseline — the CI gate for the PGO pipeline.

use std::process::ExitCode;

struct Args {
    json: Option<String>,
    packets: usize,
    seed: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut parsed = Args { json: None, packets: 512, seed: None };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => parsed.json = Some(args.next().expect("--json needs a path")),
            other if other.starts_with("--json=") => {
                parsed.json = Some(other["--json=".len()..].to_string());
            }
            "--packets" => {
                parsed.packets = args
                    .next()
                    .expect("--packets needs a count")
                    .parse()
                    .expect("--packets takes a number");
            }
            "--seed" => {
                parsed.seed = Some(
                    args.next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed takes a number"),
                );
            }
            other => {
                panic!("unknown argument `{other}` (expected --json <path>, --packets N, --seed S)")
            }
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args();
    let work = bench::router_workload_seeded(args.packets, args.seed);
    println!("Table 1: Clack router performance (cycles from packet entering the");
    println!("router graph to leaving it; steady state, warm caches)\n");
    println!("  paper (200 MHz Pentium Pro, gcc 2.95):");
    println!("    hand  flat |  cycles  i-fetch stalls  text bytes");
    println!("     -     -   |   2411        781          109464");
    println!("     x     -   |   1897        637          108246");
    println!("     -     x   |   1574        455          106065");
    println!("     x     x   |   1457        361          106305\n");

    println!("  this reproduction (simulated machine, cmini -O2):");
    println!("    hand  flat |  cycles  i-fetch stalls  text bytes");
    let rows = bench::table1_with(&work);
    let base = rows[0].cycles as f64;
    for r in &rows {
        println!(
            "     {}     {}   |  {:6}       {:5}          {:6}   ({:+.1}% vs base)",
            if r.hand_optimized { 'x' } else { '-' },
            if r.flattened { 'x' } else { '-' },
            r.cycles,
            r.ifetch_stalls,
            r.text_size,
            (r.cycles as f64 - base) / base * 100.0,
        );
    }
    println!();
    println!("  paper deltas: hand -21%, flatten -35%, both -40%");
    let pct = |i: usize| (rows[i].cycles as f64 - base) / base * 100.0;
    println!("  ours:         hand {:+.0}%, flatten {:+.0}%, both {:+.0}%", pct(1), pct(2), pct(3));

    println!("\n  profile-guided rows (reproduction only; modular router):");
    println!("    config                 |  cycles  i-fetch stalls  text bytes");
    let (pgo, advice) = bench::table1_pgo_with(&work);
    for r in &pgo {
        println!(
            "    {:22} |  {:6}       {:5}          {:6}   ({:+.1}% vs base)",
            r.config,
            r.cycles,
            r.ifetch_stalls,
            r.text_size,
            (r.cycles as f64 - pgo[0].cycles as f64) / pgo[0].cycles as f64 * 100.0,
        );
    }
    println!(
        "  advisor: {} hot cross-instance edge(s), {} flatten suggestion(s)",
        advice.hot_edges.len(),
        advice.suggestions.len()
    );

    if let Some(path) = args.json {
        let mut out = String::from("{\n  \"version\": 1,\n  \"table1\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"hand_optimized\": {}, \"flattened\": {}, \"cycles\": {}, \"ifetch_stalls\": {}, \"text_size\": {}}}{}\n",
                r.hand_optimized,
                r.flattened,
                r.cycles,
                r.ifetch_stalls,
                r.text_size,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"pgo\": [\n");
        for (i, r) in pgo.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"config\": \"{}\", \"cycles\": {}, \"ifetch_stalls\": {}, \"text_size\": {}}}{}\n",
                r.config,
                r.cycles,
                r.ifetch_stalls,
                r.text_size,
                if i + 1 < pgo.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"pgo_advice\": {{\"hot_edges\": {}, \"suggestions\": {}}}\n}}\n",
            advice.hot_edges.len(),
            advice.suggestions.len()
        ));
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("table1: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n  wrote {path}");
    }

    // CI gate: the profile-guided layout must not fetch-stall more than the
    // input-order baseline it was derived from.
    if pgo[1].ifetch_stalls > pgo[0].ifetch_stalls {
        eprintln!(
            "table1: PGO REGRESSION: pgo layout stalls {} > input-order stalls {}",
            pgo[1].ifetch_stalls, pgo[0].ifetch_stalls
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
