//! Regenerate Table 1 of the paper: Clack router performance under the
//! hand-optimization and flattening axes.
//!
//! ```text
//! cargo run --release -p bench --bin table1
//! ```

fn main() {
    println!("Table 1: Clack router performance (cycles from packet entering the");
    println!("router graph to leaving it; steady state, warm caches)\n");
    println!("  paper (200 MHz Pentium Pro, gcc 2.95):");
    println!("    hand  flat |  cycles  i-fetch stalls  text bytes");
    println!("     -     -   |   2411        781          109464");
    println!("     x     -   |   1897        637          108246");
    println!("     -     x   |   1574        455          106065");
    println!("     x     x   |   1457        361          106305\n");

    println!("  this reproduction (simulated machine, cmini -O2):");
    println!("    hand  flat |  cycles  i-fetch stalls  text bytes");
    let rows = bench::table1();
    let base = rows[0].cycles as f64;
    for r in &rows {
        println!(
            "     {}     {}   |  {:6}       {:5}          {:6}   ({:+.1}% vs base)",
            if r.hand_optimized { 'x' } else { '-' },
            if r.flattened { 'x' } else { '-' },
            r.cycles,
            r.ifetch_stalls,
            r.text_size,
            (r.cycles as f64 - base) / base * 100.0,
        );
    }
    println!();
    println!("  paper deltas: hand -21%, flatten -35%, both -40%");
    let pct = |i: usize| (rows[i].cycles as f64 - base) / base * 100.0;
    println!("  ours:         hand {:+.0}%, flatten {:+.0}%, both {:+.0}%", pct(1), pct(2), pct(3));
}
