//! Regenerate the §6 overhead micro-benchmark: "To verify that Knit does
//! not impose an unacceptable overhead on programs, we timed Knit-based
//! OSKit programs that were designed to spend most of their time traversing
//! unit boundaries … Knit was from 2% slower to 3% faster, ±0.25%."
//!
//! ```text
//! cargo run --release -p bench --bin micro_overhead
//! ```

fn main() {
    println!("§6 micro-benchmark: Knit build vs traditional (hand-linked) build");
    println!("of call chains crossing 3-8 unit boundaries per iteration.\n");
    println!("  paper: Knit was from 2% slower to 3% faster (±0.25%)\n");
    println!("  critical path | knit cycles | traditional cycles |  diff");
    let mut min = f64::MAX;
    let mut max = f64::MIN;
    for row in bench::micro_overhead() {
        println!(
            "       {:2}       |  {:9}  |     {:9}      | {:+.2}%",
            row.chain_len, row.knit, row.traditional, row.pct
        );
        min = min.min(row.pct);
        max = max.max(row.pct);
    }
    println!("\n  ours: Knit was from {:+.1}% to {:+.1}%", max, min);
    println!("  (both builds produce identical results; differences come from");
    println!("  code layout, exactly as in the paper)");
}
