//! Regenerate Table 2 of the paper: Click router performance with and
//! without MIT's three optimizations, measured like Table 1 (the paper ran
//! Click "in the same OSKit-derived kernel and on the same hardware as the
//! Clack routers"; we run it on the same simulated machine).
//!
//! ```text
//! cargo run --release -p bench --bin table2
//! ```

fn main() {
    println!("Table 2: Click router performance\n");
    println!("  paper:   unoptimized 2486, optimized 1146 cycles (-54%)");
    println!("           (base Click approximately 3% slower than base Clack)\n");

    let t = bench::table2();
    let delta = (t.click_optimized as f64 - t.click_unoptimized as f64)
        / t.click_unoptimized as f64
        * 100.0;
    let vs_clack = (t.click_unoptimized as f64 - t.clack_base as f64) / t.clack_base as f64 * 100.0;
    println!(
        "  ours:    unoptimized {}, optimized {} cycles ({:+.0}%)",
        t.click_unoptimized, t.click_optimized, delta
    );
    println!("           (base Click {vs_clack:+.0}% vs base Clack {})\n", t.clack_base);

    println!("  ablation over the three optimizations (cycles/packet):");
    for (name, cycles) in bench::click_ablation() {
        println!("    {name:32} {cycles}");
    }
}
