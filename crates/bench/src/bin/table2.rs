//! Regenerate Table 2 of the paper: Click router performance with and
//! without MIT's three optimizations, measured like Table 1 (the paper ran
//! Click "in the same OSKit-derived kernel and on the same hardware as the
//! Clack routers"; we run it on the same simulated machine).
//!
//! ```text
//! cargo run --release -p bench --bin table2 [-- --json <path>]
//!     [--packets N] [--seed S]
//! ```
//!
//! `--packets` / `--seed` size and reseed the measurement workload
//! (defaults: 512 packets, the standard deterministic stream).

struct Args {
    json: Option<String>,
    packets: usize,
    seed: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut parsed = Args { json: None, packets: 512, seed: None };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => parsed.json = Some(args.next().expect("--json needs a path")),
            other if other.starts_with("--json=") => {
                parsed.json = Some(other["--json=".len()..].to_string());
            }
            "--packets" => {
                parsed.packets = args
                    .next()
                    .expect("--packets needs a count")
                    .parse()
                    .expect("--packets takes a number");
            }
            "--seed" => {
                parsed.seed = Some(
                    args.next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed takes a number"),
                );
            }
            other => {
                panic!("unknown argument `{other}` (expected --json <path>, --packets N, --seed S)")
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    println!("Table 2: Click router performance\n");
    println!("  paper:   unoptimized 2486, optimized 1146 cycles (-54%)");
    println!("           (base Click approximately 3% slower than base Clack)\n");

    let work = bench::router_workload_seeded(args.packets, args.seed);
    let t = bench::table2_with(&work);
    let delta = (t.click_optimized as f64 - t.click_unoptimized as f64)
        / t.click_unoptimized as f64
        * 100.0;
    let vs_clack = (t.click_unoptimized as f64 - t.clack_base as f64) / t.clack_base as f64 * 100.0;
    println!(
        "  ours:    unoptimized {}, optimized {} cycles ({:+.0}%)",
        t.click_unoptimized, t.click_optimized, delta
    );
    println!("           (base Click {vs_clack:+.0}% vs base Clack {})\n", t.clack_base);

    println!("  ablation over the three optimizations (cycles/packet):");
    let ablation = bench::click_ablation();
    for (name, cycles) in &ablation {
        println!("    {name:32} {cycles}");
    }

    if let Some(path) = args.json {
        let mut out = format!(
            "{{\n  \"version\": 1,\n  \"click_unoptimized\": {},\n  \"click_optimized\": {},\n  \"clack_base\": {},\n  \"ablation\": [\n",
            t.click_unoptimized, t.click_optimized, t.clack_base
        );
        for (i, (name, cycles)) in ablation.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cycles\": {}}}{}\n",
                name,
                cycles,
                if i + 1 < ablation.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("table2: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\n  wrote {path}");
    }
}
