//! Regenerate the §6 build-time observation: "Our prototype implementation
//! is acceptably fast — more than 95% of build time is spent in the C
//! compiler and linker." — and measure the driver's parallel, cache-aware
//! compile pipeline on top of it: serial vs parallel vs warm-cache builds
//! of the modular Clack router.
//!
//! ```text
//! cargo run --release -p bench --bin build_time [-- --json <path>]
//! ```

fn json_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => path = Some(args.next().expect("--json needs a path")),
            other if other.starts_with("--json=") => {
                path = Some(other["--json=".len()..].to_string());
            }
            other => panic!("unknown argument `{other}` (expected --json <path>)"),
        }
    }
    path
}

fn main() {
    println!("§6 build-time breakdown (building the modular Clack router)\n");
    println!("  paper: >95% of build time in the C compiler and linker;");
    println!("         the rest is Knit itself\n");
    let phases = bench::build_time_breakdown();
    println!("  ours:");
    let mut cc_ld = 0.0;
    let mut knit = 0.0;
    for (name, pct) in &phases {
        println!("    {name:12} {pct:6.2}%");
        if matches!(name.as_str(), "compile" | "link" | "flatten") {
            cc_ld += pct;
        } else {
            knit += pct;
        }
    }
    println!("\n  C compiler + linker: {cc_ld:.1}%   Knit itself: {knit:.1}%");

    println!("\nparallel + cached compile pipeline (same router, byte-identical images)\n");
    println!(
        "  {:<12} {:>4}  {:>12} {:>12}  {:>9} {:>7} {:>6}",
        "mode", "jobs", "compile ms", "total ms", "compiled", "reused", "hits"
    );
    let rows = bench::build_time_modes();
    for r in &rows {
        println!(
            "  {:<12} {:>4}  {:>12.3} {:>12.3}  {:>9} {:>7} {:>6}",
            r.mode,
            r.jobs,
            r.compile_ms,
            r.total_ms,
            r.units_compiled,
            r.units_reused,
            r.cache_hits
        );
    }
    let serial = &rows[0];
    let parallel = &rows[1];
    let warm = &rows[2];
    let incremental = &rows[3];
    let incr_edit = &rows[4];
    if parallel.jobs > 1 && knit::default_jobs() > 1 {
        println!(
            "\n  parallel compile speedup over serial: {:.2}x ({} cores available)",
            serial.compile_ms / parallel.compile_ms,
            knit::default_jobs()
        );
    } else {
        println!(
            "\n  (only one core available — parallel row exercises the threaded\n   \
             path with {} workers but cannot beat serial wall-clock here)",
            parallel.jobs
        );
    }
    println!(
        "  warm-cache rebuild: {} recompiles, compile phase {:.3} ms ({:.1}% of cold)",
        warm.units_compiled,
        warm.compile_ms,
        warm.compile_ms / serial.compile_ms * 100.0
    );
    println!(
        "  incremental no-op rebuild: {} recompiles, {:.3} ms total ({:.3} ms warm)",
        incremental.units_compiled, incremental.total_ms, warm.total_ms
    );
    println!(
        "  incremental one-file edit: {} recompile + {} reused, {:.3} ms total",
        incr_edit.units_compiled, incr_edit.units_reused, incr_edit.total_ms
    );

    println!("\ncross-unit analyzer (`knitc lint`) on the ~100-unit deep-lock kernel\n");
    let a = bench::analyze_time();
    println!("  units analyzed: {}   diagnostics: {}", a.units, a.diagnostics);
    println!(
        "  cold analysis: {:.3} ms   one-edit re-analysis: {:.3} ms ({} unit resummarized)",
        a.cold_ms, a.incremental_ms, a.reanalyzed
    );

    println!("\nrace detector (K1006-K1009) on the 4-core sharded router\n");
    let ra = bench::race_analyze_time();
    println!("  units analyzed: {}   diagnostics: {}", ra.units, ra.diagnostics);
    println!(
        "  cold analysis: {:.3} ms   one-edit re-analysis: {:.3} ms ({} unit resummarized)",
        ra.cold_ms, ra.incremental_ms, ra.reanalyzed
    );

    if let Some(path) = json_path() {
        let mut out = String::from("{\n  \"version\": 1,\n  \"phases\": [\n");
        for (i, (name, pct)) in phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{name}\", \"pct\": {pct:.2}}}{}\n",
                if i + 1 < phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"modes\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"jobs\": {}, \"compile_ms\": {:.3}, \"total_ms\": {:.3}, \"units_compiled\": {}, \"units_reused\": {}, \"cache_hits\": {}}}{}\n",
                r.mode,
                r.jobs,
                r.compile_ms,
                r.total_ms,
                r.units_compiled,
                r.units_reused,
                r.cache_hits,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"analyze\": {{\"units\": {}, \"diagnostics\": {}, \"cold_ms\": {:.3}, \"incremental_ms\": {:.3}, \"reanalyzed\": {}}},\n",
            a.units, a.diagnostics, a.cold_ms, a.incremental_ms, a.reanalyzed
        ));
        out.push_str(&format!(
            "  \"race_analyze\": {{\"units\": {}, \"diagnostics\": {}, \"cold_ms\": {:.3}, \"incremental_ms\": {:.3}, \"reanalyzed\": {}}}\n}}\n",
            ra.units, ra.diagnostics, ra.cold_ms, ra.incremental_ms, ra.reanalyzed
        ));
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("build_time: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\n  wrote {path}");
    }
}
