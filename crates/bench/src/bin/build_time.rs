//! Regenerate the §6 build-time observation: "Our prototype implementation
//! is acceptably fast — more than 95% of build time is spent in the C
//! compiler and linker."
//!
//! ```text
//! cargo run --release -p bench --bin build_time
//! ```

fn main() {
    println!("§6 build-time breakdown (building the modular Clack router)\n");
    println!("  paper: >95% of build time in the C compiler and linker;");
    println!("         the rest is Knit itself\n");
    let phases = bench::build_time_breakdown();
    println!("  ours:");
    let mut cc_ld = 0.0;
    let mut knit = 0.0;
    for (name, pct) in &phases {
        println!("    {name:12} {pct:6.2}%");
        if matches!(name.as_str(), "compile" | "link" | "flatten") {
            cc_ld += pct;
        } else {
            knit += pct;
        }
    }
    println!("\n  C compiler + linker: {cc_ld:.1}%   Knit itself: {knit:.1}%");
}
