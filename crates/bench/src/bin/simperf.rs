//! Measure host-side simulator throughput: the fast interpreter loop
//! against the retained reference loop, on the Clack router, the
//! deep-lock kernel boot, and the demo web server.
//!
//! ```text
//! cargo run --release -p bench --bin simperf [-- --packets N] [--seed S]
//!     [--smoke] [--json <path>]
//! ```
//!
//! Reports guest MIPS (millions of simulated instructions per host
//! second), packets/sec, and the fast-over-reference speedup. Exits
//! nonzero if any workload's performance counters or guest-visible output
//! diverge between the two modes — the CI gate that pins the fast loop to
//! the reference semantics. `--smoke` is the small CI configuration;
//! `--packets 1000000` reproduces the EXPERIMENTS.md million-packet run.

use std::process::ExitCode;

use bench::simperf::{self, SimperfOptions};

struct Args {
    opts: SimperfOptions,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut opts = SimperfOptions::default();
    let mut json = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = Some(args.next().expect("--json needs a path")),
            other if other.starts_with("--json=") => {
                json = Some(other["--json=".len()..].to_string());
            }
            "--packets" => {
                opts.packets = args
                    .next()
                    .expect("--packets needs a count")
                    .parse()
                    .expect("--packets takes a number");
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed takes a number");
            }
            "--smoke" => opts.packets = SimperfOptions::smoke().packets,
            other => {
                panic!("unknown argument `{other}` (expected --packets N, --seed S, --smoke, --json <path>)")
            }
        }
    }
    Args { opts, json }
}

fn main() -> ExitCode {
    let args = parse_args();
    println!("simperf: interpreter throughput, fast vs reference loop");
    println!("  ({} router packets, workload seed {:#x})\n", args.opts.packets, args.opts.seed);

    let report = simperf::run(args.opts);

    println!(
        "  {:16} | {:>12} {:>10} {:>10} | {:>8} {:>12} | gate",
        "workload", "guest instrs", "fast MIPS", "ref MIPS", "speedup", "packets/s"
    );
    for w in &report.workloads {
        println!(
            "  {:16} | {:>12} {:>10.1} {:>10.1} | {:>7.2}x {:>12} | {}",
            w.name,
            w.fast.counters.instructions,
            w.fast.mips(),
            w.reference.mips(),
            w.speedup(),
            if w.packets > 0 { format!("{:.0}", w.packets_per_sec()) } else { "-".into() },
            if w.identical { "counters identical" } else { "DIVERGED" },
        );
    }
    if report.workloads.iter().all(|w| w.name != "demo-webserver") {
        println!("  (demo/ not present; demo-webserver workload skipped)");
    }

    if let Some(path) = &args.json {
        let mut out = format!(
            "{{\n  \"version\": 1,\n  \"packets\": {},\n  \"seed\": {},\n  \"workloads\": [\n",
            report.options.packets, report.options.seed
        );
        for (i, w) in report.workloads.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"packets\": {}, \"guest_instructions\": {}, \"fast_wall_s\": {:.6}, \"reference_wall_s\": {:.6}, \"fast_mips\": {:.1}, \"reference_mips\": {:.1}, \"speedup\": {:.2}, \"packets_per_sec\": {:.0}, \"counters_identical\": {}}}{}\n",
                w.name,
                w.packets,
                w.fast.counters.instructions,
                w.fast.wall_s,
                w.reference.wall_s,
                w.fast.mips(),
                w.reference.mips(),
                w.speedup(),
                w.packets_per_sec(),
                w.identical,
                if i + 1 < report.workloads.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("simperf: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\n  wrote {path}");
    }

    let diverged = report.divergences();
    if !diverged.is_empty() {
        eprintln!("simperf: FAST-PATH DIVERGENCE on {diverged:?}: counters or output differ from the reference interpreter");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
