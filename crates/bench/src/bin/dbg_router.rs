use clack::packets::{self, WorkloadOptions};
use clack::RouterHarness;

fn main() {
    let work = packets::workload(&WorkloadOptions { count: 128, ..Default::default() });
    for (name, report) in [
        ("modular", clack::build_clack_router(&clack::ip_router(), false).unwrap()),
        ("modular+flat", clack::build_clack_router(&clack::ip_router(), true).unwrap()),
        ("hand", clack::build_hand_router(false).unwrap()),
        ("hand+flat", clack::build_hand_router(true).unwrap()),
    ] {
        let mut h = RouterHarness::new(&report).unwrap();
        let m = h.measure(&work).unwrap();
        let c = m.raw;
        println!(
            "{name:14} cyc/pkt={:5} stall/pkt={:4} text={:6} calls={:6} ind={:4} instr={}",
            m.cycles_per_packet,
            m.ifetch_stalls_per_packet,
            m.text_size,
            c.calls,
            c.indirect_calls,
            c.instructions
        );
    }
    {
        let report = clack::build_clack_router(&clack::ip_router(), true).unwrap();
        let img = &report.image;
        println!("flat image: {} funcs", img.funcs.len());
        let entry =
            report.exports.iter().find(|(k, _)| k.ends_with(".router_step")).unwrap().1.clone();
        for f in &img.funcs {
            if f.name == entry {
                let calls =
                    f.body.iter().filter(|i| matches!(i, cobj::RInstr::Call { .. })).count();
                println!(
                    "router_step fn: {} instrs, {} direct calls, {} bytes",
                    f.body.len(),
                    calls,
                    f.size
                );
            }
        }
        for f in img.funcs.iter().take(40) {
            println!("  fn {} ({} instrs)", f.name, f.body.len());
        }
    }
    for (name, opts) in
        [("click-generic", None), ("click-opt", Some(clack::click::ClickOpts::all()))]
    {
        let img = clack::click::build_click_router(&clack::ip_router(), opts).unwrap();
        let mut h = RouterHarness::from_image(img, Some("click_init"), "router_step").unwrap();
        let m = h.measure(&work).unwrap();
        let c = m.raw;
        println!(
            "{name:14} cyc/pkt={:5} stall/pkt={:4} text={:6} calls={:6} ind={:4} instr={}",
            m.cycles_per_packet,
            m.ifetch_stalls_per_packet,
            m.text_size,
            c.calls,
            c.indirect_calls,
            c.instructions
        );
    }
}
