//! The `table_mc` experiment: sharded-router throughput scaling from one
//! to N coherent cores, with the two multi-core correctness gates.
//!
//! Each row builds the RSS-sharded Clack router for a core count, measures
//! steady-state per-packet cost on the [`machine::MultiMachine`] (wall
//! cycles = slowest core, total cycles = summed work, coherence stalls
//! from the MESI bus), and then runs the CI gates:
//!
//! 1. **mode identity** — the same workload replayed under
//!    `ExecMode::Fast` and `ExecMode::Reference` must produce bit-identical
//!    output frames, per-core counters, and bus transaction counts (the
//!    multi-core extension of the `simperf` divergence gate);
//! 2. **multiset identity** — the sharded router must emit exactly the
//!    single-core router's output multiset per port (sharding may reorder
//!    packets, never alter or drop them).
//!
//! `cargo run --release -p bench --bin table_mc` prints the table and
//! exits nonzero if either gate fails on any row.

use clack::packets::{self, WorkItem, WorkloadOptions};
use clack::{build_clack_router, build_mc_router, ip_router, MultiRouterHarness, RouterHarness};
use machine::{BusStats, ExecMode, PerfCounters};

/// Core counts measured by the table.
pub const CORE_COUNTS: &[usize] = &[1, 2, 4];

/// Knobs for the multi-core scaling experiment.
#[derive(Debug, Clone)]
pub struct McOptions {
    /// Frames in the workload (a quarter, clamped to [8, 64], warms up).
    pub packets: usize,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions { packets: 512, seed: WorkloadOptions::default().seed }
    }
}

impl McOptions {
    /// The small CI configuration.
    pub fn smoke() -> Self {
        McOptions { packets: 128, ..Default::default() }
    }
}

/// The mixed workload: mostly forwardable frames plus every anomaly class,
/// so the discard paths (and their shared Discard counters) see traffic.
pub fn mc_workload(opts: &McOptions) -> Vec<WorkItem> {
    packets::workload(&WorkloadOptions {
        count: opts.packets,
        seed: opts.seed,
        pct_non_ip: 10,
        pct_ttl_expired: 5,
        pct_no_route: 5,
        ..Default::default()
    })
}

/// One row of the scaling table.
#[derive(Debug, Clone)]
pub struct McRow {
    /// Simulated cores sharing the bus.
    pub ncores: usize,
    /// Packets in the timed batch.
    pub packets: u64,
    /// Slowest core's cycles per packet — the number whose inverse is
    /// throughput (cores run concurrently in the machine model).
    pub wall_cycles_per_packet: u64,
    /// Cycles per packet summed over every core — the work metric.
    pub total_cycles_per_packet: u64,
    /// Throughput proxy: packets per second at a nominal 1 GHz guest
    /// clock (`1e9 / wall_cycles_per_packet`).
    pub packets_per_sec: f64,
    /// Throughput scaling versus the 1-core row (wall-cycle ratio).
    pub scaling: f64,
    /// Bus stall cycles (coherence protocol + write-backs) per packet.
    pub coherence_stalls_per_packet: u64,
    /// Coherence misses per 1000 packets (lines fetched from another
    /// core's cache or after an invalidation).
    pub coherence_misses_per_kpkt: u64,
    /// Invalidations per 1000 packets (lines snooped away from a core).
    pub invalidations_per_kpkt: u64,
    /// Bus transaction counts over the timed batch.
    pub bus: BusStats,
    /// Gate 1: Fast and Reference runs were bit-identical.
    pub modes_identical: bool,
    /// Gate 2: output multiset matched the single-core router.
    pub multiset_ok: bool,
}

/// Everything a sharded-router run can observe, for the mode-identity
/// gate. Derived `PartialEq` over the lot is the bit-identity check.
#[derive(Debug, PartialEq)]
struct ShardedRun {
    outputs: Vec<Vec<Vec<u8>>>,
    counters: Vec<PerfCounters>,
    bus: BusStats,
}

/// Replay `work` through a fresh harness in `mode` and snapshot the
/// observables.
fn run_sharded(
    report: &knit::BuildReport,
    ncores: usize,
    mode: ExecMode,
    work: &[WorkItem],
) -> ShardedRun {
    let mut h = MultiRouterHarness::new(report, ncores).expect("sharded harness");
    h.set_exec_mode(mode);
    for (_, pkt) in work {
        h.inject(pkt.clone());
    }
    h.run_until_idle();
    let outputs = (0..2).map(|p| h.collect(p)).collect();
    let mm = h.machine();
    mm.check_invariants().expect("MESI invariants hold");
    ShardedRun {
        outputs,
        counters: (0..ncores).map(|c| mm.counters(c)).collect(),
        bus: mm.bus_stats(),
    }
}

/// The single-core router's per-port output multiset (sorted) — the
/// routing oracle the sharded rows are compared against.
fn single_core_multisets(work: &[WorkItem]) -> Vec<Vec<Vec<u8>>> {
    let report = build_clack_router(&ip_router(), false).expect("single-core router builds");
    let mut h = RouterHarness::new(&report).expect("single-core harness");
    for (dev, pkt) in work {
        h.inject(*dev, pkt.clone());
    }
    h.run_until_idle();
    (0..2)
        .map(|p| {
            let mut frames = h.collect(p);
            frames.sort();
            frames
        })
        .collect()
}

/// The full multi-core report.
#[derive(Debug, Clone)]
pub struct McReport {
    pub options: McOptions,
    pub rows: Vec<McRow>,
}

impl McReport {
    /// Row labels whose correctness gates failed (empty = CI passes).
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.rows {
            if !r.modes_identical {
                out.push(format!("{}-core fast/reference divergence", r.ncores));
            }
            if !r.multiset_ok {
                out.push(format!("{}-core output multiset mismatch", r.ncores));
            }
        }
        out
    }
}

/// Run the scaling table over [`CORE_COUNTS`].
pub fn table_mc(opts: &McOptions) -> McReport {
    let work = mc_workload(opts);
    let oracle = single_core_multisets(&work);
    let mut rows: Vec<McRow> = Vec::new();
    for &ncores in CORE_COUNTS {
        let report = build_mc_router(ncores, false).expect("sharded router builds");

        // The measurement run (Fast, the production loop). `measure`
        // injects the whole workload (warmup included), so draining the
        // tx queues afterwards yields the full run's outputs for gate 2.
        let mut h = MultiRouterHarness::new(&report, ncores).expect("sharded harness");
        let m = h.measure(&work).expect("sharded router measures");
        let multiset_ok = (0..2).all(|p| {
            let mut got = h.collect(p);
            got.sort();
            got == oracle[p]
        });

        // Gate 1: fresh harnesses, both interpreter loops, bit-identity.
        let fast = run_sharded(&report, ncores, ExecMode::Fast, &work);
        let reference = run_sharded(&report, ncores, ExecMode::Reference, &work);
        let modes_identical = fast == reference;

        let kpkt = |n: u64| n * 1000 / m.packets.max(1);
        let wall_base = rows
            .first()
            .map(|r: &McRow| r.wall_cycles_per_packet)
            .unwrap_or(m.wall_cycles_per_packet);
        rows.push(McRow {
            ncores,
            packets: m.packets,
            wall_cycles_per_packet: m.wall_cycles_per_packet,
            total_cycles_per_packet: m.total_cycles_per_packet,
            packets_per_sec: 1e9 / m.wall_cycles_per_packet.max(1) as f64,
            scaling: wall_base as f64 / m.wall_cycles_per_packet.max(1) as f64,
            coherence_stalls_per_packet: m.coherence_stalls_per_packet,
            coherence_misses_per_kpkt: kpkt(m.raw_total.coherence_misses),
            invalidations_per_kpkt: kpkt(m.raw_total.invalidations),
            bus: m.bus,
            modes_identical,
            multiset_ok,
        });
    }
    McReport { options: opts.clone(), rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI gates and the scaling shape, on the smoke workload: both
    /// gates pass on every row, multi-core rows pay real coherence
    /// stalls, and sharding across 4 cores beats one core on wall cycles.
    #[test]
    fn table_mc_smoke_passes_both_gates_and_scales() {
        let r = table_mc(&McOptions { packets: 96, ..McOptions::default() });
        assert_eq!(r.failures(), Vec::<String>::new());
        assert_eq!(r.rows.len(), CORE_COUNTS.len());
        let one = &r.rows[0];
        let four = r.rows.last().unwrap();
        assert_eq!(one.coherence_misses_per_kpkt, 0, "one core never snoops a dirty copy");
        assert_eq!(one.invalidations_per_kpkt, 0, "one core never gets invalidated");
        assert!(four.coherence_stalls_per_packet > 0, "shared queue must ping-pong");
        assert!(four.coherence_misses_per_kpkt > 0 && four.invalidations_per_kpkt > 0);
        // Sharding must actually scale: the slowest of 4 cores finishes
        // well before the single core (perfect would be 4.00x).
        assert!(
            four.wall_cycles_per_packet < one.wall_cycles_per_packet,
            "4-core wall {} must beat 1-core wall {}",
            four.wall_cycles_per_packet,
            one.wall_cycles_per_packet
        );
    }
}
