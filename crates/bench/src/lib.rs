//! # bench — experiment harnesses for every table and in-text measurement
//!
//! One function per experiment, shared by the printable binaries
//! (`cargo run -p bench --bin table1` etc.) and the Criterion benches.
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.

pub mod mc;
pub mod serve;
pub mod simperf;

use clack::click::{build_click_router, ClickOpts};
use clack::packets::{self, WorkloadOptions};
use clack::{build_clack_router, build_hand_router, ip_router, router_build_inputs, RouterHarness};
// `build_with_cache` is deprecated in favour of sessions; this harness
// keeps measuring it deliberately — the serial/parallel/warm rows time the
// one-shot path the paper's build-time table describes.
#[allow(deprecated)]
use knit::build_with_cache;
use knit::{build, BuildCache, BuildOptions, Program, SourceTree};
use machine::Machine;

/// A Table 1 / Table 2 packet workload of `count` forwardable IP frames,
/// both directions, deterministic. The binaries use
/// [`router_workload`]'s 512 packets; smoke tests pass something tiny.
pub fn router_workload_sized(count: usize) -> Vec<packets::WorkItem> {
    packets::workload(&WorkloadOptions { count, ..Default::default() })
}

/// The standard Table 1 / Table 2 packet workload: forwardable IP frames,
/// both directions, deterministic.
pub fn router_workload() -> Vec<packets::WorkItem> {
    router_workload_sized(512)
}

/// A router workload with explicit size and (optionally) a non-default
/// RNG seed — the `--packets` / `--seed` knobs of the table binaries and
/// `simperf`. `seed: None` keeps the standard deterministic stream, so
/// the default invocations stay byte-for-byte reproducible.
pub fn router_workload_seeded(count: usize, seed: Option<u64>) -> Vec<packets::WorkItem> {
    let mut opts = WorkloadOptions { count, ..Default::default() };
    if let Some(s) = seed {
        opts.seed = s;
    }
    packets::workload(&opts)
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Hand-optimized (2 components) instead of modular (24 components)?
    pub hand_optimized: bool,
    /// Built through a `flatten` boundary?
    pub flattened: bool,
    /// Cycles per packet, steady state.
    pub cycles: u64,
    /// Instruction-fetch stall cycles per packet.
    pub ifetch_stalls: u64,
    /// Text size in bytes.
    pub text_size: u64,
}

/// Run the four Clack configurations of Table 1.
pub fn table1() -> Vec<Table1Row> {
    table1_with(&router_workload())
}

/// [`table1`] over a caller-supplied workload (smoke tests use a tiny one).
pub fn table1_with(work: &[packets::WorkItem]) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for (hand, flat) in [(false, false), (true, false), (false, true), (true, true)] {
        let report = if hand {
            build_hand_router(flat).expect("hand router builds")
        } else {
            build_clack_router(&ip_router(), flat).expect("clack router builds")
        };
        let mut h = RouterHarness::new(&report).expect("harness");
        let m = h.measure(work).expect("measure");
        rows.push(Table1Row {
            hand_optimized: hand,
            flattened: flat,
            cycles: m.cycles_per_packet,
            ifetch_stalls: m.ifetch_stalls_per_packet,
            text_size: m.text_size,
        });
    }
    rows
}

/// One PGO row of the Table 1 extension: the same modular Clack router,
/// measured under profile-guided build decisions. (The paper had no PGO;
/// this extends its Table 1 with the reproduction's own pipeline.)
#[derive(Debug, Clone)]
pub struct PgoRow {
    /// Configuration label (`"base"`, `"pgo layout"`, …).
    pub config: &'static str,
    /// Cycles per packet, steady state.
    pub cycles: u64,
    /// Instruction-fetch stall cycles per packet.
    pub ifetch_stalls: u64,
    /// Text size in bytes.
    pub text_size: u64,
}

/// Run `work` on a built router with call-edge profiling enabled and
/// return the measurement plus the collected profile. Recording does not
/// perturb the performance counters (pinned by a machine test), so the
/// instrumented run doubles as the measurement run.
pub fn profile_router(
    report: &knit::BuildReport,
    work: &[packets::WorkItem],
) -> (clack::RouterMeasurement, machine::Profile) {
    let mut h = RouterHarness::new(report).expect("harness");
    h.machine().set_profiling(true);
    let m = h.measure(work).expect("measure");
    (m, h.machine().profile())
}

/// The PGO rows of Table 1 (plus the advisor's report on the base run):
///
/// 1. `base` — modular router, input-order layout (= Table 1 row 1);
/// 2. `pgo layout` — same configuration rebuilt with the base run's
///    profile feeding the linker's Pettis–Hansen layout;
/// 3. `pgo flatten + layout` — the advisor's flatten suggestion applied
///    (the hot cross-instance edges cover the router core, so the applied
///    form is the flattened configuration), re-profiled, and re-laid-out.
///
/// Each configuration is profiled and laid out with *its own* profile:
/// flattening changes the link-level symbol names, so a base-router
/// profile does not transfer to the flattened image.
pub fn table1_pgo() -> (Vec<PgoRow>, knit::PgoReport) {
    table1_pgo_with(&router_workload())
}

/// [`table1_pgo`] over a caller-supplied workload.
pub fn table1_pgo_with(work: &[packets::WorkItem]) -> (Vec<PgoRow>, knit::PgoReport) {
    let row = |config: &'static str, m: &clack::RouterMeasurement| PgoRow {
        config,
        cycles: m.cycles_per_packet,
        ifetch_stalls: m.ifetch_stalls_per_packet,
        text_size: m.text_size,
    };
    let measure = |report: &knit::BuildReport| {
        RouterHarness::new(report).expect("harness").measure(work).expect("measure")
    };

    let (p, t, opts) = router_build_inputs(&ip_router(), false).expect("router inputs");
    let base = build(&p, &t, &opts).expect("base router builds");
    let (mb, profile) = profile_router(&base, work);

    let mut pgo_opts = opts.clone();
    pgo_opts.profile = Some(std::sync::Arc::new(profile.layout_profile()));
    let laid = build(&p, &t, &pgo_opts).expect("pgo-layout router builds");
    let ml = measure(&laid);

    let advice = knit::pgo::suggest(&base, &profile);

    let (fp, ft, fopts) = router_build_inputs(&ip_router(), true).expect("flat router inputs");
    let flat = build(&fp, &ft, &fopts).expect("flat router builds");
    let (_, fprofile) = profile_router(&flat, work);
    let mut flat_pgo_opts = fopts.clone();
    flat_pgo_opts.profile = Some(std::sync::Arc::new(fprofile.layout_profile()));
    let flat_laid = build(&fp, &ft, &flat_pgo_opts).expect("flat pgo-layout router builds");
    let mf = measure(&flat_laid);

    (
        vec![
            row("base (input order)", &mb),
            row("pgo layout", &ml),
            row("pgo flatten + layout", &mf),
        ],
        advice,
    )
}

/// One boot of the deep-lock kernel, before vs after profile-guided
/// layout (see [`deep_lock_pgo`]).
pub struct DeepLockPgo {
    /// Linked text size in bytes (layout-invariant).
    pub text_size: u64,
    /// (cycles, ifetch stall cycles, icache misses) at input order.
    pub base: (u64, u64, u64),
    /// The same three counters after a profile-guided relink.
    pub pgo: (u64, u64, u64),
}

/// Profile-guided layout on the ~100-unit deep-lock kernel of
/// [`deep_lock_kernel_inputs`]: boot it once with edge profiling on,
/// relink with the collected profile, and boot the relaid image. The
/// kernel's text overflows the 4 KiB I-cache, so clustering the hot
/// boot path cuts fetch stalls without touching non-stall cycles.
pub fn deep_lock_pgo() -> DeepLockPgo {
    let boot = |image: cobj::Image, profiling: bool| {
        let mut m = Machine::new(image).expect("kernel machine");
        m.set_profiling(profiling);
        let r = m.run_entry().expect("kernel boots");
        assert_eq!(r, 3, "deep-lock kernel exit code");
        let c = m.counters();
        ((c.cycles, c.ifetch_stall_cycles, c.icache_misses), m.profile())
    };

    let (p, t, opts) = deep_lock_kernel_inputs();
    let report = build(&p, &t, &opts).expect("deep-lock kernel builds");
    let (base, profile) = boot(report.image.clone(), true);

    let mut pgo_opts = opts.clone();
    pgo_opts.profile = Some(std::sync::Arc::new(profile.layout_profile()));
    let laid = build(&p, &t, &pgo_opts).expect("pgo deep-lock kernel builds");
    let (pgo, _) = boot(laid.image.clone(), false);

    DeepLockPgo { text_size: report.image.text_size, base, pgo }
}

/// Table 2: Click unoptimized and optimized (plus the Clack base for the
/// paper's "approximately the same (3% slower)" comparison).
pub struct Table2 {
    /// Cycles/packet, Click with no optimizations.
    pub click_unoptimized: u64,
    /// Cycles/packet, Click with fast classifier + specializer + xform.
    pub click_optimized: u64,
    /// Cycles/packet for base Clack (modular, unflattened).
    pub clack_base: u64,
}

/// Run Table 2.
pub fn table2() -> Table2 {
    table2_with(&router_workload())
}

/// [`table2`] over a caller-supplied workload (smoke tests use a tiny one).
pub fn table2_with(work: &[packets::WorkItem]) -> Table2 {
    let measure_click = |opts: Option<ClickOpts>| {
        let img = build_click_router(&ip_router(), opts).expect("click builds");
        let mut h =
            RouterHarness::from_image(img, Some("click_init"), "router_step").expect("harness");
        h.measure(work).expect("measure").cycles_per_packet
    };
    let clack = build_clack_router(&ip_router(), false).expect("clack builds");
    let clack_base = RouterHarness::new(&clack)
        .expect("harness")
        .measure(work)
        .expect("measure")
        .cycles_per_packet;
    Table2 {
        click_unoptimized: measure_click(None),
        click_optimized: measure_click(Some(ClickOpts::all())),
        clack_base,
    }
}

/// Ablation over the three MIT Click optimizations (extends Table 2 the
/// way the Click paper itself reports them).
pub fn click_ablation() -> Vec<(&'static str, u64)> {
    let work = router_workload();
    let measure = |opts: Option<ClickOpts>| {
        let img = build_click_router(&ip_router(), opts).expect("click builds");
        let mut h =
            RouterHarness::from_image(img, Some("click_init"), "router_step").expect("harness");
        h.measure(&work).expect("measure").cycles_per_packet
    };
    vec![
        ("none", measure(None)),
        (
            "specializer only",
            measure(Some(ClickOpts { fast_classifier: false, specialize: true, xform: false })),
        ),
        (
            "specializer + fast classifier",
            measure(Some(ClickOpts { fast_classifier: true, specialize: true, xform: false })),
        ),
        ("all three", measure(Some(ClickOpts::all()))),
    ]
}

// ---------------------------------------------------------------------------
// §6 micro-benchmark: Knit-built vs traditionally-built unit-boundary code
// ---------------------------------------------------------------------------

/// Generate the Knit program for an `n`-stage call chain (the §6
/// "programs designed to spend most of their time traversing unit
/// boundaries"; critical path = n+1 unit boundaries).
fn chain_program(n: usize) -> (Program, SourceTree, String) {
    let mut units = String::from(
        r#"
bundletype Stage = { stage }
bundletype Chain = { run_chain }
unit ChainStage = {
    imports [ next : Stage ];
    exports [ this : Stage ];
    depends { exports needs imports; };
    files { "bench_chain.c" };
    rename { next.stage to next_stage; };
}
unit ChainFloor = {
    exports [ this : Stage ];
    files { "bench_floor.c" };
}
unit ChainDriver = {
    imports [ first : Stage ];
    exports [ chain : Chain ];
    depends { exports needs imports; };
    files { "bench_driver.c" };
    rename { first.stage to next_stage; };
}
unit ChainKernel = {
    exports [ chain : Chain ];
    link {
        floor : ChainFloor;
"#,
    );
    for i in 1..=n {
        let prev = if i == 1 { "floor".to_string() } else { format!("s{}", i - 1) };
        units.push_str(&format!("        s{i} : ChainStage [ next = {prev}.this ];\n"));
    }
    units.push_str(&format!(
        "        drv : ChainDriver [ first = s{n}.this ];\n        chain = drv.chain;\n    }};\n}}\n"
    ));
    let mut p = Program::new();
    p.load_str("chain.unit", &units).expect("generated chain units parse");
    let mut t = SourceTree::new();
    t.add(
        "bench_chain.c",
        "int next_stage(int x);\nint stage(int x) {\n    return next_stage(x + 1);\n}\n",
    );
    t.add("bench_floor.c", "int stage(int x) {\n    return x;\n}\n");
    t.add(
        "bench_driver.c",
        "int next_stage(int x);\nint run_chain(int iters) {\n    int acc = 0;\n    for (int i = 0; i < iters; i++) {\n        acc += next_stage(i);\n    }\n    return acc;\n}\n",
    );
    (p, t, "ChainKernel".to_string())
}

/// Cycles for the Knit-built chain.
pub fn chain_cycles_knit(n: usize, iters: i64) -> (u64, i64) {
    let (p, t, root) = chain_program(n);
    let mut opts = BuildOptions::new(root, machine::runtime_symbols());
    opts.entry = None;
    opts.flatten = false;
    let report = build(&p, &t, &opts).expect("chain builds");
    let entry = report.exports["chain.run_chain"].clone();
    let mut m = Machine::new(report.image).expect("machine");
    m.call("__knit_init", &[]).expect("init");
    // warm
    m.call(&entry, &[64]).expect("warm");
    m.reset_counters();
    let r = m.call(&entry, &[iters]).expect("run");
    (m.counters().cycles, r)
}

/// Cycles for the traditionally-built chain: hand-written per-stage sources
/// with globally unique names, compiled separately and linked with plain
/// `ld` — what an OSKit user would have written before Knit.
pub fn chain_cycles_traditional(n: usize, iters: i64) -> (u64, i64) {
    let copts = cmini::CompileOptions::from_flags(&["-O2"]).expect("flags");
    let mut inputs = Vec::new();
    // floor
    let floor = format!("int stage{}(int x) {{\n    return x;\n}}\n", 0);
    inputs.push(cobj::LinkInput::Object(
        cmini::compile("floor.c", &floor, &copts, &cmini::NoFiles).expect("floor compiles"),
    ));
    for i in 1..=n {
        let src = format!(
            "int stage{prev}(int x);\nint stage{i}(int x) {{\n    return stage{prev}(x + 1);\n}}\n",
            prev = i - 1
        );
        inputs.push(cobj::LinkInput::Object(
            cmini::compile(&format!("stage{i}.c"), &src, &copts, &cmini::NoFiles)
                .expect("stage compiles"),
        ));
    }
    let driver = format!(
        "int stage{n}(int x);\nint run_chain(int iters) {{\n    int acc = 0;\n    for (int i = 0; i < iters; i++) {{\n        acc += stage{n}(i);\n    }}\n    return acc;\n}}\n"
    );
    inputs.push(cobj::LinkInput::Object(
        cmini::compile("driver.c", &driver, &copts, &cmini::NoFiles).expect("driver compiles"),
    ));
    let image = cobj::link(
        &inputs,
        &cobj::LinkOptions {
            entry: None,
            runtime_symbols: machine::runtime_symbols().collect(),
            ..Default::default()
        },
    )
    .expect("traditional link");
    let mut m = Machine::new(image).expect("machine");
    m.call("run_chain", &[64]).expect("warm");
    m.reset_counters();
    let r = m.call("run_chain", &[iters]).expect("run");
    (m.counters().cycles, r)
}

/// One row of the §6 overhead experiment.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Units on the critical path (stages + floor + driver boundaries).
    pub chain_len: usize,
    /// Cycles, Knit build.
    pub knit: u64,
    /// Cycles, traditional build.
    pub traditional: u64,
    /// Percent difference ((knit - trad) / trad * 100).
    pub pct: f64,
}

/// Run the overhead sweep over chain lengths (critical paths of 3–8 units,
/// matching the paper's "number of units in the critical path ranged
/// between 3 and 8").
pub fn micro_overhead() -> Vec<OverheadRow> {
    let iters = 2000;
    (1..=6)
        .map(|n| {
            let (k, rk) = chain_cycles_knit(n, iters);
            let (t, rt) = chain_cycles_traditional(n, iters);
            assert_eq!(rk, rt, "both builds must compute the same result");
            OverheadRow {
                chain_len: n + 2,
                knit: k,
                traditional: t,
                pct: (k as f64 - t as f64) / t as f64 * 100.0,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §5.1 constraint statistics
// ---------------------------------------------------------------------------

/// Results of the constraint experiment.
#[derive(Debug, Clone)]
pub struct ConstraintStats {
    /// Units in the checked kernel configuration.
    pub units: usize,
    /// Units carrying constraints.
    pub annotated: usize,
    /// Of those, pure `context(exports) <= context(imports)` propagators.
    pub propagation_only: usize,
    /// Constraint variables and expanded constraints.
    pub vars: usize,
    pub constraints: usize,
    /// Whether the seeded-bug kernel (blocking mutex under interrupt
    /// context) was rejected.
    pub caught_seeded_bug: bool,
    /// Knit front-end time without constraint checking (µs).
    pub knit_time_unchecked_us: u128,
    /// Knit front-end time with constraint checking (µs).
    pub knit_time_checked_us: u128,
}

/// Inputs for the ~100-unit "deep lock kernel": the oskit kit plus
/// generated filter layers interposing on the Lock interface, 70% of
/// which carry only propagation constraints, like the paper's converted
/// components. Shared by [`constraint_stats`] and [`analyze_time`] so the
/// checker and the analyzer are measured on the same workload.
pub fn deep_lock_kernel_inputs() -> (Program, SourceTree, BuildOptions) {
    let (units, t, opts) = deep_lock_kernel_texts();
    let mut p = Program::new();
    for (file, text) in &units {
        p.load_str(file, text).expect("deep-lock unit files parse");
    }
    (p, t, opts)
}

/// The deep-lock kernel of [`deep_lock_kernel_inputs`] as raw text: the
/// unit files as `(file, text)` pairs plus the source tree — the form a
/// composition-server client ships over the wire (`table_serve`).
pub fn deep_lock_kernel_texts() -> (Vec<(String, String)>, SourceTree, BuildOptions) {
    let mut t = oskit::sources();
    // Generate a deep stack of interposing filter units over the Lock
    // interface — each one a real component with code.
    let layers = 94;
    let mut units = String::new();
    for i in 0..layers {
        let file = format!("filter{i}.c");
        t.add(
            &file,
            "int inner_acquire();\nint inner_release();\nstatic int uses;\nint lock_acquire() { uses++; return inner_acquire(); }\nint lock_release() { return inner_release(); }\n",
        );
        // Like the paper's corpus, only ~35% of units need constraints at
        // all; of those, ~70% are pure import-to-export propagation.
        let constraints = if i % 20 < 7 {
            let c = if i % 20 < 5 {
                "context(exports) <= context(imports);"
            } else {
                "context(exports) <= context(imports); context(lock) <= NoContext;"
            };
            format!(
                "    constraints {{ {c} }};
"
            )
        } else {
            String::new()
        };
        units.push_str(&format!(
            r#"
unit Filter{i} = {{
    imports [ inner : Lock ];
    exports [ lock : Lock ];
    depends {{ exports needs imports; }};
    files {{ "{file}" }};
    rename {{ inner.lock_acquire to inner_acquire; inner.lock_release to inner_release; }};
{constraints}}}
"#
        ));
    }
    // kernel: spinlock under all the filters, used by the lock app
    units.push_str(
        r#"
unit DeepLockKernel = {
    exports [ main : Main ];
    link {
        con : VgaConsole;
        out : Printf [ console = con.console ];
        base : SpinLock;
"#,
    );
    for i in 0..layers {
        let prev = if i == 0 { "base.lock".to_string() } else { format!("f{}.lock", i - 1) };
        units.push_str(&format!("        f{i} : Filter{i} [ inner = {prev} ];\n"));
    }
    units.push_str(&format!(
        "        m : LockMain [ stdout = out.stdout, lock = f{}.lock ];\n        main = m.main;\n    }};\n}}\n",
        layers - 1
    ));
    let mut unit_files: Vec<(String, String)> =
        oskit::unit_sources().iter().map(|(f, s)| (f.to_string(), s.to_string())).collect();
    unit_files.push(("filters.unit".to_string(), units));

    (unit_files, t, oskit::kernel_options("DeepLockKernel"))
}

/// Build the deep-lock kernel of [`deep_lock_kernel_inputs`] and gather
/// checker statistics.
pub fn constraint_stats() -> ConstraintStats {
    let (p, t, mut opts) = deep_lock_kernel_inputs();
    let report = build(&p, &t, &opts).expect("deep kernel builds and passes constraints");
    let cr = report.constraints.clone().expect("checked");

    // count annotations among the units actually linked into this kernel
    let used: std::collections::BTreeSet<String> =
        report.elaboration.instances.iter().map(|i| i.unit.clone()).collect();
    let mut annotated = 0usize;
    let mut prop_only = 0usize;
    for name in &used {
        let u = &p.units[name];
        if u.constraints.is_empty() {
            continue;
        }
        annotated += 1;
        let pure = u.constraints.iter().all(|c| {
            use knit_lang::ast::{COp, CTarget, CTerm};
            matches!(
                (&c.lhs, &c.rhs, c.op),
                (
                    CTerm::Prop { target: CTarget::Exports, .. },
                    CTerm::Prop { target: CTarget::Imports, .. },
                    COp::Le
                )
            )
        });
        if pure {
            prop_only += 1;
        }
    }

    // seeded bug still caught in the big program
    let caught = oskit::build_kernel(oskit::KERNEL_IRQ_BAD).is_err();

    // Knit-only time, with and without constraint checking (compile
    // dominates total time; this isolates the front end the way the paper
    // reports "constraint-checking more than doubles the time taken to run
    // Knit").
    let mut knit_only = |check: bool| -> u128 {
        opts.check_constraints = check;
        let r = build(&p, &t, &opts).expect("builds");
        r.phases
            .iter()
            .filter(|(n, _)| {
                matches!(*n, "elaborate" | "constraints" | "schedule" | "objcopy" | "generate")
            })
            .map(|(_, d)| d.as_micros())
            .sum()
    };
    let unchecked = knit_only(false);
    let checked = knit_only(true);

    ConstraintStats {
        units: report.elaboration.instances.len(),
        annotated,
        propagation_only: prop_only,
        vars: cr.vars,
        constraints: cr.constraints,
        caught_seeded_bug: caught,
        knit_time_unchecked_us: unchecked,
        knit_time_checked_us: checked,
    }
}

// ---------------------------------------------------------------------------
// §6 build-time breakdown
// ---------------------------------------------------------------------------

/// One row of the serial / parallel / warm-cache / incremental build
/// comparison.
#[derive(Debug, Clone)]
pub struct BuildModeRow {
    /// `"serial"`, `"parallel"`, `"warm cache"`, `"incremental"`, or
    /// `"incr edit"`.
    pub mode: &'static str,
    /// `BuildOptions::jobs` used for the build.
    pub jobs: usize,
    /// Compile-phase wall-clock (ms).
    pub compile_ms: f64,
    /// Whole-pipeline wall-clock (ms).
    pub total_ms: f64,
    /// Units that went through the C compiler (cache misses).
    pub units_compiled: usize,
    /// Units reused without recompiling (cache hits + session memo).
    pub units_reused: usize,
    /// Units served from the compile cache.
    pub cache_hits: usize,
}

/// Build the modular Clack router five ways — serial cold (`jobs = 1`,
/// empty cache), parallel cold (`jobs = `[`knit::default_jobs`]` max 2`,
/// empty cache), warm (same jobs, through the cache the parallel build
/// just filled, so every unit should hit), incremental no-op (a
/// [`knit::BuildSession`] rebuilt with nothing changed — the full-reuse
/// fast path), and incremental edit (the same session after one `.c`
/// file changes — exactly one recompile) — and report per-mode timings.
/// Asserts the cold/warm/no-op images are byte-identical and that the
/// edited rebuild equals a cold build of the edited tree; the speedup of
/// the parallel row over the serial row is bounded by the machine's core
/// count (on one core the two rows measure the same work).
#[allow(deprecated)] // measures the one-shot `build_with_cache` path on purpose
pub fn build_time_modes() -> Vec<BuildModeRow> {
    let (p, t, opts) = router_build_inputs(&ip_router(), false).expect("router inputs");
    let compile_ms = |r: &knit::BuildReport| {
        r.phases
            .iter()
            .find(|(n, _)| *n == "compile")
            .map(|(_, d)| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0)
    };
    let total_ms =
        |r: &knit::BuildReport| r.phases.iter().map(|(_, d)| d.as_secs_f64() * 1e3).sum::<f64>();
    let row = |mode: &'static str, r: &knit::BuildReport| BuildModeRow {
        mode,
        jobs: r.jobs,
        compile_ms: compile_ms(r),
        total_ms: total_ms(r),
        units_compiled: r.stats.units_compiled,
        units_reused: r.stats.units_reused,
        cache_hits: r.stats.cache_hits,
    };

    let mut serial_opts = opts.clone();
    serial_opts.jobs = 1;
    let serial = build_with_cache(&p, &t, &serial_opts, &BuildCache::new()).expect("serial build");

    let mut par_opts = opts;
    par_opts.jobs = knit::default_jobs().max(2);
    let cache = BuildCache::new();
    let parallel = build_with_cache(&p, &t, &par_opts, &cache).expect("parallel build");
    let warm = build_with_cache(&p, &t, &par_opts, &cache).expect("warm build");

    assert_eq!(serial.image, parallel.image, "jobs must not change the image");
    assert_eq!(parallel.image, warm.image, "the cache must not change the image");
    assert_eq!(warm.stats.cache_misses, 0, "warm rebuild must recompile nothing");

    // Incremental rows: a persistent session over the same inputs, sharing
    // the warm compile cache. The first build populates the session's memo
    // (all cache hits); the second is the unchanged fast path; then one
    // source edit invalidates exactly one unit.
    let mut session = knit::BuildSession::from_parts(p.clone(), t.clone(), par_opts.clone())
        .with_cache(cache.clone());
    session.build().expect("session warm build");
    let noop = session.build().expect("incremental no-op build");
    assert_eq!(noop.image, warm.image, "no-op rebuild must not change the image");
    assert_eq!(noop.stats.units_compiled, 0, "no-op rebuild must recompile nothing");

    let edited = format!(
        "{}\nstatic int knit_bench_poke;\n",
        t.get("counter.c").expect("router uses counter.c")
    );
    session.update_source("counter.c", &edited);
    let incr = session.build().expect("incremental edit build");
    let mut t2 = t.clone();
    t2.add("counter.c", edited);
    let cold_edited =
        build_with_cache(&p, &t2, &par_opts, &BuildCache::new()).expect("cold edited build");
    assert_eq!(incr.image, cold_edited.image, "incremental rebuild must match a cold build");
    assert_eq!(incr.stats.units_compiled, 1, "one edit must recompile exactly one unit");

    vec![
        row("serial", &serial),
        row("parallel", &parallel),
        row("warm cache", &warm),
        row("incremental", &noop),
        row("incr edit", &incr),
    ]
}

// ---------------------------------------------------------------------------
// cross-unit analyzer wall-time (DESIGN.md §3, `knit::analyze`)
// ---------------------------------------------------------------------------

/// Analyzer timings over the ~100-unit deep-lock kernel.
#[derive(Debug, Clone)]
pub struct AnalyzeTimeRow {
    /// Distinct units the analyzer summarized.
    pub units: usize,
    /// Diagnostics produced on the cold pass.
    pub diagnostics: usize,
    /// Cold full-program analysis wall-clock (ms).
    pub cold_ms: f64,
    /// Re-analysis wall-clock after a one-file edit (ms).
    pub incremental_ms: f64,
    /// Unit summaries rebuilt by the incremental pass.
    pub reanalyzed: usize,
}

/// Time [`knit::BuildSession::analyze`] cold and after a one-file edit on
/// the ~100-unit kernel of [`deep_lock_kernel_inputs`]. Asserts the
/// session's precision law: the edit resummarizes exactly one unit and
/// leaves the findings unchanged.
pub fn analyze_time() -> AnalyzeTimeRow {
    let (p, t, opts) = deep_lock_kernel_inputs();
    let edited = format!("{}\nstatic int bench_poke;\n", t.get("filter0.c").expect("filter0.c"));
    let config = knit::LintConfig::new();
    let mut session = knit::BuildSession::from_parts(p, t, opts);

    let start = std::time::Instant::now();
    let cold = session.analyze(&config).expect("kernel analyzes");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let runs_cold = session.stats().analyze.runs;

    session.update_source("filter0.c", &edited);
    let start = std::time::Instant::now();
    let incr = session.analyze(&config).expect("kernel re-analyzes");
    let incremental_ms = start.elapsed().as_secs_f64() * 1e3;
    let reanalyzed = session.stats().analyze.runs - runs_cold;
    assert_eq!(reanalyzed, 1, "one edit must resummarize exactly one unit");
    assert_eq!(
        incr.diagnostics.len(),
        cold.diagnostics.len(),
        "an unused static must not change the findings"
    );

    AnalyzeTimeRow {
        units: cold.units_analyzed,
        diagnostics: cold.diagnostics.len(),
        cold_ms,
        incremental_ms,
        reanalyzed,
    }
}

/// Time the concurrency lints (K1006–K1009, DESIGN.md §11) on the 4-core
/// sharded router — the interprocedural lockset fixpoint runs inside
/// `analyze`, so this is the same memoized pipeline as [`analyze_time`]
/// but on the multi-core composition whose shared statics actually
/// exercise it. Asserts the smoke contract: the intact router is
/// concurrency-lint-clean and a one-file edit resummarizes one unit.
pub fn race_analyze_time() -> AnalyzeTimeRow {
    let (p, t, opts) = clack::mc_router_build_inputs(4, false).expect("mc inputs");
    let edited = format!("{}\n/* bench poke */\n", t.get("counter.c").expect("counter.c"));
    let config = knit::LintConfig::new();
    let mut session = knit::BuildSession::from_parts(p, t, opts);

    let start = std::time::Instant::now();
    let cold = session.analyze(&config).expect("router analyzes");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let runs_cold = session.stats().analyze.runs;
    let conc = |r: &knit::AnalysisReport| {
        r.diagnostics
            .iter()
            .filter(|d| ["K1006", "K1007", "K1008", "K1009"].contains(&d.code))
            .count()
    };
    assert_eq!(conc(&cold), 0, "the intact sharded router must be race-lint-clean");

    session.update_source("counter.c", &edited);
    let start = std::time::Instant::now();
    let incr = session.analyze(&config).expect("router re-analyzes");
    let incremental_ms = start.elapsed().as_secs_f64() * 1e3;
    let reanalyzed = session.stats().analyze.runs - runs_cold;
    assert_eq!(reanalyzed, 1, "one edit must resummarize exactly one unit");
    assert_eq!(conc(&incr), 0, "a comment edit must not change the race verdicts");

    AnalyzeTimeRow {
        units: cold.units_analyzed,
        diagnostics: cold.diagnostics.len(),
        cold_ms,
        incremental_ms,
        reanalyzed,
    }
}

/// Per-phase build times for a configuration.
pub fn build_time_breakdown() -> Vec<(String, f64)> {
    let report = build_clack_router(&ip_router(), false).expect("router builds");
    let total: f64 = report.phases.iter().map(|(_, d)| d.as_secs_f64()).sum();
    report.phases.iter().map(|(n, d)| (n.to_string(), d.as_secs_f64() / total * 100.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_builds_agree_for_every_length() {
        for n in 1..=4 {
            let (_, rk) = chain_cycles_knit(n, 100);
            let (_, rt) = chain_cycles_traditional(n, 100);
            assert_eq!(rk, rt, "n={n}");
        }
    }

    #[test]
    fn knit_overhead_is_small() {
        // the paper reports "from 2% slower to 3% faster"
        for row in micro_overhead() {
            assert!(
                row.pct.abs() < 5.0,
                "chain {} overhead {:.2}% out of band",
                row.chain_len,
                row.pct
            );
        }
    }

    #[test]
    fn table1_orderings_match_the_paper() {
        let rows = table1();
        let get = |hand: bool, flat: bool| {
            rows.iter().find(|r| r.hand_optimized == hand && r.flattened == flat).unwrap().cycles
        };
        let base = get(false, false);
        let hand = get(true, false);
        let flat = get(false, true);
        let both = get(true, true);
        assert!(hand < base, "hand optimization wins: {hand} vs {base}");
        assert!(flat < base, "flattening wins: {flat} vs {base}");
        assert!(both <= hand && both <= flat, "both is best: {both}");
    }

    /// The PGO acceptance criteria on the Clack base router: the layout
    /// derived from a profiled run strictly cuts instruction-fetch stalls
    /// while leaving the non-stall work untouched; the advisor names hot
    /// cross-unit edges; and applying its flatten suggestion (the
    /// flattened configuration) lowers cycles per packet.
    #[test]
    fn pgo_layout_cuts_stalls_and_advice_pays_off() {
        let work = router_workload_sized(128);
        let (p, t, opts) = router_build_inputs(&ip_router(), false).expect("router inputs");
        let base = build(&p, &t, &opts).expect("base builds");
        let (mb, profile) = profile_router(&base, &work);
        assert!(mb.raw.ifetch_stall_cycles > 0, "base router must conflict-miss");

        let mut pgo_opts = opts.clone();
        pgo_opts.profile = Some(std::sync::Arc::new(profile.layout_profile()));
        let laid = build(&p, &t, &pgo_opts).expect("pgo build");
        let ml = RouterHarness::new(&laid).expect("harness").measure(&work).expect("measure");
        assert!(
            ml.raw.ifetch_stall_cycles < mb.raw.ifetch_stall_cycles,
            "pgo layout must cut stalls: {} vs {}",
            ml.raw.ifetch_stall_cycles,
            mb.raw.ifetch_stall_cycles
        );
        assert_eq!(
            ml.raw.cycles - ml.raw.ifetch_stall_cycles,
            mb.raw.cycles - mb.raw.ifetch_stall_cycles,
            "layout must not change the non-stall work"
        );

        let advice = knit::pgo::suggest(&base, &profile);
        assert!(!advice.hot_edges.is_empty(), "advisor must find hot cross-instance edges");
        let top = advice.suggestions.first().expect("advisor must suggest a flatten group");
        assert!(top.units.len() > 1, "the suggestion must span units: {:?}", top.units);

        // applying the suggestion = flattening the router core
        let flat = build_clack_router(&ip_router(), true).expect("flat builds");
        let mf = RouterHarness::new(&flat).expect("harness").measure(&work).expect("measure");
        assert!(
            mf.cycles_per_packet < mb.cycles_per_packet,
            "applied suggestion must lower cycles/packet: {} vs {}",
            mf.cycles_per_packet,
            mb.cycles_per_packet
        );
    }

    /// PGO must also pay off on the ~100-unit deep-lock kernel, the other
    /// half of the tentpole: fewer fetch stalls and I-cache misses, the
    /// same non-stall work, and a layout-invariant text size.
    #[test]
    fn pgo_layout_cuts_deep_lock_kernel_stalls() {
        let r = deep_lock_pgo();
        let (bc, bs, bm) = r.base;
        let (pc, ps, pm) = r.pgo;
        assert!(bs > 0, "kernel boot must conflict-miss at input order");
        assert!(ps < bs, "pgo layout must cut boot stalls: {ps} vs {bs}");
        assert!(pm < bm, "pgo layout must cut icache misses: {pm} vs {bm}");
        assert_eq!(pc - ps, bc - bs, "layout must not change the non-stall work");
    }

    #[test]
    fn table2_orderings_match_the_paper() {
        let t = table2();
        assert!(t.click_optimized < t.click_unoptimized);
        assert!(t.click_unoptimized > t.clack_base, "Click base is slower than Clack base");
    }

    #[test]
    fn constraint_stats_shape() {
        let s = constraint_stats();
        assert!(s.units >= 90, "around a hundred units: {}", s.units);
        assert!(s.annotated >= 30 && s.annotated <= s.units / 2, "paper-like fraction annotated");
        assert!(s.propagation_only * 100 / s.annotated >= 60, "~70% propagation-only");
        assert!(s.caught_seeded_bug);
        assert!(s.constraints >= 40);
    }
}
