//! Simulator-throughput benchmark: host wall-clock speed of the two
//! interpreter loops ([`machine::ExecMode::Fast`] vs
//! [`machine::ExecMode::Reference`]) on real workloads.
//!
//! Every workload runs end to end in *both* modes and the final
//! [`PerfCounters`] are compared — any divergence means the fast loop
//! changed guest-visible behaviour, which is the CI gate
//! (`simperf --json` exits nonzero on divergence). The throughput numbers
//! themselves (guest MIPS, packets/sec) are reported but not gated: host
//! wall-clock is machine-dependent, bit-identity is not.

use std::time::Instant;

use clack::packets::{self, WorkloadOptions};
use clack::{build_clack_router, ip_router};
use knit::build;
use machine::{ExecMode, Machine, PerfCounters};

/// Workload sizing for a simperf run.
#[derive(Debug, Clone, Copy)]
pub struct SimperfOptions {
    /// Packets blasted through the Clack router.
    pub packets: usize,
    /// Workload RNG seed (forwarded to [`WorkloadOptions::seed`]).
    pub seed: u64,
}

impl Default for SimperfOptions {
    fn default() -> Self {
        SimperfOptions { packets: 2048, seed: WorkloadOptions::default().seed }
    }
}

impl SimperfOptions {
    /// The tiny configuration CI's smoke run uses.
    pub fn smoke() -> Self {
        SimperfOptions { packets: 48, ..Default::default() }
    }
}

/// One interpreter mode's end-to-end execution of a workload.
#[derive(Debug, Clone, Copy)]
pub struct ModeRun {
    /// Host wall-clock seconds for the guest execution.
    pub wall_s: f64,
    /// Final counters (init + full workload).
    pub counters: PerfCounters,
}

impl ModeRun {
    /// Guest millions-of-instructions per host second.
    pub fn mips(&self) -> f64 {
        self.counters.instructions as f64 / self.wall_s.max(1e-9) / 1e6
    }
}

/// Both modes' runs of one workload, plus the identity verdict.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload label (stable across runs; part of the JSON schema).
    pub name: &'static str,
    /// Packets processed (0 for non-packet workloads).
    pub packets: u64,
    pub fast: ModeRun,
    pub reference: ModeRun,
    /// Whether the two modes finished with bit-identical counters *and*
    /// identical guest-visible output (the gate).
    pub identical: bool,
}

impl WorkloadResult {
    /// Host wall-clock speedup of the fast loop over the reference loop.
    pub fn speedup(&self) -> f64 {
        self.reference.wall_s / self.fast.wall_s.max(1e-9)
    }

    /// Fast-mode packets per host second (0 for non-packet workloads).
    pub fn packets_per_sec(&self) -> f64 {
        self.packets as f64 / self.fast.wall_s.max(1e-9)
    }
}

/// A full simperf run.
#[derive(Debug, Clone)]
pub struct SimperfReport {
    pub options: SimperfOptions,
    pub workloads: Vec<WorkloadResult>,
}

impl SimperfReport {
    /// Names of workloads whose modes diverged (empty = gate passes).
    pub fn divergences(&self) -> Vec<&'static str> {
        self.workloads.iter().filter(|w| !w.identical).map(|w| w.name).collect()
    }
}

/// Drive the modular Clack router over `work` in `mode`: init, then inject
/// and step each packet to completion. Returns the run plus the forwarded
/// frames (guest-visible output, compared across modes).
fn run_router(
    report: &knit::BuildReport,
    mode: ExecMode,
    work: &[packets::WorkItem],
) -> (ModeRun, u64, Vec<Vec<Vec<u8>>>) {
    let entry = report
        .exports
        .iter()
        .find(|(k, _)| k.ends_with(".router_step"))
        .map(|(_, v)| v.clone())
        .expect("router_step exported");
    let mut m = Machine::new(report.image.clone()).expect("router machine");
    m.set_exec_mode(mode);
    let start = Instant::now();
    m.call("__knit_init", &[]).expect("init");
    let entry = m.image().func_by_name(&entry).expect("entry resolves");
    let mut processed = 0u64;
    for (dev, pkt) in work {
        m.netdevs[*dev].inject(pkt.clone());
        loop {
            match m.call_idx(entry, &[]) {
                Ok(0) => break,
                Ok(n) => processed += n as u64,
                Err(e) => panic!("router fault: {e}"),
            }
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let frames = (0..m.netdevs.len())
        .map(|d| {
            let mut out = Vec::new();
            while let Some(f) = m.netdevs[d].collect() {
                out.push(f);
            }
            out
        })
        .collect();
    (ModeRun { wall_s, counters: m.counters() }, processed, frames)
}

/// The Clack-router throughput workload: the paper's Table 1 router
/// (modular, unflattened) forwarding `opts.packets` frames.
pub fn router_throughput(opts: &SimperfOptions) -> WorkloadResult {
    let report = build_clack_router(&ip_router(), false).expect("clack router builds");
    let work = packets::workload(&WorkloadOptions {
        count: opts.packets,
        seed: opts.seed,
        ..Default::default()
    });
    let (fast, n_fast, frames_fast) = run_router(&report, ExecMode::Fast, &work);
    let (reference, n_ref, frames_ref) = run_router(&report, ExecMode::Reference, &work);
    WorkloadResult {
        name: "clack-router",
        packets: n_fast,
        fast,
        reference,
        identical: fast.counters == reference.counters
            && n_fast == n_ref
            && frames_fast == frames_ref,
    }
}

/// Boot an image in `mode`, expecting exit code `want`.
fn run_boot(image: &cobj::Image, mode: ExecMode, want: i64) -> (ModeRun, String) {
    let mut m = Machine::new(image.clone()).expect("machine");
    m.set_exec_mode(mode);
    let start = Instant::now();
    let code = m.run_entry().expect("image boots");
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(code, want, "unexpected exit code");
    (ModeRun { wall_s, counters: m.counters() }, m.console.output.clone())
}

/// Boot `image` in both modes and compare.
fn boot_both(name: &'static str, image: &cobj::Image, want: i64) -> WorkloadResult {
    let (fast, out_fast) = run_boot(image, ExecMode::Fast, want);
    let (reference, out_ref) = run_boot(image, ExecMode::Reference, want);
    WorkloadResult {
        name,
        packets: 0,
        fast,
        reference,
        identical: fast.counters == reference.counters && out_fast == out_ref,
    }
}

/// The deep-lock kernel boot (~100 units, the constraint/analyzer/PGO
/// workload) as a throughput workload.
pub fn kernel_boot() -> WorkloadResult {
    let (p, t, opts) = crate::deep_lock_kernel_inputs();
    let report = build(&p, &t, &opts).expect("deep-lock kernel builds");
    boot_both("deep-lock-kernel", &report.image, 3)
}

/// The on-disk `demo/` web server (the paper's Figure 5 configuration),
/// booted in both modes — the "demo image" half of the CI divergence gate.
/// Returns `None` when the demo directory is not present (e.g. a pruned
/// checkout); callers should note the skip.
pub fn demo_boot() -> Option<WorkloadResult> {
    let demo = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../demo");
    let unit = std::fs::read_to_string(demo.join("webserver.unit")).ok()?;
    let mut p = knit::Program::new();
    p.load_str("webserver.unit", &unit).expect("demo units parse");
    let mut t = knit::SourceTree::new();
    for entry in std::fs::read_dir(&demo).ok()? {
        let path = entry.ok()?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("c") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            t.add(&name, std::fs::read_to_string(&path).expect("demo source reads"));
        }
    }
    let opts = knit::BuildOptions::new("WebServer", machine::runtime_symbols());
    let report = build(&p, &t, &opts).expect("demo builds");
    Some(boot_both("demo-webserver", &report.image, 0))
}

/// Run the full suite: Clack router, deep-lock kernel boot, and (when
/// present) the demo web server.
pub fn run(opts: SimperfOptions) -> SimperfReport {
    let mut workloads = vec![router_throughput(&opts), kernel_boot()];
    if let Some(demo) = demo_boot() {
        workloads.push(demo);
    }
    SimperfReport { options: opts, workloads }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_identical_across_modes() {
        let report = run(SimperfOptions { packets: 24, ..Default::default() });
        assert!(report.divergences().is_empty(), "modes diverged on {:?}", report.divergences());
        let router = &report.workloads[0];
        assert_eq!(router.name, "clack-router");
        assert!(router.packets >= 24);
        assert!(router.fast.counters.instructions > 0);
    }
}
