//! Criterion bench over the Table 2 configurations: wall-clock time to
//! route packets through the Click-style baseline, generic vs optimized.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clack::click::{build_click_router, ClickOpts};
use clack::packets::{workload, WorkloadOptions};
use clack::{ip_router, RouterHarness};

fn bench_click(c: &mut Criterion) {
    let work = workload(&WorkloadOptions { count: 64, ..Default::default() });
    let mut group = c.benchmark_group("click_router");
    group.sample_size(10);

    for (name, opts) in [
        ("generic", None),
        ("optimized", Some(ClickOpts::all())),
        (
            "specializer_only",
            Some(ClickOpts { fast_classifier: false, specialize: true, xform: false }),
        ),
    ] {
        let image = build_click_router(&ip_router(), opts).expect("build");
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut h =
                    RouterHarness::from_image(image.clone(), Some("click_init"), "router_step")
                        .expect("harness");
                let m = h.measure(black_box(&work)).expect("measure");
                black_box(m.cycles_per_packet)
            })
        });
    }
    group.finish();
}

fn bench_click_codegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("click_codegen");
    group.sample_size(10);
    group.bench_function("generate_and_compile_optimized", |b| {
        b.iter(|| {
            black_box(build_click_router(&ip_router(), Some(ClickOpts::all())).expect("build"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_click, bench_click_codegen);
criterion_main!(benches);
