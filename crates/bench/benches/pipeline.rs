//! Criterion bench over the Knit build pipeline itself (the §6 build-time
//! story): full builds of representative kernels, plus the constraint
//! checker in isolation (the "more than doubles the time taken to run
//! Knit" claim).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use knit::build;

fn bench_kernel_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("knit_build");
    group.sample_size(10);
    for kernel in [oskit::KERNEL_HELLO, oskit::KERNEL_FS, oskit::KERNEL_CHAIN_FLAT] {
        group.bench_function(kernel.to_string(), |b| {
            b.iter(|| black_box(oskit::build_kernel(kernel).expect("builds").stats.text_size))
        });
    }
    group.finish();
}

fn bench_constraint_checking(c: &mut Criterion) {
    let (p, t) = oskit::setup();
    let mut group = c.benchmark_group("constraints");
    group.sample_size(10);
    for check in [false, true] {
        let name = if check { "with_checking" } else { "without_checking" };
        group.bench_function(name, |b| {
            let mut opts = oskit::kernel_options(oskit::KERNEL_IRQ_GOOD);
            opts.check_constraints = check;
            b.iter(|| black_box(build(&p, &t, &opts).expect("builds").stats.instances))
        });
    }
    group.finish();
}

fn bench_cmini(c: &mut Criterion) {
    let src = oskit::sources();
    let mut group = c.benchmark_group("cmini");
    group.sample_size(20);
    let memfs = src.get("memfs.c").expect("memfs source").to_string();
    let opts = cmini::CompileOptions::from_flags(&["-Iinclude", "-O2"]).expect("flags");
    group.bench_function("compile_memfs_o2", |b| {
        b.iter(|| black_box(cmini::compile("memfs.c", &memfs, &opts, &src).expect("compiles")))
    });
    group.finish();
}

criterion_group!(benches, bench_kernel_builds, bench_constraint_checking, bench_cmini);
criterion_main!(benches);
