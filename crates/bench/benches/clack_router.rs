//! Criterion bench over the Table 1 configurations: wall-clock time to
//! route a packet batch through each Clack router build. The *simulated*
//! cycle numbers (the paper's metric) come from `--bin table1`; this bench
//! tracks the reproduction's own execution speed so regressions in the
//! machine/compiler stay visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clack::packets::{workload, WorkloadOptions};
use clack::{build_clack_router, build_hand_router, ip_router, RouterHarness};

fn bench_clack(c: &mut Criterion) {
    let work = workload(&WorkloadOptions { count: 64, ..Default::default() });
    let mut group = c.benchmark_group("clack_router");
    group.sample_size(10);

    for (name, hand, flat) in [
        ("modular", false, false),
        ("hand_optimized", true, false),
        ("modular_flattened", false, true),
        ("hand_flattened", true, true),
    ] {
        let report = if hand {
            build_hand_router(flat).expect("build")
        } else {
            build_clack_router(&ip_router(), flat).expect("build")
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut h = RouterHarness::new(&report).expect("harness");
                let m = h.measure(black_box(&work)).expect("measure");
                black_box(m.cycles_per_packet)
            })
        });
    }
    group.finish();
}

fn bench_clack_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("clack_build");
    group.sample_size(10);
    group.bench_function("modular", |b| {
        b.iter(|| {
            black_box(build_clack_router(&ip_router(), false).expect("build").stats.text_size)
        })
    });
    group.bench_function("flattened", |b| {
        b.iter(|| black_box(build_clack_router(&ip_router(), true).expect("build").stats.text_size))
    });
    group.finish();
}

criterion_group!(benches, bench_clack, bench_clack_build);
criterion_main!(benches);
