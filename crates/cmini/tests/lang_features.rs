//! Exhaustive language-feature tests for mini-C, executed on the machine.
//! These complement `tests/exec.rs` with the corner cases the component
//! corpus leans on: multi-dimensional arrays, function-pointer tables,
//! nested structs through pointers, the preprocessor, and the optimizer
//! pipeline's interaction with all of them.

use cmini::{compile, CompileOptions, NoFiles, OptLevel};
use cobj::{link, LinkInput, LinkOptions};
use machine::Machine;

fn boot(src: &str, opt: OptLevel) -> Machine {
    let opts = CompileOptions { opt, ..Default::default() };
    let obj = compile("t.c", src, &opts, &NoFiles).unwrap_or_else(|e| panic!("compile: {e}"));
    let img = link(
        &[LinkInput::Object(obj)],
        &LinkOptions {
            entry: None,
            runtime_symbols: machine::runtime_symbols().collect(),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("link: {e}"));
    Machine::new(img).unwrap()
}

fn run(src: &str, name: &str, args: &[i64]) -> i64 {
    let mut m0 = boot(src, OptLevel::O0);
    let r0 = m0.call(name, args).unwrap_or_else(|e| panic!("O0 fault: {e}"));
    let mut m2 = boot(src, OptLevel::O2);
    let r2 = m2.call(name, args).unwrap_or_else(|e| panic!("O2 fault: {e}"));
    assert_eq!(r0, r2, "O0/O2 disagreement");
    r0
}

#[test]
fn two_dimensional_arrays() {
    let src = r#"
        static int grid[3][4];
        int f() {
            for (int r = 0; r < 3; r++)
                for (int c = 0; c < 4; c++)
                    grid[r][c] = r * 10 + c;
            int sum = 0;
            for (int r = 0; r < 3; r++) sum += grid[r][3];
            return sum + grid[2][1];
        }
    "#;
    assert_eq!(run(src, "f", &[]), 3 + 13 + 23 + 21);
}

#[test]
fn two_dimensional_char_rings() {
    // the queue element's exact pattern
    let src = r#"
        static char ring[4][16];
        int f() {
            for (int s = 0; s < 4; s++) {
                char *slot = ring[s];
                for (int i = 0; i < 16; i++) slot[i] = s * 16 + i;
            }
            return (ring[3][15] & 255) + (ring[0][0] & 255);
        }
    "#;
    assert_eq!(run(src, "f", &[]), 63);
}

#[test]
fn function_pointer_dispatch_tables() {
    let src = r#"
        int inc(int x) { return x + 1; }
        int dec(int x) { return x - 1; }
        int dbl(int x) { return x * 2; }
        static int (*ops[3])(int) = { inc, dec, dbl };
        int f(int which, int v) {
            return ops[which](v);
        }
    "#;
    assert_eq!(run(src, "f", &[0, 10]), 11);
    assert_eq!(run(src, "f", &[1, 10]), 9);
    assert_eq!(run(src, "f", &[2, 10]), 20);
}

#[test]
fn nested_struct_chains() {
    let src = r#"
        struct leaf { int v; };
        struct node { struct leaf l; struct node *next; };
        static struct node a;
        static struct node b;
        int f() {
            a.l.v = 7;
            a.next = &b;
            b.l.v = 35;
            b.next = 0;
            int sum = 0;
            struct node *p = &a;
            while (p) {
                sum += p->l.v;
                p = p->next;
            }
            return sum;
        }
    "#;
    assert_eq!(run(src, "f", &[]), 42);
}

#[test]
fn struct_with_embedded_array_field() {
    let src = r#"
        struct buf { char data[8]; int len; };
        static struct buf b;
        int f() {
            for (int i = 0; i < 8; i++) b.data[i] = 'a' + i;
            b.len = 8;
            int sum = 0;
            for (int i = 0; i < b.len; i++) sum += b.data[i];
            return sum;
        }
    "#;
    let expected: i64 = (0..8).map(|i| ('a' as i64) + i).sum();
    assert_eq!(run(src, "f", &[]), expected);
}

#[test]
fn preprocessor_conditional_compilation() {
    let src = "#define FAST 1\n#ifdef FAST\nint f() { return 1; }\n#else\nint f() { return 2; }\n#endif\n";
    assert_eq!(run(src, "f", &[]), 1);
    let src2 = "#ifdef FAST\nint f() { return 1; }\n#else\nint f() { return 2; }\n#endif\n";
    assert_eq!(run(src2, "f", &[]), 2);
}

#[test]
fn include_directories_resolve() {
    let mut files = std::collections::BTreeMap::new();
    files.insert("inc/config.h".to_string(), "#define ANSWER 42\n".to_string());
    let opts = CompileOptions {
        pp: cmini::PpOptions { include_dirs: vec!["inc".into()], defines: vec![] },
        ..Default::default()
    };
    let obj = compile("t.c", "#include \"config.h\"\nint f() { return ANSWER; }\n", &opts, &files)
        .unwrap();
    let img = link(
        &[LinkInput::Object(obj)],
        &LinkOptions {
            entry: None,
            runtime_symbols: machine::runtime_symbols().collect(),
            ..Default::default()
        },
    )
    .unwrap();
    let mut m = Machine::new(img).unwrap();
    assert_eq!(m.call("f", &[]).unwrap(), 42);
}

#[test]
fn early_return_inlining_preserves_guard_clause_logic() {
    // exactly the CheckIPHeader shape: a run of guard clauses, inlined into
    // a caller, at both opt levels
    let src = r#"
        static int bad;
        static int validate(int len, int ver, int sum) {
            if (len < 20) { bad++; return 0; }
            if (ver != 69) { bad++; return 0; }
            if (sum != 0) { bad++; return 0; }
            return 1;
        }
        int f(int len, int ver, int sum) {
            int ok = validate(len, ver, sum);
            return ok * 10 + bad;
        }
    "#;
    assert_eq!(run(src, "f", &[30, 69, 0]), 10);
    assert_eq!(run(src, "f", &[5, 69, 0]), 1);
    assert_eq!(run(src, "f", &[30, 68, 0]), 1);
}

#[test]
fn early_return_inlining_inside_loops() {
    let src = r#"
        static int find(int *a, int n, int needle) {
            for (int i = 0; i < n; i++) {
                if (a[i] == needle) return i;
            }
            return -1;
        }
        int f(int needle) {
            int data[5];
            for (int i = 0; i < 5; i++) data[i] = i * i;
            return find(data, 5, needle);
        }
    "#;
    assert_eq!(run(src, "f", &[9]), 3);
    assert_eq!(run(src, "f", &[7]), -1);
}

#[test]
fn hoisted_calls_in_conditions_keep_short_circuit() {
    let src = r#"
        static int calls;
        static int probe(int x) { calls++; return x > 0; }
        int f(int a, int b) {
            calls = 0;
            if (probe(a) && probe(b)) { }
            return calls;
        }
    "#;
    // a <= 0: second probe must not run
    assert_eq!(run(src, "f", &[0, 5]), 1);
    assert_eq!(run(src, "f", &[3, 5]), 2);
}

#[test]
fn string_literals_with_escapes() {
    let src = r#"
        int f() {
            char *s = "a\tb\nc\\d\"e";
            int sum = 0;
            while (*s) { sum += *s; s++; }
            return sum;
        }
    "#;
    let expected: i64 = "a\tb\nc\\d\"e".bytes().map(|b| b as i64).sum();
    assert_eq!(run(src, "f", &[]), expected);
}

#[test]
fn pointer_to_pointer() {
    let src = r#"
        int f() {
            int x = 5;
            int *p = &x;
            int **pp = &p;
            **pp = 9;
            return x + **pp;
        }
    "#;
    assert_eq!(run(src, "f", &[]), 18);
}

#[test]
fn globals_survive_across_calls() {
    let src = r#"
        static int state;
        int bump(int d) { state += d; return state; }
    "#;
    let mut m = boot(src, OptLevel::O2);
    assert_eq!(m.call("bump", &[5]).unwrap(), 5);
    assert_eq!(m.call("bump", &[7]).unwrap(), 12);
    assert_eq!(m.call("bump", &[-12]).unwrap(), 0);
}

#[test]
fn negative_modulo_and_shifts() {
    assert_eq!(run("int f(int a) { return a % 7; }", "f", &[-15]), -1);
    assert_eq!(run("int f(int a) { return a << 3; }", "f", &[-2]), -16);
    assert_eq!(run("int f(int a) { return a >> 1; }", "f", &[-8]), -4);
}

#[test]
fn do_while_executes_at_least_once() {
    let src = "int f(int n) { int c = 0; do { c++; } while (c < n); return c; }";
    assert_eq!(run(src, "f", &[0]), 1);
    assert_eq!(run(src, "f", &[5]), 5);
}

#[test]
fn deeply_nested_control_flow() {
    let src = r#"
        int f(int n) {
            int total = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2) {
                    for (int j = 0; j < i; j++) {
                        if (j == 3) continue;
                        while (total % 7 == 6) total++;
                        total += j;
                    }
                } else if (i > 4) {
                    break;
                }
            }
            return total;
        }
    "#;
    // golden value computed once at O0 and cross-checked at O2 by run()
    let v = run(src, "f", &[10]);
    assert_eq!(v, run(src, "f", &[10]));
}

#[test]
fn sizeof_in_expressions_and_pointer_steps() {
    let src = r#"
        struct wide { int a; int b; char c; };
        int f() {
            struct wide arr[3];
            struct wide *p = arr;
            struct wide *q = p + 2;
            int bytes = (int)((char*)q - (char*)p);
            return bytes == 2 * sizeof(struct wide);
        }
    "#;
    assert_eq!(run(src, "f", &[]), 1);
}
