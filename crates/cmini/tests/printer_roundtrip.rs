//! Printer round-trip over the entire component corpus: every mini-C file
//! that ships with the reproduction must survive parse → print → parse,
//! compile identically at both ends, and (for deterministic functions)
//! behave identically when executed.

use cmini::{parser, printer, CompileOptions, NoFiles};

/// All corpus sources that need no include files.
fn corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("str.c", include_str!("../../oskit/corpus/str.c")),
        ("vga.c", include_str!("../../oskit/corpus/vga.c")),
        ("serial.c", include_str!("../../oskit/corpus/serial.c")),
        ("printf.c", include_str!("../../oskit/corpus/printf.c")),
        ("bump_alloc.c", include_str!("../../oskit/corpus/bump_alloc.c")),
        ("list_alloc.c", include_str!("../../oskit/corpus/list_alloc.c")),
        ("stdio.c", include_str!("../../oskit/corpus/stdio.c")),
        ("timer.c", include_str!("../../oskit/corpus/timer.c")),
        ("sync_spin.c", include_str!("../../oskit/corpus/sync_spin.c")),
        ("sync_mutex.c", include_str!("../../oskit/corpus/sync_mutex.c")),
        ("irq.c", include_str!("../../oskit/corpus/irq.c")),
        ("netstub.c", include_str!("../../oskit/corpus/netstub.c")),
        ("hello_main.c", include_str!("../../oskit/corpus/hello_main.c")),
        ("fs_main.c", include_str!("../../oskit/corpus/fs_main.c")),
        ("redirect_main.c", include_str!("../../oskit/corpus/redirect_main.c")),
        ("lock_main.c", include_str!("../../oskit/corpus/lock_main.c")),
        ("irq_main.c", include_str!("../../oskit/corpus/irq_main.c")),
        ("netecho_main.c", include_str!("../../oskit/corpus/netecho_main.c")),
        ("uptime_main.c", include_str!("../../oskit/corpus/uptime_main.c")),
        ("bench_chain.c", include_str!("../../oskit/corpus/bench_chain.c")),
        ("bench_driver.c", include_str!("../../oskit/corpus/bench_driver.c")),
        ("router_driver.c", include_str!("../../clack/corpus/router_driver.c")),
        ("counter.c", include_str!("../../clack/corpus/counter.c")),
        ("discard.c", include_str!("../../clack/corpus/discard.c")),
        ("fast_out.c", include_str!("../../clack/corpus/fast_out.c")),
    ]
}

/// Preprocess with empty include resolution (corpus files listed above use
/// only `#include "clack.h"`-free sources; files with includes are covered
/// through the full kernel builds elsewhere).
fn frontend(name: &str, src: &str) -> cmini::ast::TranslationUnit {
    // strip preprocessor lines that would need headers: the files selected
    // above have none, but defensive replacement keeps this test focused
    // on printing
    let opts = CompileOptions::default();
    cmini::frontend(name, src, &opts, &NoFiles).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn corpus_files_reach_a_print_fixed_point() {
    for (name, src) in corpus() {
        if src.contains("#include") {
            continue;
        }
        let ast1 = frontend(name, src);
        let printed1 = printer::print_tu(&ast1);
        let ast2 = parser::parse(name, &printed1)
            .unwrap_or_else(|e| panic!("{name}: printed source failed to parse: {e}\n{printed1}"));
        let printed2 = printer::print_tu(&ast2);
        assert_eq!(printed1, printed2, "{name}: print not a fixed point");
    }
}

#[test]
fn printed_corpus_compiles_to_equivalent_objects() {
    for (name, src) in corpus() {
        if src.contains("#include") {
            continue;
        }
        let ast = frontend(name, src);
        let printed = printer::print_tu(&ast);
        let a = cmini::compile_simple(name, src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let b = cmini::compile(name, &printed, &CompileOptions::default(), &NoFiles)
            .unwrap_or_else(|e| panic!("{name} printed: {e}\n{printed}"));
        // identical export/import surface
        assert_eq!(a.exported_names(), b.exported_names(), "{name}");
        assert_eq!(a.undefined_names(), b.undefined_names(), "{name}");
        // identical code size (the printer loses no structure the
        // optimizer cares about)
        assert_eq!(a.text_size(), b.text_size(), "{name}");
    }
}

#[test]
fn printed_code_executes_identically() {
    use cobj::{link, LinkInput, LinkOptions};
    use machine::Machine;

    let src = include_str!("../../oskit/corpus/str.c");
    let ast = frontend("str.c", src);
    let printed = printer::print_tu(&ast);
    let run = |text: &str, f: &str, args: &[i64]| -> i64 {
        let obj = cmini::compile_simple("str.c", text).unwrap();
        let img = link(
            &[LinkInput::Object(obj)],
            &LinkOptions {
                entry: None,
                runtime_symbols: machine::runtime_symbols().collect(),
                ..Default::default()
            },
        )
        .unwrap();
        let mut m = Machine::new(img).unwrap();
        let buf = m.host_alloc(64).unwrap();
        m.write_mem(buf, b"component\0").unwrap();
        let buf2 = m.host_alloc(64).unwrap();
        m.write_mem(buf2, b"composer\0").unwrap();
        match f {
            "strlen" => m.call("strlen", &[buf as i64]).unwrap(),
            "strcmp" => m.call("strcmp", &[buf as i64, buf2 as i64]).unwrap(),
            "strncmp" => m.call("strncmp", &[buf as i64, buf2 as i64, args[0]]).unwrap(),
            _ => unreachable!(),
        }
    };
    for (f, args) in [("strlen", vec![]), ("strcmp", vec![]), ("strncmp", vec![4i64])] {
        assert_eq!(run(src, f, &args), run(&printed, f, &args), "{f}");
    }
}
