//! End-to-end execution tests: compile mini-C, link, run on the machine,
//! and check observable results. These are the deepest correctness tests of
//! the compiler — every language feature is exercised through real
//! execution at both -O0 and -O2, and the two must agree (optimization
//! soundness).

use cmini::{compile, CompileOptions, NoFiles, OptLevel};
use cobj::{link, LinkInput, LinkOptions};
use machine::Machine;

/// Compile, link against the runtime, and build a machine.
fn boot(src: &str, opt: OptLevel) -> Machine {
    let opts = CompileOptions { opt, ..Default::default() };
    let obj = compile("test.c", src, &opts, &NoFiles).unwrap_or_else(|e| panic!("compile: {e}"));
    let img = link(
        &[LinkInput::Object(obj)],
        &LinkOptions {
            entry: None,
            runtime_symbols: machine::runtime_symbols().collect(),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("link: {e}"));
    Machine::new(img).unwrap()
}

/// Run `name(args)` at both optimization levels; results must agree.
fn run(src: &str, name: &str, args: &[i64]) -> i64 {
    let mut m0 = boot(src, OptLevel::O0);
    let r0 = m0.call(name, args).unwrap_or_else(|e| panic!("O0 fault: {e}"));
    let mut m2 = boot(src, OptLevel::O2);
    let r2 = m2.call(name, args).unwrap_or_else(|e| panic!("O2 fault: {e}"));
    assert_eq!(r0, r2, "O0 and O2 disagree for `{name}`");
    r0
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run("int f() { return 2 + 3 * 4 - 10 / 2; }", "f", &[]), 9);
    assert_eq!(run("int f(int x) { return -x + ~x + !x; }", "f", &[5]), -11);
    // C precedence: ^ binds tighter than |, so (7&3) | ((1<<4)^2) = 3|18.
    assert_eq!(run("int f() { return (7 & 3) | (1 << 4) ^ 2; }", "f", &[]), 19);
}

#[test]
fn comparisons_and_logic() {
    let src = "int f(int a, int b) { return (a < b) + 10 * (a == b) + 100 * (a && b) + 1000 * (a || b); }";
    assert_eq!(run(src, "f", &[1, 2]), 1 + 100 + 1000);
    assert_eq!(run(src, "f", &[3, 3]), 10 + 100 + 1000);
    assert_eq!(run(src, "f", &[0, 0]), 10); // 0 == 0 is true
}

#[test]
fn short_circuit_skips_side_effects() {
    let src = r#"
        int hits = 0;
        int bump() { hits = hits + 1; return 1; }
        int f() { int a = 0 && bump(); int b = 1 || bump(); return hits * 10 + a + b; }
    "#;
    assert_eq!(run(src, "f", &[]), 1);
}

#[test]
fn loops() {
    assert_eq!(
        run(
            "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }",
            "f",
            &[100]
        ),
        5050
    );
    assert_eq!(
        run("int f(int n) { int s = 0; while (n) { s += n; n--; } return s; }", "f", &[10]),
        55
    );
    assert_eq!(run("int f() { int i = 0; do { i++; } while (i < 5); return i; }", "f", &[]), 5);
    assert_eq!(
        run(
            "int f() { int s = 0; for (int i = 0; i < 10; i++) { if (i == 3) continue; if (i == 7) break; s += i; } return s; }",
            "f",
            &[]
        ),
        1 + 2 + 4 + 5 + 6
    );
}

#[test]
fn recursion() {
    assert_eq!(
        run("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }", "fib", &[15]),
        610
    );
    assert_eq!(
        run("int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }", "fact", &[10]),
        3628800
    );
}

#[test]
fn pointers_and_arrays() {
    let src = r#"
        int sum(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }
        int f() {
            int buf[5];
            for (int i = 0; i < 5; i++) buf[i] = i * i;
            return sum(buf, 5);
        }
    "#;
    assert_eq!(run(src, "f", &[]), 1 + 4 + 9 + 16);
}

#[test]
fn pointer_arithmetic_scales() {
    let src = r#"
        int f() {
            int buf[4];
            int *p = buf;
            *p = 10; *(p + 1) = 20; p += 2; *p = 30; p++; *p = 40;
            return buf[0] + buf[1] + buf[2] + buf[3];
        }
    "#;
    assert_eq!(run(src, "f", &[]), 100);
}

#[test]
fn pointer_difference() {
    let src = "int f() { int a[10]; int *p = a + 7; int *q = a + 2; return p - q; }";
    assert_eq!(run(src, "f", &[]), 5);
}

#[test]
fn address_of_locals() {
    let src = r#"
        void set(int *p, int v) { *p = v; }
        int f() { int x = 1; set(&x, 42); return x; }
    "#;
    assert_eq!(run(src, "f", &[]), 42);
}

#[test]
fn structs_members_and_pointers() {
    let src = r#"
        struct point { int x; int y; };
        struct rect { struct point a; struct point b; };
        int area(struct rect *r) {
            return (r->b.x - r->a.x) * (r->b.y - r->a.y);
        }
        int f() {
            struct rect r;
            r.a.x = 1; r.a.y = 2; r.b.x = 5; r.b.y = 10;
            return area(&r);
        }
    "#;
    assert_eq!(run(src, "f", &[]), 32);
}

#[test]
fn char_width_and_strings() {
    let src = r#"
        int strlen_(char *s) { int n = 0; while (s[n]) n++; return n; }
        int f() {
            char buf[8];
            buf[0] = 'h'; buf[1] = 'i'; buf[2] = 0;
            return strlen_(buf) + strlen_("knit!");
        }
    "#;
    assert_eq!(run(src, "f", &[]), 7);
}

#[test]
fn char_truncation() {
    let src = "int f() { char c = 300; return c; }";
    assert_eq!(run(src, "f", &[]), 44);
}

#[test]
fn global_state() {
    let src = r#"
        int counter = 100;
        static int secret = 7;
        int bump(int d) { counter += d; return counter; }
        int f() { bump(1); bump(2); return counter + secret; }
    "#;
    assert_eq!(run(src, "f", &[]), 110);
}

#[test]
fn global_arrays_and_structs() {
    let src = r#"
        int squares[4] = { 0, 1, 4, 9 };
        struct cfg { int a; int b; };
        struct cfg conf = { 11, 22 };
        char tag[] = "ab";
        int f() { return squares[3] + conf.b + tag[1]; }
    "#;
    assert_eq!(run(src, "f", &[]), 9 + 22 + 'b' as i64);
}

#[test]
fn function_pointers_and_vtables() {
    let src = r#"
        int add(int a, int b) { return a + b; }
        int mul(int a, int b) { return a * b; }
        struct ops { int (*fn)(int, int); int bias; };
        struct ops table[2] = { { add, 1 }, { mul, 2 } };
        int apply(int which, int a, int b) {
            struct ops *o = &table[which];
            return o->fn(a, b) + o->bias;
        }
        int f() { return apply(0, 3, 4) * 100 + apply(1, 3, 4); }
    "#;
    assert_eq!(run(src, "f", &[]), 800 + 14);
}

#[test]
fn function_pointer_parameters() {
    let src = r#"
        int twice(int x) { return 2 * x; }
        int apply(int (*g)(int), int x) { return g(g(x)); }
        int f(int x) { return apply(twice, x); }
    "#;
    assert_eq!(run(src, "f", &[5]), 20);
}

#[test]
fn varargs_sum() {
    let src = r#"
        int sumn(int n, ...) {
            int s = 0;
            for (int i = 0; i < n; i++) s += __vararg(i);
            return s;
        }
        int f() { return sumn(4, 10, 20, 30, 40); }
    "#;
    assert_eq!(run(src, "f", &[]), 100);
}

#[test]
fn ternary_and_incdec() {
    let src = r#"
        int f(int x) {
            int a = x++;
            int b = ++x;
            int c = x--;
            int d = --x;
            return a * 1000 + b * 100 + c * 10 + d;
        }
    "#;
    // x=5: a=5 (x=6), b=7 (x=7), c=7 (x=6), d=5 (x=5)
    assert_eq!(run(src, "f", &[5]), 5 * 1000 + 7 * 100 + 7 * 10 + 5);
}

#[test]
fn compound_assignment() {
    let src = "int f(int x) { x += 3; x *= 2; x -= 1; x /= 3; x %= 4; x <<= 2; x >>= 1; x |= 8; x &= 12; x ^= 5; return x; }";
    let mut v: i64 = 9;
    v += 3;
    v *= 2;
    v -= 1;
    v /= 3;
    v %= 4;
    v <<= 2;
    v >>= 1;
    v |= 8;
    v &= 12;
    v ^= 5;
    assert_eq!(run(src, "f", &[9]), v);
}

#[test]
fn sizeof_values() {
    let src = r#"
        struct s { char c; int x; };
        int f() { return sizeof(int) + sizeof(char) * 10 + sizeof(struct s) * 100 + sizeof(int*) * 1000; }
    "#;
    assert_eq!(run(src, "f", &[]), 8 + 10 + 1600 + 8000);
}

#[test]
fn console_output_via_intrinsic() {
    let src = r#"
        int __con_putc(int c);
        void puts_(char *s) { while (*s) { __con_putc(*s); s++; } }
        int f() { puts_("hello"); return 0; }
    "#;
    let mut m = boot(src, OptLevel::O2);
    m.call("f", &[]).unwrap();
    assert_eq!(m.console.output, "hello");
}

#[test]
fn heap_via_brk() {
    let src = r#"
        int __brk(int n);
        int f() {
            int *p = (int*)__brk(8 * 10);
            for (int i = 0; i < 10; i++) p[i] = i;
            int s = 0;
            for (int i = 0; i < 10; i++) s += p[i];
            return s;
        }
    "#;
    assert_eq!(run(src, "f", &[]), 45);
}

#[test]
fn shadowing_in_nested_scopes() {
    let src = r#"
        int f(int x) {
            int y = 1;
            { int y = 2; x += y; }
            { int y = 3; x += y; }
            return x + y;
        }
    "#;
    assert_eq!(run(src, "f", &[0]), 6);
}

#[test]
fn preprocessor_macros_work_end_to_end() {
    let src = "#define SCALE 7\n#define BASE 100\nint f(int x) { return BASE + SCALE * x; }\n";
    assert_eq!(run(src, "f", &[3]), 121);
}

#[test]
fn division_semantics() {
    assert_eq!(run("int f(int a, int b) { return a / b; }", "f", &[-7, 2]), -3);
    assert_eq!(run("int f(int a, int b) { return a % b; }", "f", &[-7, 2]), -1);
}

#[test]
fn o2_output_matches_o0_on_inlined_chain() {
    // The exact chain shape the Clack router uses: each stage defined
    // before its caller, so O2 inlines everything.
    let src = r#"
        int stage3(int x) { return x + 3; }
        int stage2(int x) { int r = stage3(x * 2); return r; }
        int stage1(int x) { return stage2(x + 1); }
        int f(int x) { return stage1(x); }
    "#;
    assert_eq!(run(src, "f", &[10]), (10 + 1) * 2 + 3);
}

#[test]
fn o2_executes_fewer_cycles_on_call_heavy_code() {
    let src = r#"
        int one(int x) { return x + 1; }
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s = one(s);
            return s;
        }
    "#;
    let cycles = |opt| {
        let mut m = boot(src, opt);
        m.call("f", &[1000]).unwrap();
        m.counters().cycles
    };
    let c0 = cycles(OptLevel::O0);
    let c2 = cycles(OptLevel::O2);
    assert!(c2 < c0, "O2 ({c2}) should beat O0 ({c0})");
}
