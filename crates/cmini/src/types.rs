//! Type layout for mini-C.
//!
//! `int` and pointers are 8 bytes, `char` is 1; structs use natural
//! alignment with padding, like a 64-bit C ABI.

use std::collections::BTreeMap;

use crate::ast::{Item, TranslationUnit, Type};
use crate::error::CError;
use crate::token::Span;

/// Size and alignment of a type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Size in bytes.
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
}

/// A laid-out struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructInfo {
    /// Fields with their types and byte offsets.
    pub fields: Vec<(String, Type, u64)>,
    /// Overall layout.
    pub layout: Layout,
}

/// Struct layouts for one translation unit.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    structs: BTreeMap<String, StructInfo>,
    file: String,
}

impl TypeTable {
    /// Build the table from a translation unit's struct definitions,
    /// resolving in source order (so structs may reference earlier structs
    /// by value and any struct by pointer).
    pub fn build(tu: &TranslationUnit) -> Result<TypeTable, CError> {
        let mut table = TypeTable { structs: BTreeMap::new(), file: tu.file.clone() };
        for item in &tu.items {
            if let Item::Struct(s) = item {
                if s.fields.is_empty() {
                    // forward declaration; ignore (pointers don't need it)
                    continue;
                }
                if table.structs.contains_key(&s.name) {
                    return Err(CError::Type {
                        file: tu.file.clone(),
                        span: s.span,
                        msg: format!("duplicate definition of struct `{}`", s.name),
                    });
                }
                let mut fields = Vec::new();
                let mut offset = 0u64;
                let mut align = 1u64;
                for (fname, fty) in &s.fields {
                    let l = table.layout_at(fty, s.span)?;
                    offset = round_up(offset, l.align);
                    fields.push((fname.clone(), fty.clone(), offset));
                    offset += l.size;
                    align = align.max(l.align);
                }
                let size = round_up(offset.max(1), align);
                table
                    .structs
                    .insert(s.name.clone(), StructInfo { fields, layout: Layout { size, align } });
            }
        }
        Ok(table)
    }

    /// Layout of `ty`, or a type error at `span` for incomplete types.
    pub fn layout_at(&self, ty: &Type, span: Span) -> Result<Layout, CError> {
        let err = |msg: String| CError::Type { file: self.file.clone(), span, msg };
        Ok(match ty {
            Type::Int => Layout { size: 8, align: 8 },
            Type::Char => Layout { size: 1, align: 1 },
            Type::Ptr(_) => Layout { size: 8, align: 8 },
            Type::Void => return Err(err("cannot take the size of void".into())),
            Type::Func(_) => return Err(err("cannot take the size of a function".into())),
            Type::Array(elem, n) => {
                let l = self.layout_at(elem, span)?;
                Layout { size: l.size * n, align: l.align }
            }
            Type::Struct(name) => {
                self.structs
                    .get(name)
                    .ok_or_else(|| err(format!("struct `{name}` has no definition here")))?
                    .layout
            }
        })
    }

    /// Look up a struct's info.
    pub fn struct_info(&self, name: &str) -> Option<&StructInfo> {
        self.structs.get(name)
    }

    /// Field type and offset within a struct.
    pub fn field(&self, sname: &str, fname: &str) -> Option<(&Type, u64)> {
        self.structs.get(sname)?.fields.iter().find(|(n, _, _)| n == fname).map(|(_, t, o)| (t, *o))
    }

    /// The memory access width for loads/stores of a scalar type.
    pub fn width_of(ty: &Type) -> cobj::Width {
        match ty {
            Type::Char => cobj::Width::W1,
            _ => cobj::Width::W8,
        }
    }
}

/// Round `v` up to a multiple of `align`.
pub fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn table(src: &str) -> TypeTable {
        TypeTable::build(&parse("t.c", src).unwrap()).unwrap()
    }

    #[test]
    fn scalar_layouts() {
        let t = TypeTable::default();
        let s = Span::default();
        assert_eq!(t.layout_at(&Type::Int, s).unwrap(), Layout { size: 8, align: 8 });
        assert_eq!(t.layout_at(&Type::Char, s).unwrap(), Layout { size: 1, align: 1 });
        assert_eq!(t.layout_at(&Type::Int.ptr(), s).unwrap(), Layout { size: 8, align: 8 });
        assert!(t.layout_at(&Type::Void, s).is_err());
    }

    #[test]
    fn struct_padding_and_offsets() {
        let t = table("struct s { char c; int x; char d; };");
        let info = t.struct_info("s").unwrap();
        assert_eq!(info.fields[0].2, 0);
        assert_eq!(info.fields[1].2, 8); // padded
        assert_eq!(info.fields[2].2, 16);
        assert_eq!(info.layout, Layout { size: 24, align: 8 });
    }

    #[test]
    fn packed_chars() {
        let t = table("struct b { char a; char b; char c; };");
        assert_eq!(t.struct_info("b").unwrap().layout, Layout { size: 3, align: 1 });
    }

    #[test]
    fn nested_structs_by_value() {
        let t = table("struct in { int x; }; struct out { char c; struct in i; };");
        let (_, off) = t.field("out", "i").unwrap();
        assert_eq!(off, 8);
        assert_eq!(t.struct_info("out").unwrap().layout.size, 16);
    }

    #[test]
    fn arrays_in_structs() {
        let t = table("struct p { char data[6]; int len; };");
        assert_eq!(t.field("p", "len").unwrap().1, 8);
        assert_eq!(t.struct_info("p").unwrap().layout.size, 16);
    }

    #[test]
    fn self_reference_by_pointer_ok() {
        let t = table("struct node { int v; struct node *next; };");
        assert_eq!(t.struct_info("node").unwrap().layout.size, 16);
    }

    #[test]
    fn undefined_struct_by_value_is_error() {
        let tu = parse("t.c", "struct a { struct missing m; };").unwrap();
        assert!(TypeTable::build(&tu).is_err());
    }

    #[test]
    fn duplicate_struct_is_error() {
        let tu = parse("t.c", "struct a { int x; }; struct a { int y; };").unwrap();
        assert!(TypeTable::build(&tu).is_err());
    }
}
