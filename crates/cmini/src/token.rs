//! Lexer for mini-C.
//!
//! Operates on preprocessed source (see [`crate::pp`]). Tokens carry line
//! and column for diagnostics.

use crate::error::CError;

/// Source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds for mini-C.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // literals and names
    Ident(String),
    Int(i64),
    Str(Vec<u8>),
    Char(u8),
    // keywords
    KwInt,
    KwChar,
    KwVoid,
    KwStruct,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    KwStatic,
    KwExtern,
    KwSizeof,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Ellipsis,
    Question,
    Colon,
    // operators
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    EqEq,
    NotEq,
    Lt,
    Gt,
    Le,
    Ge,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Char(c) => write!(f, "character literal '{}'", *c as char),
            Tok::Eof => write!(f, "end of input"),
            other => {
                let s = match other {
                    Tok::KwInt => "int",
                    Tok::KwChar => "char",
                    Tok::KwVoid => "void",
                    Tok::KwStruct => "struct",
                    Tok::KwIf => "if",
                    Tok::KwElse => "else",
                    Tok::KwWhile => "while",
                    Tok::KwFor => "for",
                    Tok::KwDo => "do",
                    Tok::KwReturn => "return",
                    Tok::KwBreak => "break",
                    Tok::KwContinue => "continue",
                    Tok::KwStatic => "static",
                    Tok::KwExtern => "extern",
                    Tok::KwSizeof => "sizeof",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Semi => ";",
                    Tok::Comma => ",",
                    Tok::Dot => ".",
                    Tok::Arrow => "->",
                    Tok::Ellipsis => "...",
                    Tok::Question => "?",
                    Tok::Colon => ":",
                    Tok::Assign => "=",
                    Tok::PlusAssign => "+=",
                    Tok::MinusAssign => "-=",
                    Tok::StarAssign => "*=",
                    Tok::SlashAssign => "/=",
                    Tok::PercentAssign => "%=",
                    Tok::AmpAssign => "&=",
                    Tok::PipeAssign => "|=",
                    Tok::CaretAssign => "^=",
                    Tok::ShlAssign => "<<=",
                    Tok::ShrAssign => ">>=",
                    Tok::PlusPlus => "++",
                    Tok::MinusMinus => "--",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Amp => "&",
                    Tok::Pipe => "|",
                    Tok::Caret => "^",
                    Tok::Tilde => "~",
                    Tok::Bang => "!",
                    Tok::AmpAmp => "&&",
                    Tok::PipePipe => "||",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    Tok::EqEq => "==",
                    Tok::NotEq => "!=",
                    Tok::Lt => "<",
                    Tok::Gt => ">",
                    Tok::Le => "<=",
                    Tok::Ge => ">=",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Where it begins.
    pub span: Span,
}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "int" => Tok::KwInt,
        "char" => Tok::KwChar,
        "void" => Tok::KwVoid,
        "struct" => Tok::KwStruct,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "for" => Tok::KwFor,
        "do" => Tok::KwDo,
        "return" => Tok::KwReturn,
        "break" => Tok::KwBreak,
        "continue" => Tok::KwContinue,
        "static" => Tok::KwStatic,
        "extern" => Tok::KwExtern,
        "sizeof" => Tok::KwSizeof,
        _ => return None,
    })
}

/// Lex a full mini-C source string.
pub fn lex(file: &str, src: &str) -> Result<Vec<Token>, CError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if i < b.len() {
                if b[i] == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
        }};
    }

    let err = |line: u32, col: u32, msg: String| CError::Lex {
        file: file.to_string(),
        span: Span { line, col },
        msg,
    };

    while i < b.len() {
        let c = b[i];
        let span = Span { line, col };
        // whitespace
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // comments
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                bump!();
            }
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            bump!();
            bump!();
            let (sl, sc) = (span.line, span.col);
            loop {
                if i + 1 >= b.len() {
                    return Err(err(sl, sc, "unterminated block comment".into()));
                }
                if b[i] == b'*' && b[i + 1] == b'/' {
                    bump!();
                    bump!();
                    break;
                }
                bump!();
            }
            continue;
        }
        // identifiers / keywords
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                bump!();
            }
            let s = &src[start..i];
            let tok = keyword(s).unwrap_or_else(|| Tok::Ident(s.to_string()));
            out.push(Token { tok, span });
            continue;
        }
        // numbers (decimal and hex)
        if c.is_ascii_digit() {
            let start = i;
            let mut radix = 10;
            if c == b'0' && i + 1 < b.len() && (b[i + 1] == b'x' || b[i + 1] == b'X') {
                radix = 16;
                bump!();
                bump!();
            }
            while i < b.len() && (b[i].is_ascii_alphanumeric()) {
                bump!();
            }
            let text = &src[start..i];
            let digits = if radix == 16 { &text[2..] } else { text };
            let v = i64::from_str_radix(digits, radix)
                .map_err(|_| err(span.line, span.col, format!("bad integer literal `{text}`")))?;
            out.push(Token { tok: Tok::Int(v), span });
            continue;
        }
        // char literal
        if c == b'\'' {
            bump!();
            if i >= b.len() {
                return Err(err(span.line, span.col, "unterminated character literal".into()));
            }
            let ch = if b[i] == b'\\' {
                bump!();
                if i >= b.len() {
                    return Err(err(span.line, span.col, "unterminated escape".into()));
                }
                let e = unescape(b[i]).ok_or_else(|| {
                    err(span.line, span.col, format!("bad escape `\\{}`", b[i] as char))
                })?;
                bump!();
                e
            } else {
                let e = b[i];
                bump!();
                e
            };
            if i >= b.len() || b[i] != b'\'' {
                return Err(err(span.line, span.col, "unterminated character literal".into()));
            }
            bump!();
            out.push(Token { tok: Tok::Char(ch), span });
            continue;
        }
        // string literal
        if c == b'"' {
            bump!();
            let mut bytes = Vec::new();
            loop {
                if i >= b.len() {
                    return Err(err(span.line, span.col, "unterminated string literal".into()));
                }
                match b[i] {
                    b'"' => {
                        bump!();
                        break;
                    }
                    b'\\' => {
                        bump!();
                        if i >= b.len() {
                            return Err(err(span.line, span.col, "unterminated escape".into()));
                        }
                        let e = unescape(b[i]).ok_or_else(|| {
                            err(span.line, span.col, format!("bad escape `\\{}`", b[i] as char))
                        })?;
                        bytes.push(e);
                        bump!();
                    }
                    other => {
                        bytes.push(other);
                        bump!();
                    }
                }
            }
            out.push(Token { tok: Tok::Str(bytes), span });
            continue;
        }
        // operators & punctuation (longest match first)
        let rest = &b[i..];
        let two = |a: u8, b2: u8| rest.len() >= 2 && rest[0] == a && rest[1] == b2;
        let three = |a: u8, b2: u8, c2: u8| {
            rest.len() >= 3 && rest[0] == a && rest[1] == b2 && rest[2] == c2
        };
        let (tok, n) = if three(b'.', b'.', b'.') {
            (Tok::Ellipsis, 3)
        } else if three(b'<', b'<', b'=') {
            (Tok::ShlAssign, 3)
        } else if three(b'>', b'>', b'=') {
            (Tok::ShrAssign, 3)
        } else if two(b'-', b'>') {
            (Tok::Arrow, 2)
        } else if two(b'+', b'+') {
            (Tok::PlusPlus, 2)
        } else if two(b'-', b'-') {
            (Tok::MinusMinus, 2)
        } else if two(b'+', b'=') {
            (Tok::PlusAssign, 2)
        } else if two(b'-', b'=') {
            (Tok::MinusAssign, 2)
        } else if two(b'*', b'=') {
            (Tok::StarAssign, 2)
        } else if two(b'/', b'=') {
            (Tok::SlashAssign, 2)
        } else if two(b'%', b'=') {
            (Tok::PercentAssign, 2)
        } else if two(b'&', b'=') {
            (Tok::AmpAssign, 2)
        } else if two(b'|', b'=') {
            (Tok::PipeAssign, 2)
        } else if two(b'^', b'=') {
            (Tok::CaretAssign, 2)
        } else if two(b'&', b'&') {
            (Tok::AmpAmp, 2)
        } else if two(b'|', b'|') {
            (Tok::PipePipe, 2)
        } else if two(b'<', b'<') {
            (Tok::Shl, 2)
        } else if two(b'>', b'>') {
            (Tok::Shr, 2)
        } else if two(b'=', b'=') {
            (Tok::EqEq, 2)
        } else if two(b'!', b'=') {
            (Tok::NotEq, 2)
        } else if two(b'<', b'=') {
            (Tok::Le, 2)
        } else if two(b'>', b'=') {
            (Tok::Ge, 2)
        } else {
            let t = match c {
                b'(' => Tok::LParen,
                b')' => Tok::RParen,
                b'{' => Tok::LBrace,
                b'}' => Tok::RBrace,
                b'[' => Tok::LBracket,
                b']' => Tok::RBracket,
                b';' => Tok::Semi,
                b',' => Tok::Comma,
                b'.' => Tok::Dot,
                b'?' => Tok::Question,
                b':' => Tok::Colon,
                b'=' => Tok::Assign,
                b'+' => Tok::Plus,
                b'-' => Tok::Minus,
                b'*' => Tok::Star,
                b'/' => Tok::Slash,
                b'%' => Tok::Percent,
                b'&' => Tok::Amp,
                b'|' => Tok::Pipe,
                b'^' => Tok::Caret,
                b'~' => Tok::Tilde,
                b'!' => Tok::Bang,
                b'<' => Tok::Lt,
                b'>' => Tok::Gt,
                _ => {
                    return Err(err(
                        span.line,
                        span.col,
                        format!("unexpected character `{}`", c as char),
                    ))
                }
            };
            (t, 1)
        };
        for _ in 0..n {
            bump!();
        }
        out.push(Token { tok, span });
    }
    out.push(Token { tok: Tok::Eof, span: Span { line, col } });
    Ok(out)
}

fn unescape(c: u8) -> Option<u8> {
    Some(match c {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex("t.c", src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_simple_function() {
        let t = toks("int f(int x) { return x + 1; }");
        assert_eq!(
            t,
            vec![
                Tok::KwInt,
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::LBrace,
                Tok::KwReturn,
                Tok::Ident("x".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lex_operators_longest_match() {
        assert_eq!(
            toks("a <<= b >> c <= d < e"),
            vec![
                Tok::Ident("a".into()),
                Tok::ShlAssign,
                Tok::Ident("b".into()),
                Tok::Shr,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Lt,
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
        assert_eq!(toks("p->x")[1], Tok::Arrow);
        assert_eq!(toks("...")[0], Tok::Ellipsis);
    }

    #[test]
    fn lex_literals() {
        assert_eq!(toks("0x2A")[0], Tok::Int(42));
        assert_eq!(toks("'a'")[0], Tok::Char(b'a'));
        assert_eq!(toks(r"'\n'")[0], Tok::Char(b'\n'));
        assert_eq!(toks(r#""hi\n""#)[0], Tok::Str(b"hi\n".to_vec()));
    }

    #[test]
    fn lex_comments_skipped() {
        let t = toks("a // line\n/* block\nstill */ b");
        assert_eq!(t, vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]);
    }

    #[test]
    fn spans_track_lines() {
        let tokens = lex("t.c", "a\n  b").unwrap();
        assert_eq!(tokens[0].span, Span { line: 1, col: 1 });
        assert_eq!(tokens[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn lex_errors() {
        assert!(lex("t.c", "\"unterminated").is_err());
        assert!(lex("t.c", "'x").is_err());
        assert!(lex("t.c", "/* unterminated").is_err());
        assert!(lex("t.c", "@").is_err());
        assert!(lex("t.c", "0xZZ").is_err());
    }
}
