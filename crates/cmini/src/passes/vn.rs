//! Local value numbering and dead-instruction elimination on generated IR.
//!
//! This is the "conventional optimizing compiler" back half of the paper's
//! flattening story: after inlining turns call nests into straight-line
//! code, local value numbering removes the redundant address computations
//! and re-loads that inlining exposes ("eliminates redundant reads via
//! common subexpression elimination", §6), and dead-code elimination sweeps
//! the leftovers.
//!
//! The pass is *local*: value numbers live within one basic block. Stores
//! and calls conservatively kill all memorized loads (with store-to-load
//! forwarding for the stored address itself).

use std::collections::HashMap;

use cobj::ir::{BinOp, Instr, SymId, UnOp, Width};
use cobj::object::{FuncDef, ObjectFile};

/// Optimize every function in an object.
pub fn optimize_obj(obj: &mut ObjectFile) {
    for f in &mut obj.funcs {
        optimize_func(f);
    }
}

/// Run VN + DCE (two rounds) on one function.
pub fn optimize_func(f: &mut FuncDef) {
    for _ in 0..2 {
        let a = value_number(f);
        let b = dead_code(f);
        if !a && !b {
            break;
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(i64),
    Bin(BinOp, u32, u32),
    Un(UnOp, u32),
    Load(u32, i64, Width),
    FrameAddr(i64),
    Addr(SymId, i64),
    VarArg(u32),
}

fn commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne
    )
}

/// Block leader set: instruction indices that start a basic block.
fn leaders(body: &[Instr]) -> Vec<bool> {
    let mut l = vec![false; body.len() + 1];
    if !body.is_empty() {
        l[0] = true;
    }
    for (i, ins) in body.iter().enumerate() {
        match ins {
            Instr::Jump { target } => {
                l[*target] = true;
                if i + 1 < l.len() {
                    l[i + 1] = true;
                }
            }
            Instr::Branch { then_to, else_to, .. } => {
                l[*then_to] = true;
                l[*else_to] = true;
                if i + 1 < l.len() {
                    l[i + 1] = true;
                }
            }
            Instr::Ret { .. } if i + 1 < l.len() => {
                l[i + 1] = true;
            }
            _ => {}
        }
    }
    l.truncate(body.len());
    l
}

#[derive(Clone)]
struct VnState {
    next_vn: u32,
    reg_vn: HashMap<u32, u32>,
    expr_vn: HashMap<Key, (u32, u32)>, // key -> (vn, holder reg)
    const_of: HashMap<u32, i64>,       // vn -> known constant
}

impl VnState {
    fn new() -> Self {
        VnState {
            next_vn: 0,
            reg_vn: HashMap::new(),
            expr_vn: HashMap::new(),
            const_of: HashMap::new(),
        }
    }

    fn fresh(&mut self) -> u32 {
        self.next_vn += 1;
        self.next_vn
    }

    fn vn_of(&mut self, reg: u32) -> u32 {
        if let Some(v) = self.reg_vn.get(&reg) {
            return *v;
        }
        let v = self.fresh();
        self.reg_vn.insert(reg, v);
        v
    }

    /// Remove memorized expressions held in `reg` (it is being redefined).
    fn invalidate_holder(&mut self, reg: u32) {
        self.expr_vn.retain(|_, (_, holder)| *holder != reg);
    }

    fn kill_loads(&mut self) {
        self.expr_vn.retain(|k, _| !matches!(k, Key::Load(..)));
    }
}

/// Returns true if anything changed.
///
/// Scope is *extended basic blocks*: a block with exactly one incoming
/// edge inherits the value table from that edge, so the long
/// single-predecessor else-chains produced by inlining keep their known
/// loads — the global-CSE effect the paper relies on ("eliminates
/// redundant reads via common subexpression elimination").
fn value_number(f: &mut FuncDef) -> bool {
    let lead = leaders(&f.body);
    // block id per instruction (= index of its leader)
    let mut block_of = vec![0usize; f.body.len()];
    let mut cur_block = 0usize;
    for i in 0..f.body.len() {
        if lead[i] {
            cur_block = i;
        }
        block_of[i] = cur_block;
    }
    // count incoming edges per block leader
    let mut in_edges: HashMap<usize, usize> = HashMap::new();
    for (i, ins) in f.body.iter().enumerate() {
        match ins {
            Instr::Jump { target } => {
                *in_edges.entry(*target).or_default() += 1;
            }
            Instr::Branch { then_to, else_to, .. } => {
                *in_edges.entry(*then_to).or_default() += 1;
                *in_edges.entry(*else_to).or_default() += 1;
            }
            Instr::Ret { .. } => {}
            _ => {
                // fall-through into a leader
                if i + 1 < f.body.len() && lead[i + 1] {
                    *in_edges.entry(i + 1).or_default() += 1;
                }
            }
        }
    }
    // state captured at each edge into a single-pred block (keyed by the
    // target leader); only useful when the edge source was already
    // processed (forward edges).
    let mut edge_state: HashMap<usize, VnState> = HashMap::new();
    let capture = |target: usize,
                   st: &VnState,
                   edge_state: &mut HashMap<usize, VnState>,
                   in_edges: &HashMap<usize, usize>| {
        if in_edges.get(&target).copied().unwrap_or(0) == 1 {
            edge_state.insert(target, st.clone());
        }
    };

    let mut st = VnState::new();
    let mut changed = false;

    for i in 0..f.body.len() {
        if lead[i] && i > 0 {
            st = edge_state.remove(&i).unwrap_or_else(VnState::new);
        }
        // Decompose to avoid borrowing issues.
        let ins = f.body[i].clone();
        match ins {
            Instr::Const { dst, value } => {
                let key = Key::Const(value);
                changed |= define(&mut st, &mut f.body[i], dst, key, Some(value));
            }
            Instr::Mov { dst, src } => {
                if dst == src {
                    f.body[i] = Instr::Nop;
                    changed = true;
                } else {
                    let v = st.vn_of(src);
                    st.invalidate_holder(dst);
                    st.reg_vn.insert(dst, v);
                }
            }
            Instr::Bin { op, dst, a, b } => {
                let (mut va, mut vb) = (st.vn_of(a), st.vn_of(b));
                // constant fold at IR level
                if let (Some(ca), Some(cb)) =
                    (st.const_of.get(&va).copied(), st.const_of.get(&vb).copied())
                {
                    if let Some(v) = op.eval(ca, cb) {
                        f.body[i] = Instr::Const { dst, value: v };
                        let key = Key::Const(v);
                        changed = true;
                        define(&mut st, &mut f.body[i], dst, key, Some(v));
                        continue;
                    }
                }
                if commutative(op) && va > vb {
                    std::mem::swap(&mut va, &mut vb);
                }
                let key = Key::Bin(op, va, vb);
                changed |= define(&mut st, &mut f.body[i], dst, key, None);
            }
            Instr::Un { op, dst, a } => {
                let va = st.vn_of(a);
                if let Some(ca) = st.const_of.get(&va).copied() {
                    let v = op.eval(ca);
                    f.body[i] = Instr::Const { dst, value: v };
                    let key = Key::Const(v);
                    changed = true;
                    define(&mut st, &mut f.body[i], dst, key, Some(v));
                    continue;
                }
                let key = Key::Un(op, va);
                changed |= define(&mut st, &mut f.body[i], dst, key, None);
            }
            Instr::Load { dst, addr, offset, width } => {
                let va = st.vn_of(addr);
                let key = Key::Load(va, offset, width);
                changed |= define(&mut st, &mut f.body[i], dst, key, None);
            }
            Instr::Store { addr, offset, src, width } => {
                let va = st.vn_of(addr);
                let vs = st.vn_of(src);
                st.kill_loads();
                // store-to-load forwarding
                st.expr_vn.insert(Key::Load(va, offset, width), (vs, src));
            }
            Instr::Addr { dst, sym, offset } => {
                let key = Key::Addr(sym, offset);
                changed |= define(&mut st, &mut f.body[i], dst, key, None);
            }
            Instr::FrameAddr { dst, offset } => {
                let key = Key::FrameAddr(offset);
                changed |= define(&mut st, &mut f.body[i], dst, key, None);
            }
            Instr::VarArg { dst, idx } => {
                let vi = st.vn_of(idx);
                let key = Key::VarArg(vi);
                changed |= define(&mut st, &mut f.body[i], dst, key, None);
            }
            Instr::Call { dst, .. } | Instr::CallInd { dst, .. } => {
                st.kill_loads();
                if let Some(d) = dst {
                    st.invalidate_holder(d);
                    let v = st.fresh();
                    st.reg_vn.insert(d, v);
                }
            }
            Instr::Branch { cond, then_to, else_to } => {
                let vc = st.vn_of(cond);
                if let Some(c) = st.const_of.get(&vc).copied() {
                    let target = if c != 0 { then_to } else { else_to };
                    f.body[i] = Instr::Jump { target };
                    changed = true;
                    capture(target, &st, &mut edge_state, &in_edges);
                } else {
                    capture(then_to, &st, &mut edge_state, &in_edges);
                    capture(else_to, &st, &mut edge_state, &in_edges);
                }
            }
            Instr::Jump { target } => {
                capture(target, &st, &mut edge_state, &in_edges);
            }
            Instr::Ret { .. } | Instr::Nop => {}
        }
        // fall-through edge into a following leader
        if i + 1 < f.body.len()
            && lead[i + 1]
            && !matches!(f.body[i], Instr::Jump { .. } | Instr::Branch { .. } | Instr::Ret { .. })
        {
            capture(i + 1, &st, &mut edge_state, &in_edges);
        }
    }
    let _ = block_of;
    changed
}

/// Handle a pure computation of `key` into `dst`. Replaces the instruction
/// with a Mov when the value is already available. Returns true on change.
fn define(st: &mut VnState, ins: &mut Instr, dst: u32, key: Key, const_val: Option<i64>) -> bool {
    if let Some((vn, holder)) = st.expr_vn.get(&key).copied() {
        // available — reuse holder (it is valid: invalidate_holder removes
        // stale entries whenever a register is redefined)
        st.invalidate_holder(dst);
        st.reg_vn.insert(dst, vn);
        if holder == dst {
            *ins = Instr::Nop;
        } else {
            *ins = Instr::Mov { dst, src: holder };
        }
        return true;
    }
    st.invalidate_holder(dst);
    let vn = st.fresh();
    st.reg_vn.insert(dst, vn);
    st.expr_vn.insert(key, (vn, dst));
    if let Some(v) = const_val {
        st.const_of.insert(vn, v);
    }
    false
}

/// Backward liveness + removal of pure instructions with dead results.
/// Returns true if anything was removed.
fn dead_code(f: &mut FuncDef) -> bool {
    let n = f.body.len();
    if n == 0 {
        return false;
    }
    let nregs = f.nregs as usize;
    // live[i] = registers live *after* instruction i
    let mut live: Vec<Vec<bool>> = vec![vec![false; nregs]; n + 1];
    let succs = |i: usize| -> Vec<usize> {
        match &f.body[i] {
            Instr::Jump { target } => vec![*target],
            Instr::Branch { then_to, else_to, .. } => vec![*then_to, *else_to],
            Instr::Ret { .. } => vec![],
            _ => {
                if i + 1 < n {
                    vec![i + 1]
                } else {
                    vec![]
                }
            }
        }
    };

    // iterate to fixpoint
    let mut changed_liveness = true;
    while changed_liveness {
        changed_liveness = false;
        for i in (0..n).rev() {
            // out = union of live-in of successors
            let mut out = vec![false; nregs];
            for s in succs(i) {
                // live-in of s = (out[s] - defs[s]) + uses[s]
                let lin = live_in(&f.body[s], &live[s], nregs);
                for (o, v) in out.iter_mut().zip(lin.iter()) {
                    *o |= *v;
                }
            }
            if out != live[i] {
                live[i] = out;
                changed_liveness = true;
            }
        }
    }

    let mut removed = false;
    for (ins, live_after) in f.body.iter_mut().zip(&live) {
        let pure_dst = match &*ins {
            Instr::Const { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Addr { dst, .. }
            | Instr::FrameAddr { dst, .. }
            | Instr::VarArg { dst, .. }
            | Instr::Load { dst, .. } => Some(*dst),
            Instr::Bin { op, dst, .. } if !matches!(op, BinOp::Div | BinOp::Rem) => Some(*dst),
            _ => None,
        };
        if let Some(d) = pure_dst {
            if (d as usize) < nregs && !live_after[d as usize] {
                *ins = Instr::Nop;
                removed = true;
            }
        }
    }
    if removed {
        compact(f);
    }
    removed
}

fn live_in(ins: &Instr, live_out: &[bool], nregs: usize) -> Vec<bool> {
    let mut l = live_out.to_vec();
    // remove defs
    match ins {
        Instr::Const { dst, .. }
        | Instr::Mov { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::Un { dst, .. }
        | Instr::Load { dst, .. }
        | Instr::Addr { dst, .. }
        | Instr::FrameAddr { dst, .. }
        | Instr::VarArg { dst, .. }
            if (*dst as usize) < nregs =>
        {
            l[*dst as usize] = false;
        }
        Instr::Call { dst: Some(d), .. } | Instr::CallInd { dst: Some(d), .. }
            if (*d as usize) < nregs =>
        {
            l[*d as usize] = false;
        }
        _ => {}
    }
    // add uses
    let mut use_reg = |r: u32| {
        if (r as usize) < nregs {
            l[r as usize] = true;
        }
    };
    match ins {
        Instr::Mov { src, .. } => use_reg(*src),
        Instr::Bin { a, b, .. } => {
            use_reg(*a);
            use_reg(*b);
        }
        Instr::Un { a, .. } => use_reg(*a),
        Instr::Load { addr, .. } => use_reg(*addr),
        Instr::Store { addr, src, .. } => {
            use_reg(*addr);
            use_reg(*src);
        }
        Instr::VarArg { idx, .. } => use_reg(*idx),
        Instr::Call { args, .. } => {
            for a in args {
                use_reg(*a);
            }
        }
        Instr::CallInd { target, args, .. } => {
            use_reg(*target);
            for a in args {
                use_reg(*a);
            }
        }
        Instr::Branch { cond, .. } => use_reg(*cond),
        Instr::Ret { value: Some(v) } => use_reg(*v),
        _ => {}
    }
    l
}

/// Remove `Nop`s, remapping jump targets.
fn compact(f: &mut FuncDef) {
    let n = f.body.len();
    let mut new_index = vec![0usize; n + 1];
    let mut kept = 0usize;
    for (i, ins) in f.body.iter().enumerate() {
        new_index[i] = kept;
        if !matches!(ins, Instr::Nop) {
            kept += 1;
        }
    }
    new_index[n] = kept;
    let old = std::mem::take(&mut f.body);
    for mut ins in old {
        if matches!(ins, Instr::Nop) {
            continue;
        }
        match &mut ins {
            Instr::Jump { target } => *target = new_index[*target],
            Instr::Branch { then_to, else_to, .. } => {
                *then_to = new_index[*then_to];
                *else_to = new_index[*else_to];
            }
            _ => {}
        }
        f.body.push(ins);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobj::object::Symbol;

    fn func(body: Vec<Instr>, params: u32, nregs: u32) -> FuncDef {
        FuncDef { sym: SymId(0), params, nregs, frame_size: 0, body }
    }

    fn wrap(f: FuncDef) -> ObjectFile {
        let mut o = ObjectFile::new("t.o");
        o.add_symbol(Symbol::func("f"));
        o.funcs.push(f);
        o
    }

    #[test]
    fn duplicate_constants_merge() {
        let mut f = func(
            vec![
                Instr::Const { dst: 1, value: 7 },
                Instr::Const { dst: 2, value: 7 },
                Instr::Bin { op: BinOp::Add, dst: 3, a: 1, b: 2 },
                Instr::Ret { value: Some(3) },
            ],
            0,
            4,
        );
        optimize_func(&mut f);
        // second const becomes a Mov (then DCE may restructure); at minimum
        // there is only one Const{7} left or the add folded entirely.
        let consts = f.body.iter().filter(|i| matches!(i, Instr::Const { value: 7, .. })).count();
        assert!(consts <= 1, "body: {:?}", f.body);
        assert!(wrap(f).validate().is_ok());
    }

    #[test]
    fn ir_constant_folding() {
        let mut f = func(
            vec![
                Instr::Const { dst: 1, value: 6 },
                Instr::Const { dst: 2, value: 7 },
                Instr::Bin { op: BinOp::Mul, dst: 3, a: 1, b: 2 },
                Instr::Ret { value: Some(3) },
            ],
            0,
            4,
        );
        optimize_func(&mut f);
        assert!(
            f.body.iter().any(|i| matches!(i, Instr::Const { value: 42, .. })),
            "body: {:?}",
            f.body
        );
    }

    #[test]
    fn redundant_load_eliminated() {
        // r1 = load [r0]; r2 = load [r0]  →  second becomes mov
        let mut f = func(
            vec![
                Instr::Load { dst: 1, addr: 0, offset: 0, width: Width::W8 },
                Instr::Load { dst: 2, addr: 0, offset: 0, width: Width::W8 },
                Instr::Bin { op: BinOp::Add, dst: 3, a: 1, b: 2 },
                Instr::Ret { value: Some(3) },
            ],
            1,
            4,
        );
        optimize_func(&mut f);
        let loads = f.body.iter().filter(|i| matches!(i, Instr::Load { .. })).count();
        assert_eq!(loads, 1, "body: {:?}", f.body);
    }

    #[test]
    fn store_kills_loads_but_forwards() {
        // load; store to same addr; load again → forwarded from store value
        let mut f = func(
            vec![
                Instr::Const { dst: 1, value: 5 },
                Instr::Store { addr: 0, offset: 0, src: 1, width: Width::W8 },
                Instr::Load { dst: 2, addr: 0, offset: 0, width: Width::W8 },
                Instr::Ret { value: Some(2) },
            ],
            1,
            3,
        );
        optimize_func(&mut f);
        let loads = f.body.iter().filter(|i| matches!(i, Instr::Load { .. })).count();
        assert_eq!(loads, 0, "store-to-load forwarding failed: {:?}", f.body);
    }

    #[test]
    fn call_kills_loads() {
        let mut f = func(
            vec![
                Instr::Load { dst: 1, addr: 0, offset: 0, width: Width::W8 },
                Instr::Call { dst: Some(2), target: SymId(0), args: vec![] },
                Instr::Load { dst: 3, addr: 0, offset: 0, width: Width::W8 },
                Instr::Bin { op: BinOp::Add, dst: 4, a: 1, b: 3 },
                Instr::Bin { op: BinOp::Add, dst: 4, a: 4, b: 2 },
                Instr::Ret { value: Some(4) },
            ],
            1,
            5,
        );
        optimize_func(&mut f);
        let loads = f.body.iter().filter(|i| matches!(i, Instr::Load { .. })).count();
        assert_eq!(loads, 2, "call must invalidate memory: {:?}", f.body);
    }

    #[test]
    fn dead_instructions_removed_and_targets_fixed() {
        let mut f = func(
            vec![
                Instr::Const { dst: 1, value: 999 }, // dead
                Instr::Const { dst: 2, value: 1 },
                Instr::Branch { cond: 0, then_to: 3, else_to: 4 },
                Instr::Ret { value: Some(2) },
                Instr::Ret { value: None },
            ],
            1,
            3,
        );
        optimize_func(&mut f);
        // dead const gone, branch targets remapped and still valid
        assert!(!f.body.iter().any(|i| matches!(i, Instr::Const { value: 999, .. })));
        assert!(wrap(f).validate().is_ok());
    }

    #[test]
    fn constant_branch_becomes_jump() {
        let mut f = func(
            vec![
                Instr::Const { dst: 1, value: 0 },
                Instr::Branch { cond: 1, then_to: 2, else_to: 3 },
                Instr::Ret { value: None },
                Instr::Const { dst: 2, value: 9 },
                Instr::Ret { value: Some(2) },
            ],
            0,
            3,
        );
        optimize_func(&mut f);
        assert!(!f.body.iter().any(|i| matches!(i, Instr::Branch { .. })), "body: {:?}", f.body);
        assert!(wrap(f).validate().is_ok());
    }

    #[test]
    fn single_pred_blocks_inherit_values() {
        // Block 2 has exactly one incoming edge (the jump), so the repeated
        // computation is eliminated (extended-basic-block scope).
        let mut f = func(
            vec![
                Instr::Bin { op: BinOp::Add, dst: 1, a: 0, b: 0 },
                Instr::Jump { target: 2 },
                Instr::Bin { op: BinOp::Add, dst: 2, a: 0, b: 0 },
                Instr::Bin { op: BinOp::Add, dst: 3, a: 1, b: 2 },
                Instr::Ret { value: Some(3) },
            ],
            1,
            4,
        );
        optimize_func(&mut f);
        let bins = f.body.iter().filter(|i| matches!(i, Instr::Bin { .. })).count();
        assert_eq!(bins, 2, "single-pred reuse should fire: {:?}", f.body);
    }

    #[test]
    fn values_not_reused_across_joins() {
        // Block at 4 has TWO incoming edges (branch targets converge), so
        // the recomputation there must stay.
        let mut f = func(
            vec![
                Instr::Bin { op: BinOp::Add, dst: 1, a: 0, b: 0 }, // 0
                Instr::Branch { cond: 0, then_to: 2, else_to: 3 }, // 1
                Instr::Jump { target: 4 },                         // 2
                Instr::Jump { target: 4 },                         // 3
                Instr::Bin { op: BinOp::Add, dst: 2, a: 0, b: 0 }, // 4: join
                Instr::Store { addr: 0, offset: 0, src: 1, width: Width::W8 },
                Instr::Store { addr: 0, offset: 8, src: 2, width: Width::W8 },
                Instr::Ret { value: None },
            ],
            1,
            3,
        );
        optimize_func(&mut f);
        let bins = f.body.iter().filter(|i| matches!(i, Instr::Bin { .. })).count();
        assert_eq!(bins, 2, "join blocks start fresh: {:?}", f.body);
    }

    #[test]
    fn loop_headers_start_fresh() {
        // r1 = [r0]; loop body stores through r0 each iteration, so the
        // load inside the loop must not be satisfied by the preheader load.
        let mut f = func(
            vec![
                Instr::Load { dst: 1, addr: 0, offset: 0, width: Width::W8 }, // 0 preheader
                Instr::Load { dst: 2, addr: 0, offset: 0, width: Width::W8 }, // 1 loop head (2 preds)
                Instr::Bin { op: BinOp::Add, dst: 2, a: 2, b: 2 },            // 2
                Instr::Store { addr: 0, offset: 0, src: 2, width: Width::W8 }, // 3
                Instr::Bin { op: BinOp::Lt, dst: 2, a: 2, b: 1 },             // 4
                Instr::Branch { cond: 2, then_to: 1, else_to: 6 },            // 5
                Instr::Ret { value: Some(1) },                                // 6
            ],
            1,
            3,
        );
        optimize_func(&mut f);
        let loads = f.body.iter().filter(|i| matches!(i, Instr::Load { .. })).count();
        assert_eq!(loads, 2, "loop-carried load must stay: {:?}", f.body);
    }

    #[test]
    fn holder_invalidation_is_respected() {
        // r1 = r0 + r0; r1 = 5; r2 = r0 + r0  → r2 must NOT become mov r1
        let mut f = func(
            vec![
                Instr::Bin { op: BinOp::Add, dst: 1, a: 0, b: 0 },
                Instr::Store { addr: 0, offset: 0, src: 1, width: Width::W8 },
                Instr::Const { dst: 1, value: 5 },
                Instr::Store { addr: 0, offset: 8, src: 1, width: Width::W8 },
                Instr::Bin { op: BinOp::Add, dst: 2, a: 0, b: 0 },
                Instr::Store { addr: 0, offset: 16, src: 2, width: Width::W8 },
                Instr::Ret { value: None },
            ],
            1,
            3,
        );
        optimize_func(&mut f);
        let bins = f.body.iter().filter(|i| matches!(i, Instr::Bin { .. })).count();
        assert_eq!(bins, 2, "stale holder reused: {:?}", f.body);
    }
}
