//! Statement-level dead-code elimination on the AST.
//!
//! Removes statements that follow a `return`/`break`/`continue` in the same
//! block, and empty statements. (Register-level dead-code elimination
//! happens later, in [`crate::passes::vn`].)

use crate::ast::*;

/// Clean up a translation unit in place.
pub fn dce_tu(tu: &mut TranslationUnit) {
    for item in &mut tu.items {
        if let Item::Func(f) = item {
            if let Some(body) = &mut f.body {
                dce_block(body);
            }
        }
    }
}

fn terminates(s: &Stmt) -> bool {
    match s {
        Stmt::Return(..) | Stmt::Break(_) | Stmt::Continue(_) => true,
        Stmt::Block(ss) => ss.last().map(terminates).unwrap_or(false),
        Stmt::If { then_s, else_s: Some(e), .. } => terminates(then_s) && terminates(e),
        _ => false,
    }
}

fn dce_block(ss: &mut Vec<Stmt>) {
    for s in ss.iter_mut() {
        dce_stmt(s);
    }
    // truncate after the first terminating statement
    if let Some(pos) = ss.iter().position(terminates) {
        ss.truncate(pos + 1);
    }
    ss.retain(|s| !matches!(s, Stmt::Empty));
}

fn dce_stmt(s: &mut Stmt) {
    match s {
        Stmt::Block(ss) => dce_block(ss),
        Stmt::If { then_s, else_s, .. } => {
            dce_stmt(then_s);
            if let Some(e) = else_s {
                dce_stmt(e);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
            dce_stmt(body)
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn removes_code_after_return() {
        let mut tu = parse("t.c", "int f() { return 1; return 2; return 3; }").unwrap();
        dce_tu(&mut tu);
        assert_eq!(tu.find_func("f").unwrap().body.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn removes_empty_statements() {
        let mut tu = parse("t.c", "int f() { ;; return 1; }").unwrap();
        dce_tu(&mut tu);
        assert_eq!(tu.find_func("f").unwrap().body.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn keeps_code_after_conditional_return() {
        let mut tu = parse("t.c", "int f(int x) { if (x) return 1; return 2; }").unwrap();
        dce_tu(&mut tu);
        assert_eq!(tu.find_func("f").unwrap().body.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn truncates_after_exhaustive_if() {
        let mut tu =
            parse("t.c", "int f(int x) { if (x) { return 1; } else { return 2; } return 3; }")
                .unwrap();
        dce_tu(&mut tu);
        assert_eq!(tu.find_func("f").unwrap().body.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn cleans_nested_blocks() {
        let mut tu =
            parse("t.c", "int f(int x) { while (x) { break; x = x - 1; } return x; }").unwrap();
        dce_tu(&mut tu);
        let f = tu.find_func("f").unwrap();
        match &f.body.as_ref().unwrap()[0] {
            Stmt::While { body, .. } => match body.as_ref() {
                Stmt::Block(ss) => assert_eq!(ss.len(), 1),
                other => panic!("expected block, got {other:?}"),
            },
            other => panic!("expected while, got {other:?}"),
        }
    }
}
