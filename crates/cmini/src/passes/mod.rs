//! Optimization passes.
//!
//! AST-level passes run before code generation:
//! * [`fold`] — constant folding and branch pruning;
//! * [`inline`] — definition-before-use inlining (the gcc-like behaviour
//!   that makes Knit's flattening pay off, §6 of the paper);
//! * [`dce`] — statement-level dead-code elimination.
//!
//! IR-level passes run per generated function:
//! * [`vn`] — local value numbering (CSE + redundant-load elimination) and
//!   dead-instruction removal, the "conventional optimizing compiler" part
//!   of the paper's claim that "we can eliminate most of the cost of
//!   componentization by blindly merging code, enabling conventional
//!   optimizing compilers to do the rest".

pub mod dce;
pub mod fold;
pub mod hoist;
pub mod inline;
pub mod vn;
