//! Definition-before-use function inlining.
//!
//! This pass deliberately mimics the behaviour of gcc 2.95 that the paper's
//! flattening optimization exploits (§6): a call is only inlined when the
//! callee's **definition appears earlier in the same translation unit**.
//! Separate compilation therefore gets no cross-component inlining — but
//! after Knit merges the units of a flattened group into one file and sorts
//! definitions callee-before-caller, the very same pass suddenly fires
//! across what used to be component boundaries. That is the entire
//! mechanism of Table 1's "flattened" rows.
//!
//! Scope is conservative: a callee is inlinable if it has a body, is not
//! variadic, never has its address taken anywhere in the unit, does not
//! call itself, its body is at most `budget` statements, and either ends
//! with its only `return` or contains none at all. Call sites are rewritten
//! at statement level (`f(…);`, `x = f(…);`, `int x = f(…);`,
//! `return f(…);`).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::*;
use crate::token::Span;

/// Run the inliner over a translation unit.
///
/// `budget` bounds the callee body size in statements. Returns the number
/// of call sites inlined.
pub fn inline_tu(tu: &mut TranslationUnit, budget: usize) -> usize {
    let addr_taken = functions_with_address_taken(tu);
    // Candidate snapshot per function name, with its definition index.
    let mut defs: BTreeMap<String, (usize, FuncDef)> = BTreeMap::new();
    for (i, item) in tu.items.iter().enumerate() {
        if let Item::Func(f) = item {
            if f.body.is_some() && !defs.contains_key(&f.name) {
                defs.insert(f.name.clone(), (i, f.clone()));
            }
        }
    }
    // Direct-call-site counts: a function called exactly once is inlined
    // regardless of size (gcc's single-call-site heuristic — the function
    // body would exist exactly once either way).
    let call_counts = count_call_sites(tu);
    let mut count = 0usize;
    let mut fresh = 0usize;
    for i in 0..tu.items.len() {
        let (name, mut body) = match &tu.items[i] {
            Item::Func(f) if f.body.is_some() => (f.name.clone(), f.body.clone().expect("body")),
            _ => continue,
        };
        // A few rounds so newly exposed calls get a chance.
        for _ in 0..4 {
            let mut ctx = InlineCtx {
                defs: &defs,
                addr_taken: &addr_taken,
                call_counts: &call_counts,
                budget,
                self_name: &name,
                self_index: i,
                fresh: &mut fresh,
                inlined: 0,
            };
            ctx.stmts(&mut body);
            count += ctx.inlined;
            if ctx.inlined == 0 {
                break;
            }
        }
        if let Item::Func(f) = &mut tu.items[i] {
            f.body = Some(body);
            // Refresh the snapshot: later callers splice the *expanded*
            // callee, so a whole single-call-site chain collapses in one
            // pass (processing order is source order, and flattening sorts
            // callees first).
            defs.insert(name.clone(), (i, f.clone()));
        }
    }
    if count > 0 {
        remove_dead_statics(tu);
    }
    count
}

/// Count direct call sites per function name across the unit.
fn count_call_sites(tu: &TranslationUnit) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut visit = |e: &Expr| {
        count_calls_expr(e, &mut counts);
    };
    for item in &tu.items {
        if let Item::Func(f) = item {
            if let Some(body) = &f.body {
                for s in body {
                    visit_stmt_exprs(s, &mut visit);
                }
            }
        }
    }
    counts
}

fn count_calls_expr(e: &Expr, counts: &mut BTreeMap<String, usize>) {
    match &e.kind {
        ExprKind::Call { callee, args } => {
            if let ExprKind::Ident(n) = &callee.kind {
                *counts.entry(n.clone()).or_default() += 1;
            } else {
                count_calls_expr(callee, counts);
            }
            for a in args {
                count_calls_expr(a, counts);
            }
        }
        ExprKind::Bin { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            count_calls_expr(lhs, counts);
            count_calls_expr(rhs, counts);
        }
        ExprKind::Un { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::Deref(expr)
        | ExprKind::AddrOf(expr)
        | ExprKind::SizeofExpr(expr)
        | ExprKind::IncDec { expr, .. }
        | ExprKind::VarArg(expr) => count_calls_expr(expr, counts),
        ExprKind::Cond { cond, then_e, else_e } => {
            count_calls_expr(cond, counts);
            count_calls_expr(then_e, counts);
            count_calls_expr(else_e, counts);
        }
        ExprKind::Index { base, index } => {
            count_calls_expr(base, counts);
            count_calls_expr(index, counts);
        }
        ExprKind::Member { base, .. } => count_calls_expr(base, counts),
        _ => {}
    }
}

/// Remove `static` functions no longer referenced anywhere (fully inlined
/// bodies): the file-local original would just be dead weight, and gcc
/// removes it the same way.
fn remove_dead_statics(tu: &mut TranslationUnit) {
    loop {
        let mut referenced: BTreeSet<String> = BTreeSet::new();
        for item in &tu.items {
            match item {
                Item::Func(f) => {
                    if let Some(body) = &f.body {
                        for s in body {
                            visit_stmt_exprs(s, &mut |e| collect_idents(e, &mut referenced));
                        }
                    }
                }
                Item::Global(g) => {
                    if let Some(init) = &g.init {
                        collect_init_idents(init, &mut referenced);
                    }
                }
                _ => {}
            }
        }
        let before = tu.items.len();
        tu.items.retain(|item| match item {
            Item::Func(f) => {
                !(f.storage == Storage::Static && f.body.is_some() && !referenced.contains(&f.name))
            }
            _ => true,
        });
        if tu.items.len() == before {
            break;
        }
    }
}

fn collect_idents(e: &Expr, out: &mut BTreeSet<String>) {
    match &e.kind {
        ExprKind::Ident(n) => {
            out.insert(n.clone());
        }
        ExprKind::Call { callee, args } => {
            collect_idents(callee, out);
            for a in args {
                collect_idents(a, out);
            }
        }
        ExprKind::Bin { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            collect_idents(lhs, out);
            collect_idents(rhs, out);
        }
        ExprKind::Un { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::Deref(expr)
        | ExprKind::AddrOf(expr)
        | ExprKind::SizeofExpr(expr)
        | ExprKind::IncDec { expr, .. }
        | ExprKind::VarArg(expr) => collect_idents(expr, out),
        ExprKind::Cond { cond, then_e, else_e } => {
            collect_idents(cond, out);
            collect_idents(then_e, out);
            collect_idents(else_e, out);
        }
        ExprKind::Index { base, index } => {
            collect_idents(base, out);
            collect_idents(index, out);
        }
        ExprKind::Member { base, .. } => collect_idents(base, out),
        _ => {}
    }
}

fn collect_init_idents(init: &Init, out: &mut BTreeSet<String>) {
    match init {
        Init::Expr(e) => collect_idents(e, out),
        Init::List(items) => {
            for i in items {
                collect_init_idents(i, out);
            }
        }
    }
}

/// Functions whose name appears outside of direct-call position (so their
/// address may escape; never inline or assume anything about those).
fn functions_with_address_taken(tu: &TranslationUnit) -> BTreeSet<String> {
    let mut func_names: BTreeSet<String> = BTreeSet::new();
    for item in &tu.items {
        if let Item::Func(f) = item {
            func_names.insert(f.name.clone());
        }
    }
    let mut out = BTreeSet::new();
    for item in &tu.items {
        match item {
            Item::Func(f) => {
                if let Some(body) = &f.body {
                    for s in body {
                        scan_stmt(s, &func_names, &mut out);
                    }
                }
            }
            Item::Global(g) => {
                if let Some(init) = &g.init {
                    scan_init(init, &func_names, &mut out);
                }
            }
            _ => {}
        }
    }
    out
}

fn scan_init(init: &Init, funcs: &BTreeSet<String>, out: &mut BTreeSet<String>) {
    match init {
        Init::Expr(e) => scan_expr(e, funcs, out, false),
        Init::List(items) => {
            for i in items {
                scan_init(i, funcs, out);
            }
        }
    }
}

fn scan_stmt(s: &Stmt, funcs: &BTreeSet<String>, out: &mut BTreeSet<String>) {
    visit_stmt_exprs(s, &mut |e| scan_expr_top(e, funcs, out));
}

fn scan_expr_top(e: &Expr, funcs: &BTreeSet<String>, out: &mut BTreeSet<String>) {
    scan_expr(e, funcs, out, false);
}

/// `in_call_callee` marks the callee slot of a call, where a bare function
/// name does NOT count as address-taken.
fn scan_expr(e: &Expr, funcs: &BTreeSet<String>, out: &mut BTreeSet<String>, in_call_callee: bool) {
    match &e.kind {
        ExprKind::Ident(n) if !in_call_callee && funcs.contains(n) => {
            out.insert(n.clone());
        }
        ExprKind::Call { callee, args } => {
            scan_expr(callee, funcs, out, true);
            for a in args {
                scan_expr(a, funcs, out, false);
            }
        }
        ExprKind::Bin { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            scan_expr(lhs, funcs, out, false);
            scan_expr(rhs, funcs, out, false);
        }
        ExprKind::Un { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::Deref(expr)
        | ExprKind::AddrOf(expr)
        | ExprKind::SizeofExpr(expr)
        | ExprKind::IncDec { expr, .. }
        | ExprKind::VarArg(expr) => scan_expr(expr, funcs, out, false),
        ExprKind::Cond { cond, then_e, else_e } => {
            scan_expr(cond, funcs, out, false);
            scan_expr(then_e, funcs, out, false);
            scan_expr(else_e, funcs, out, false);
        }
        ExprKind::Index { base, index } => {
            scan_expr(base, funcs, out, false);
            scan_expr(index, funcs, out, false);
        }
        ExprKind::Member { base, .. } => scan_expr(base, funcs, out, false),
        _ => {}
    }
}

fn visit_stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Expr(e) | Stmt::Return(Some(e), _) => f(e),
        Stmt::Decl { init: Some(e), .. } => f(e),
        Stmt::If { cond, then_s, else_s } => {
            f(cond);
            visit_stmt_exprs(then_s, f);
            if let Some(e) = else_s {
                visit_stmt_exprs(e, f);
            }
        }
        Stmt::While { cond, body } => {
            f(cond);
            visit_stmt_exprs(body, f);
        }
        Stmt::DoWhile { body, cond } => {
            visit_stmt_exprs(body, f);
            f(cond);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                visit_stmt_exprs(i, f);
            }
            if let Some(c) = cond {
                f(c);
            }
            if let Some(s2) = step {
                f(s2);
            }
            visit_stmt_exprs(body, f);
        }
        Stmt::Block(ss) => {
            for s in ss {
                visit_stmt_exprs(s, f);
            }
        }
        _ => {}
    }
}

struct InlineCtx<'a> {
    defs: &'a BTreeMap<String, (usize, FuncDef)>,
    addr_taken: &'a BTreeSet<String>,
    call_counts: &'a BTreeMap<String, usize>,
    budget: usize,
    self_name: &'a str,
    self_index: usize,
    fresh: &'a mut usize,
    inlined: usize,
}

/// Shape of an inlinable body.
enum BodyShape {
    /// No `return` anywhere; result (if demanded) is 0.
    NoReturn,
    /// Exactly one `return`, as the final top-level statement.
    TailReturn,
    /// Early returns present: inline with the guarded (`__done` flag)
    /// transformation, the way gcc's inliner handles arbitrary control
    /// flow. Every `return e` becomes `{ __ret = e; __done = 1; }`,
    /// statements after a possibly-returning statement are guarded by
    /// `if (!__done)`, and loops containing returns get a trailing
    /// `if (__done) break;`.
    EarlyReturns,
}

impl<'a> InlineCtx<'a> {
    fn stmts(&mut self, ss: &mut Vec<Stmt>) {
        // recurse first
        for s in ss.iter_mut() {
            self.stmt(s);
        }
        // then rewrite call-sites at this level
        let old = std::mem::take(ss);
        for s in old {
            match self.try_rewrite(&s) {
                Some(mut replacement) => {
                    self.inlined += 1;
                    ss.append(&mut replacement);
                }
                None => ss.push(s),
            }
        }
    }

    fn stmt(&mut self, s: &mut Stmt) {
        match s {
            Stmt::Block(ss) => self.stmts(ss),
            Stmt::If { then_s, else_s, .. } => {
                self.stmt_boxed(then_s);
                if let Some(e) = else_s {
                    self.stmt_boxed(e);
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => self.stmt_boxed(body),
            Stmt::For { body, .. } => self.stmt_boxed(body),
            _ => {}
        }
    }

    /// Handle a statement that is the direct (non-block) body of a loop or
    /// `if` arm: recurse, then rewrite it in place if it is a call-site.
    fn stmt_boxed(&mut self, b: &mut Box<Stmt>) {
        self.stmt(b);
        if let Some(replacement) = self.try_rewrite(b) {
            self.inlined += 1;
            **b = Stmt::Block(replacement);
        }
    }

    /// If `s` is an inlinable call-site, produce replacement statements.
    fn try_rewrite(&mut self, s: &Stmt) -> Option<Vec<Stmt>> {
        match s {
            Stmt::Expr(e) => {
                // x = f(args);
                if let ExprKind::Assign { op: None, lhs, rhs } = &e.kind {
                    if let (ExprKind::Ident(var), ExprKind::Call { callee, args }) =
                        (&lhs.kind, &rhs.kind)
                    {
                        if let ExprKind::Ident(fname) = &callee.kind {
                            let callee_def = self.candidate(fname, args.len())?;
                            return Some(self.splice(
                                callee_def,
                                args,
                                e.span,
                                Consumer::AssignTo(var.clone(), e.span),
                            ));
                        }
                    }
                    return None;
                }
                // f(args);
                let (name, args, span) = as_direct_call(e)?;
                let callee = self.candidate(name, args.len())?;
                Some(self.splice(callee, args, span, Consumer::Discard))
            }
            _ => self.try_rewrite_other(s),
        }
    }

    fn try_rewrite_other(&mut self, s: &Stmt) -> Option<Vec<Stmt>> {
        match s {
            Stmt::Return(Some(e), span) => {
                let (name, args, _) = as_direct_call(e)?;
                let callee = self.candidate(name, args.len())?;
                Some(self.splice(callee, args, *span, Consumer::Return(*span)))
            }
            Stmt::Decl { name: var, ty, init: Some(e), span } => {
                let (fname, args, _) = as_direct_call(e)?;
                let callee = self.candidate(fname, args.len())?;
                let mut out =
                    vec![Stmt::Decl { name: var.clone(), ty: ty.clone(), init: None, span: *span }];
                out.extend(self.splice(
                    callee,
                    args,
                    *span,
                    Consumer::AssignTo(var.clone(), *span),
                ));
                Some(out)
            }
            _ => None,
        }
    }

    fn candidate(&self, name: &str, nargs: usize) -> Option<&'a FuncDef> {
        if name == self.self_name || self.addr_taken.contains(name) {
            return None;
        }
        let (def_index, f) = self.defs.get(name)?;
        // definition-before-use: only inline functions defined earlier
        if *def_index >= self.self_index {
            return None;
        }
        if f.varargs || f.params.len() != nargs {
            return None;
        }
        let body = f.body.as_ref()?;
        // size budget — waived for single-call-site functions (the body
        // exists exactly once either way, so inlining only removes the
        // call overhead)
        let single_site = self.call_counts.get(name).copied().unwrap_or(0) == 1;
        if !single_site && stmt_count(body) > self.budget {
            return None;
        }
        body_shape(body)?;
        // self-recursive callees never get smaller by inlining
        if calls_function(body, name) {
            return None;
        }
        Some(f)
    }

    /// Build the replacement statements for one inlined call.
    fn splice(
        &mut self,
        callee: &FuncDef,
        args: &[Expr],
        span: Span,
        consumer: Consumer,
    ) -> Vec<Stmt> {
        let k = *self.fresh;
        *self.fresh += 1;
        let body = callee.body.as_ref().expect("candidate has body");
        let shape = body_shape(body).expect("candidate validated");

        // rename map: params and all locals
        let mut map: BTreeMap<String, String> = BTreeMap::new();
        for (p, _) in &callee.params {
            map.insert(p.clone(), format!("__inl{k}_{p}"));
        }
        collect_locals(body, &mut |n| {
            map.entry(n.to_string()).or_insert_with(|| format!("__inl{k}_{n}"));
        });
        let ret_name = format!("__inl{k}_ret");

        let mut out: Vec<Stmt> = Vec::new();
        // argument bindings, in order
        for ((p, ty), a) in callee.params.iter().zip(args.iter()) {
            out.push(Stmt::Decl {
                name: map[p].clone(),
                ty: ty.clone(),
                init: Some(a.clone()),
                span,
            });
        }
        // result variable
        let needs_ret = !matches!(consumer, Consumer::Discard);
        if needs_ret {
            let ret_ty =
                if matches!(callee.ret, Type::Void) { Type::Int } else { callee.ret.clone() };
            out.push(Stmt::Decl {
                name: ret_name.clone(),
                ty: ret_ty,
                init: Some(Expr::int(0, span)),
                span,
            });
        }
        // the body, renamed, with returns rewritten per shape
        let mut inner: Vec<Stmt> = body.iter().map(|s| rename_stmt(s, &map)).collect();
        match shape {
            BodyShape::NoReturn => {}
            BodyShape::TailReturn => {
                let last = inner.pop().expect("tail return present");
                match last {
                    Stmt::Return(Some(e), rspan) => {
                        if needs_ret {
                            inner.push(Stmt::Expr(Expr::new(
                                ExprKind::Assign {
                                    op: None,
                                    lhs: Box::new(Expr::new(
                                        ExprKind::Ident(ret_name.clone()),
                                        rspan,
                                    )),
                                    rhs: Box::new(e),
                                },
                                rspan,
                            )));
                        } else {
                            inner.push(Stmt::Expr(e));
                        }
                    }
                    Stmt::Return(None, _) => {}
                    other => inner.push(other),
                }
            }
            BodyShape::EarlyReturns => {
                // Prefer the flag-free else-chain transform (guard-clause
                // bodies, the common case); fall back to the `__done` flag
                // for returns inside loops or partial branches.
                match chain_stmts(&inner, &ret_name, needs_ret) {
                    Some(chained) => inner = chained,
                    None => {
                        let done_name = format!("__inl{k}_done");
                        let guarded = guard_stmts(&inner, &done_name, &ret_name, needs_ret, span);
                        inner = vec![Stmt::Decl {
                            name: done_name,
                            ty: Type::Int,
                            init: Some(Expr::int(0, span)),
                            span,
                        }];
                        inner.extend(guarded);
                    }
                }
            }
        }
        out.push(Stmt::Block(inner));
        // consume the result
        match consumer {
            Consumer::Discard => {}
            Consumer::Return(rspan) => {
                out.push(Stmt::Return(Some(Expr::new(ExprKind::Ident(ret_name), rspan)), rspan));
            }
            Consumer::AssignTo(var, aspan) => {
                out.push(Stmt::Expr(Expr::new(
                    ExprKind::Assign {
                        op: None,
                        lhs: Box::new(Expr::new(ExprKind::Ident(var), aspan)),
                        rhs: Box::new(Expr::new(ExprKind::Ident(ret_name), aspan)),
                    },
                    aspan,
                )));
            }
        }
        vec![Stmt::Block(out)]
    }
}

enum Consumer {
    Discard,
    Return(Span),
    AssignTo(String, Span),
}

/// Does any statement in `ss` directly call `name`?
fn calls_function(ss: &[Stmt], name: &str) -> bool {
    let mut found = false;
    for s in ss {
        visit_stmt_exprs(s, &mut |e| {
            expr_calls(e, name, &mut found);
        });
    }
    found
}

fn expr_calls(e: &Expr, name: &str, found: &mut bool) {
    match &e.kind {
        ExprKind::Call { callee, args } => {
            if let ExprKind::Ident(n) = &callee.kind {
                if n == name {
                    *found = true;
                }
            }
            expr_calls(callee, name, found);
            for a in args {
                expr_calls(a, name, found);
            }
        }
        ExprKind::Bin { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            expr_calls(lhs, name, found);
            expr_calls(rhs, name, found);
        }
        ExprKind::Un { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::Deref(expr)
        | ExprKind::AddrOf(expr)
        | ExprKind::SizeofExpr(expr)
        | ExprKind::IncDec { expr, .. }
        | ExprKind::VarArg(expr) => expr_calls(expr, name, found),
        ExprKind::Cond { cond, then_e, else_e } => {
            expr_calls(cond, name, found);
            expr_calls(then_e, name, found);
            expr_calls(else_e, name, found);
        }
        ExprKind::Index { base, index } => {
            expr_calls(base, name, found);
            expr_calls(index, name, found);
        }
        ExprKind::Member { base, .. } => expr_calls(base, name, found),
        _ => {}
    }
}

/// Match `name(args)` where the callee is a bare identifier.
fn as_direct_call(e: &Expr) -> Option<(&str, &[Expr], Span)> {
    match &e.kind {
        ExprKind::Call { callee, args } => match &callee.kind {
            ExprKind::Ident(n) if n != "__vararg" => Some((n, args, e.span)),
            _ => None,
        },
        _ => None,
    }
}

fn stmt_count(ss: &[Stmt]) -> usize {
    let mut n = 0;
    for s in ss {
        n += 1;
        match s {
            Stmt::Block(inner) => n += stmt_count(inner),
            Stmt::If { then_s, else_s, .. } => {
                n += stmt_count(std::slice::from_ref(then_s));
                if let Some(e) = else_s {
                    n += stmt_count(std::slice::from_ref(e));
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                n += stmt_count(std::slice::from_ref(body));
            }
            _ => {}
        }
    }
    n
}

/// Classify the body. Every body is inlinable; the shape picks the
/// cheapest correct transformation.
fn body_shape(ss: &[Stmt]) -> Option<BodyShape> {
    let mut returns = 0usize;
    for s in ss {
        count_returns(s, &mut returns);
    }
    if returns == 0 {
        return Some(BodyShape::NoReturn);
    }
    if returns == 1 && matches!(ss.last(), Some(Stmt::Return(_, _))) {
        return Some(BodyShape::TailReturn);
    }
    Some(BodyShape::EarlyReturns)
}

/// Does this statement contain a `return` anywhere?
fn has_return(s: &Stmt) -> bool {
    let mut n = 0;
    count_returns(s, &mut n);
    n > 0
}

/// Does this statement return on every path?
fn always_returns(s: &Stmt) -> bool {
    match s {
        Stmt::Return(..) => true,
        Stmt::Block(ss) => ss.iter().any(always_returns),
        Stmt::If { then_s, else_s: Some(e), .. } => always_returns(then_s) && always_returns(e),
        _ => false,
    }
}

/// One `return e` rewritten as a result assignment (or a side-effect
/// evaluation when the value is unused).
fn return_as_assign(v: &Option<Expr>, rspan: Span, ret: &str, need_value: bool) -> Vec<Stmt> {
    match v {
        Some(e) if need_value => vec![Stmt::Expr(Expr::new(
            ExprKind::Assign {
                op: None,
                lhs: Box::new(Expr::new(ExprKind::Ident(ret.to_string()), rspan)),
                rhs: Box::new(e.clone()),
            },
            rspan,
        ))],
        Some(e) => vec![Stmt::Expr(e.clone())],
        None => vec![],
    }
}

/// Flag-free early-return transform: rewrite a statement sequence so every
/// `return` becomes a result assignment and the following statements move
/// into `else` arms. Returns `None` when a return hides inside a loop or a
/// branch that only sometimes returns (the flag fallback handles those).
fn chain_stmts(ss: &[Stmt], ret: &str, need_value: bool) -> Option<Vec<Stmt>> {
    let mut out: Vec<Stmt> = Vec::new();
    let mut i = 0usize;
    while i < ss.len() {
        let s = &ss[i];
        if !has_return(s) {
            out.push(s.clone());
            i += 1;
            continue;
        }
        match s {
            Stmt::Return(v, rspan) => {
                // rest is unreachable
                out.extend(return_as_assign(v, *rspan, ret, need_value));
                return Some(out);
            }
            Stmt::Block(inner) => {
                if always_returns(s) {
                    out.extend(chain_stmts(inner, ret, need_value)?);
                    return Some(out);
                }
                // a block that sometimes falls through: splice it into the
                // remaining sequence (declarations stay scoped correctly
                // only if none leak — conservatively bail when it declares)
                if inner.iter().any(|x| matches!(x, Stmt::Decl { .. })) {
                    return None;
                }
                let mut spliced: Vec<Stmt> = inner.clone();
                spliced.extend_from_slice(&ss[i + 1..]);
                out.extend(chain_stmts(&spliced, ret, need_value)?);
                return Some(out);
            }
            Stmt::If { cond, then_s, else_s } => {
                let rest = &ss[i + 1..];
                match else_s {
                    None if always_returns(then_s) => {
                        let t =
                            chain_stmts(std::slice::from_ref(then_s.as_ref()), ret, need_value)?;
                        let r = chain_stmts(rest, ret, need_value)?;
                        out.push(Stmt::If {
                            cond: cond.clone(),
                            then_s: Box::new(Stmt::Block(t)),
                            else_s: Some(Box::new(Stmt::Block(r))),
                        });
                        return Some(out);
                    }
                    Some(e) if always_returns(then_s) && always_returns(e) => {
                        let t =
                            chain_stmts(std::slice::from_ref(then_s.as_ref()), ret, need_value)?;
                        let el = chain_stmts(std::slice::from_ref(e.as_ref()), ret, need_value)?;
                        out.push(Stmt::If {
                            cond: cond.clone(),
                            then_s: Box::new(Stmt::Block(t)),
                            else_s: Some(Box::new(Stmt::Block(el))),
                        });
                        return Some(out); // rest unreachable
                    }
                    Some(e) if always_returns(then_s) && !has_return(e) => {
                        let t =
                            chain_stmts(std::slice::from_ref(then_s.as_ref()), ret, need_value)?;
                        let mut tail: Vec<Stmt> = vec![e.as_ref().clone()];
                        tail.extend_from_slice(rest);
                        let r = chain_stmts(&tail, ret, need_value)?;
                        out.push(Stmt::If {
                            cond: cond.clone(),
                            then_s: Box::new(Stmt::Block(t)),
                            else_s: Some(Box::new(Stmt::Block(r))),
                        });
                        return Some(out);
                    }
                    Some(e) if always_returns(e) && !has_return(then_s) => {
                        let el = chain_stmts(std::slice::from_ref(e.as_ref()), ret, need_value)?;
                        let mut tail: Vec<Stmt> = vec![then_s.as_ref().clone()];
                        tail.extend_from_slice(rest);
                        let r = chain_stmts(&tail, ret, need_value)?;
                        out.push(Stmt::If {
                            cond: cond.clone(),
                            then_s: Box::new(Stmt::Block(r)),
                            else_s: Some(Box::new(Stmt::Block(el))),
                        });
                        return Some(out);
                    }
                    _ => return None,
                }
            }
            _ => return None, // returns inside loops need the flag
        }
    }
    Some(out)
}

/// The guarded early-return transformation. `done` and `ret` are the
/// per-call-site flag and result variables; `need_value` controls whether
/// `return e` stores `e`.
fn guard_stmts(ss: &[Stmt], done: &str, ret: &str, need_value: bool, span: Span) -> Vec<Stmt> {
    let mut out: Vec<Stmt> = Vec::new();
    for (i, s) in ss.iter().enumerate() {
        if !has_return(s) {
            out.push(s.clone());
            continue;
        }
        out.push(guard_stmt(s, done, ret, need_value, span));
        let rest = &ss[i + 1..];
        if !rest.is_empty() {
            let guarded_rest = guard_stmts(rest, done, ret, need_value, span);
            out.push(Stmt::If {
                cond: Expr::new(
                    ExprKind::Un {
                        op: UnOp::Not,
                        expr: Box::new(Expr::new(ExprKind::Ident(done.to_string()), span)),
                    },
                    span,
                ),
                then_s: Box::new(Stmt::Block(guarded_rest)),
                else_s: None,
            });
        }
        break;
    }
    out
}

fn guard_stmt(s: &Stmt, done: &str, ret: &str, need_value: bool, span: Span) -> Stmt {
    match s {
        Stmt::Return(v, rspan) => {
            let mut stmts = Vec::new();
            if need_value {
                if let Some(e) = v {
                    stmts.push(Stmt::Expr(Expr::new(
                        ExprKind::Assign {
                            op: None,
                            lhs: Box::new(Expr::new(ExprKind::Ident(ret.to_string()), *rspan)),
                            rhs: Box::new(e.clone()),
                        },
                        *rspan,
                    )));
                }
            } else if let Some(e) = v {
                // evaluate for side effects
                stmts.push(Stmt::Expr(e.clone()));
            }
            stmts.push(Stmt::Expr(Expr::new(
                ExprKind::Assign {
                    op: None,
                    lhs: Box::new(Expr::new(ExprKind::Ident(done.to_string()), *rspan)),
                    rhs: Box::new(Expr::int(1, *rspan)),
                },
                *rspan,
            )));
            Stmt::Block(stmts)
        }
        Stmt::Block(ss) => Stmt::Block(guard_stmts(ss, done, ret, need_value, span)),
        Stmt::If { cond, then_s, else_s } => Stmt::If {
            cond: cond.clone(),
            then_s: Box::new(guard_stmt(then_s, done, ret, need_value, span)),
            else_s: else_s.as_ref().map(|e| Box::new(guard_stmt(e, done, ret, need_value, span))),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: cond.clone(),
            body: Box::new(loop_body(body, done, ret, need_value, span)),
        },
        Stmt::DoWhile { body, cond } => Stmt::DoWhile {
            body: Box::new(loop_body(body, done, ret, need_value, span)),
            cond: cond.clone(),
        },
        Stmt::For { init, cond, step, body } => Stmt::For {
            init: init.clone(),
            cond: cond.clone(),
            step: step.clone(),
            body: Box::new(loop_body(body, done, ret, need_value, span)),
        },
        other => other.clone(),
    }
}

/// Rewrite a loop body that contains returns: guard it, then break out of
/// the loop once the flag is set.
fn loop_body(body: &Stmt, done: &str, ret: &str, need_value: bool, span: Span) -> Stmt {
    let guarded = guard_stmt(body, done, ret, need_value, span);
    Stmt::Block(vec![
        guarded,
        Stmt::If {
            cond: Expr::new(ExprKind::Ident(done.to_string()), span),
            then_s: Box::new(Stmt::Break(span)),
            else_s: None,
        },
    ])
}

fn count_returns(s: &Stmt, n: &mut usize) {
    match s {
        Stmt::Return(..) => *n += 1,
        Stmt::Block(ss) => {
            for s in ss {
                count_returns(s, n);
            }
        }
        Stmt::If { then_s, else_s, .. } => {
            count_returns(then_s, n);
            if let Some(e) = else_s {
                count_returns(e, n);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
            count_returns(body, n);
        }
        _ => {}
    }
}

fn collect_locals(ss: &[Stmt], f: &mut impl FnMut(&str)) {
    for s in ss {
        match s {
            Stmt::Decl { name, .. } => f(name),
            Stmt::Block(inner) => collect_locals(inner, f),
            Stmt::If { then_s, else_s, .. } => {
                collect_locals(std::slice::from_ref(then_s), f);
                if let Some(e) = else_s {
                    collect_locals(std::slice::from_ref(e), f);
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                collect_locals(std::slice::from_ref(body), f)
            }
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    collect_locals(std::slice::from_ref(i), f);
                }
                collect_locals(std::slice::from_ref(body), f);
            }
            _ => {}
        }
    }
}

fn rename_stmt(s: &Stmt, map: &BTreeMap<String, String>) -> Stmt {
    match s {
        Stmt::Expr(e) => Stmt::Expr(rename_expr(e, map)),
        Stmt::Decl { name, ty, init, span } => Stmt::Decl {
            name: map.get(name).cloned().unwrap_or_else(|| name.clone()),
            ty: ty.clone(),
            init: init.as_ref().map(|e| rename_expr(e, map)),
            span: *span,
        },
        Stmt::If { cond, then_s, else_s } => Stmt::If {
            cond: rename_expr(cond, map),
            then_s: Box::new(rename_stmt(then_s, map)),
            else_s: else_s.as_ref().map(|e| Box::new(rename_stmt(e, map))),
        },
        Stmt::While { cond, body } => {
            Stmt::While { cond: rename_expr(cond, map), body: Box::new(rename_stmt(body, map)) }
        }
        Stmt::DoWhile { body, cond } => {
            Stmt::DoWhile { body: Box::new(rename_stmt(body, map)), cond: rename_expr(cond, map) }
        }
        Stmt::For { init, cond, step, body } => Stmt::For {
            init: init.as_ref().map(|i| Box::new(rename_stmt(i, map))),
            cond: cond.as_ref().map(|c| rename_expr(c, map)),
            step: step.as_ref().map(|s2| rename_expr(s2, map)),
            body: Box::new(rename_stmt(body, map)),
        },
        Stmt::Return(v, span) => Stmt::Return(v.as_ref().map(|e| rename_expr(e, map)), *span),
        Stmt::Break(sp) => Stmt::Break(*sp),
        Stmt::Continue(sp) => Stmt::Continue(*sp),
        Stmt::Block(ss) => Stmt::Block(ss.iter().map(|s| rename_stmt(s, map)).collect()),
        Stmt::Empty => Stmt::Empty,
    }
}

fn rename_expr(e: &Expr, map: &BTreeMap<String, String>) -> Expr {
    let kind = match &e.kind {
        ExprKind::Ident(n) => ExprKind::Ident(map.get(n).cloned().unwrap_or_else(|| n.clone())),
        ExprKind::Bin { op, lhs, rhs } => ExprKind::Bin {
            op: *op,
            lhs: Box::new(rename_expr(lhs, map)),
            rhs: Box::new(rename_expr(rhs, map)),
        },
        ExprKind::Un { op, expr } => {
            ExprKind::Un { op: *op, expr: Box::new(rename_expr(expr, map)) }
        }
        ExprKind::Assign { op, lhs, rhs } => ExprKind::Assign {
            op: *op,
            lhs: Box::new(rename_expr(lhs, map)),
            rhs: Box::new(rename_expr(rhs, map)),
        },
        ExprKind::Cond { cond, then_e, else_e } => ExprKind::Cond {
            cond: Box::new(rename_expr(cond, map)),
            then_e: Box::new(rename_expr(then_e, map)),
            else_e: Box::new(rename_expr(else_e, map)),
        },
        ExprKind::Call { callee, args } => ExprKind::Call {
            // NB: direct-call callees are *not* renamed (they are function
            // names, which the map never contains).
            callee: Box::new(rename_expr(callee, map)),
            args: args.iter().map(|a| rename_expr(a, map)).collect(),
        },
        ExprKind::Index { base, index } => ExprKind::Index {
            base: Box::new(rename_expr(base, map)),
            index: Box::new(rename_expr(index, map)),
        },
        ExprKind::Member { base, field, arrow } => ExprKind::Member {
            base: Box::new(rename_expr(base, map)),
            field: field.clone(),
            arrow: *arrow,
        },
        ExprKind::Deref(inner) => ExprKind::Deref(Box::new(rename_expr(inner, map))),
        ExprKind::AddrOf(inner) => ExprKind::AddrOf(Box::new(rename_expr(inner, map))),
        ExprKind::Cast { ty, expr } => {
            ExprKind::Cast { ty: ty.clone(), expr: Box::new(rename_expr(expr, map)) }
        }
        ExprKind::SizeofExpr(inner) => ExprKind::SizeofExpr(Box::new(rename_expr(inner, map))),
        ExprKind::IncDec { pre, inc, expr } => {
            ExprKind::IncDec { pre: *pre, inc: *inc, expr: Box::new(rename_expr(expr, map)) }
        }
        ExprKind::VarArg(inner) => ExprKind::VarArg(Box::new(rename_expr(inner, map))),
        other => other.clone(),
    };
    Expr::new(kind, e.span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str, budget: usize) -> (TranslationUnit, usize) {
        let mut tu = parse("t.c", src).unwrap();
        let n = inline_tu(&mut tu, budget);
        (tu, n)
    }

    fn has_call_to(tu: &TranslationUnit, caller: &str, callee: &str) -> bool {
        let f = tu.find_func(caller).unwrap();
        let mut found = false;
        for s in f.body.as_ref().unwrap() {
            visit_stmt_exprs(s, &mut |e| {
                check_expr(e, callee, &mut found);
            });
        }
        found
    }

    fn check_expr(e: &Expr, callee: &str, found: &mut bool) {
        match &e.kind {
            ExprKind::Call { callee: c, args } => {
                if let ExprKind::Ident(n) = &c.kind {
                    if n == callee {
                        *found = true;
                    }
                }
                for a in args {
                    check_expr(a, callee, found);
                }
            }
            ExprKind::Bin { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                check_expr(lhs, callee, found);
                check_expr(rhs, callee, found);
            }
            ExprKind::Un { expr, .. } | ExprKind::Deref(expr) | ExprKind::AddrOf(expr) => {
                check_expr(expr, callee, found)
            }
            _ => {}
        }
    }

    #[test]
    fn inlines_definition_before_use() {
        let (tu, n) = run(
            "int double_it(int x) { return x + x; }\n\
             int f(int y) { return double_it(y); }",
            32,
        );
        assert_eq!(n, 1);
        assert!(!has_call_to(&tu, "f", "double_it"));
    }

    #[test]
    fn does_not_inline_definition_after_use() {
        let (tu, n) = run(
            "int f(int y) { return double_it(y); }\n\
             int double_it(int x) { return x + x; }",
            32,
        );
        assert_eq!(n, 0);
        assert!(has_call_to(&tu, "f", "double_it"));
    }

    #[test]
    fn respects_budget_for_multi_site_callees() {
        // Two call sites: the single-call-site waiver does not apply, so
        // the size budget decides.
        let big = "int big(int x) { x = x + 1; x = x + 1; x = x + 1; x = x + 1; return x; }\n\
                   int f(int y) { int a = big(y); int b = big(a); return b; }";
        let (_, n) = run(big, 2);
        assert_eq!(n, 0);
        let (_, n) = run(big, 32);
        assert_eq!(n, 2);
    }

    #[test]
    fn single_call_site_waives_budget_and_removes_dead_static() {
        let big =
            "static int big(int x) { x = x + 1; x = x + 1; x = x + 1; x = x + 1; return x; }\n\
                   int f(int y) { return big(y); }";
        let (tu, n) = run(big, 2);
        assert_eq!(n, 1);
        // the fully-inlined static original is gone
        assert!(tu.find_func("big").is_none());
        assert!(tu.find_func("f").is_some());
    }

    #[test]
    fn skips_recursive_and_varargs() {
        let (_, n) = run(
            "int rec(int x) { return rec(x); }\n\
             int f(int y) { return rec(y); }",
            32,
        );
        assert_eq!(n, 0);
        let (_, n) = run(
            "int v(int x, ...) { return x; }\n\
             int f(int y) { return v(y, 1); }",
            32,
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn skips_address_taken_functions() {
        let (_, n) = run(
            "int g(int x) { return x; }\n\
             int (*fp)(int) = &g;\n\
             int f(int y) { return g(y); }",
            32,
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn inlines_early_returns_with_guard() {
        let (tu, n) = run(
            "int g(int x) { if (x) { return 1; } return 2; }\n\
             int f(int y) { return g(y); }",
            32,
        );
        assert_eq!(n, 1);
        assert!(!has_call_to(&tu, "f", "g"));
    }

    #[test]
    fn inlines_returns_inside_loops_with_break_guard() {
        let (tu, n) = run(
            "int find(int x) { for (int i = 0; i < 10; i++) { if (i == x) return i * 2; } return -1; }\n\
             int f(int y) { return find(y); }",
            32,
        );
        assert_eq!(n, 1);
        assert!(!has_call_to(&tu, "f", "find"));
    }

    #[test]
    fn inlines_void_call_statement() {
        let (tu, n) = run(
            "int counter;\n\
             void bump() { counter = counter + 1; }\n\
             void f() { bump(); bump(); }",
            32,
        );
        assert_eq!(n, 2);
        assert!(!has_call_to(&tu, "f", "bump"));
    }

    #[test]
    fn chains_through_multiple_levels() {
        let (tu, n) = run(
            "int a(int x) { return x + 1; }\n\
             int b(int x) { return a(x) ; }\n\
             int f(int y) { return b(y); }",
            64,
        );
        // b inlines a; f inlines b (which now contains a's body inline).
        assert!(n >= 2);
        assert!(!has_call_to(&tu, "f", "b"));
        assert!(!has_call_to(&tu, "f", "a"));
    }

    #[test]
    fn renames_locals_apart() {
        let (tu, n) = run(
            "int g(int x) { int t = x * 2; return t; }\n\
             int f(int t) { return g(t) + t; }",
            32,
        );
        // This call site is `return g(t) + t` — not a whole-statement call,
        // so it must NOT be inlined (expression contexts are out of scope).
        assert_eq!(n, 0);
        let _ = tu;
    }

    #[test]
    fn inlines_decl_init_call() {
        let (tu, n) = run(
            "int g(int x) { int t = x * 2; return t; }\n\
             int f(int y) { int r = g(y); return r + 1; }",
            32,
        );
        assert_eq!(n, 1);
        assert!(!has_call_to(&tu, "f", "g"));
    }
}
