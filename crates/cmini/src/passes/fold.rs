//! Constant folding and branch pruning on the AST.

use crate::ast::*;

/// Fold constants throughout a translation unit.
pub fn fold_tu(tu: &mut TranslationUnit) {
    for item in &mut tu.items {
        if let Item::Func(f) = item {
            if let Some(body) = &mut f.body {
                for s in body.iter_mut() {
                    fold_stmt(s);
                }
            }
        }
    }
}

fn fold_stmt(s: &mut Stmt) {
    match s {
        Stmt::Expr(e) => fold_expr(e),
        Stmt::Decl { init: Some(e), .. } => fold_expr(e),
        Stmt::If { cond, then_s, else_s } => {
            fold_expr(cond);
            fold_stmt(then_s);
            if let Some(e) = else_s {
                fold_stmt(e);
            }
            if let Some(v) = cond.as_int() {
                // prune the dead arm
                let replacement = if v != 0 {
                    std::mem::replace(then_s.as_mut(), Stmt::Empty)
                } else {
                    match else_s {
                        Some(e) => std::mem::replace(e.as_mut(), Stmt::Empty),
                        None => Stmt::Empty,
                    }
                };
                *s = replacement;
            }
        }
        Stmt::While { cond, body } => {
            fold_expr(cond);
            fold_stmt(body);
            if cond.as_int() == Some(0) {
                *s = Stmt::Empty;
            }
        }
        Stmt::DoWhile { body, cond } => {
            fold_stmt(body);
            fold_expr(cond);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                fold_stmt(i);
            }
            if let Some(c) = cond {
                fold_expr(c);
            }
            if let Some(st) = step {
                fold_expr(st);
            }
            fold_stmt(body);
        }
        Stmt::Return(Some(e), _) => fold_expr(e),
        Stmt::Block(ss) => {
            for s in ss {
                fold_stmt(s);
            }
        }
        _ => {}
    }
}

/// Fold one expression in place.
pub fn fold_expr(e: &mut Expr) {
    // fold children first
    match &mut e.kind {
        ExprKind::Bin { lhs, rhs, .. } => {
            fold_expr(lhs);
            fold_expr(rhs);
        }
        ExprKind::Un { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::Deref(expr)
        | ExprKind::AddrOf(expr)
        | ExprKind::SizeofExpr(expr)
        | ExprKind::IncDec { expr, .. }
        | ExprKind::VarArg(expr) => fold_expr(expr),
        ExprKind::Assign { lhs, rhs, .. } => {
            fold_expr(lhs);
            fold_expr(rhs);
        }
        ExprKind::Cond { cond, then_e, else_e } => {
            fold_expr(cond);
            fold_expr(then_e);
            fold_expr(else_e);
        }
        ExprKind::Call { callee, args } => {
            fold_expr(callee);
            for a in args {
                fold_expr(a);
            }
        }
        ExprKind::Index { base, index } => {
            fold_expr(base);
            fold_expr(index);
        }
        ExprKind::Member { base, .. } => fold_expr(base),
        _ => {}
    }
    // then fold this node
    let folded: Option<i64> = match &e.kind {
        ExprKind::Un { op, expr } => expr.as_int().map(|v| match op {
            UnOp::Neg => v.wrapping_neg(),
            UnOp::Not => (v == 0) as i64,
            UnOp::BitNot => !v,
        }),
        ExprKind::Bin { op, lhs, rhs } => match (lhs.as_int(), rhs.as_int()) {
            (Some(a), Some(b)) => eval_bin(*op, a, b),
            // algebraic identities: x+0, x*1, x*0 (rhs only; lhs may have
            // side effects worth keeping even though pure here — we only
            // simplify when the *other* side is untouched)
            (None, Some(0))
                if matches!(
                    op,
                    BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
                ) =>
            {
                let kept = lhs.as_ref().clone();
                e.kind = kept.kind;
                return;
            }
            (None, Some(1)) if matches!(op, BinOp::Mul | BinOp::Div) => {
                let kept = lhs.as_ref().clone();
                e.kind = kept.kind;
                return;
            }
            _ => None,
        },
        ExprKind::Cond { cond, then_e, else_e } => {
            if let Some(c) = cond.as_int() {
                let take = if c != 0 { then_e } else { else_e };
                let inner = take.as_ref().clone();
                e.kind = inner.kind;
                return;
            }
            None
        }
        ExprKind::Cast { ty: Type::Char, expr } => expr.as_int().map(|v| v & 0xff),
        ExprKind::Cast { ty: Type::Int, expr } => expr.as_int(),
        _ => None,
    };
    if let Some(v) = folded {
        e.kind = ExprKind::IntLit(v);
    }
}

fn eval_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::LogAnd => ((a != 0) && (b != 0)) as i64,
        BinOp::LogOr => ((a != 0) || (b != 0)) as i64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn folded(src: &str) -> TranslationUnit {
        let mut tu = parse("t.c", src).unwrap();
        fold_tu(&mut tu);
        tu
    }

    fn ret_of(tu: &TranslationUnit, name: &str) -> Expr {
        let f = tu.find_func(name).unwrap();
        match &f.body.as_ref().unwrap()[0] {
            Stmt::Return(Some(e), _) => e.clone(),
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn folds_arithmetic() {
        let tu = folded("int f() { return 2 * 3 + 4; }");
        assert_eq!(ret_of(&tu, "f").as_int(), Some(10));
    }

    #[test]
    fn folds_nested_and_logical() {
        let tu = folded("int f() { return (1 && 2) + (0 || 0) + (5 > 3); }");
        assert_eq!(ret_of(&tu, "f").as_int(), Some(2));
    }

    #[test]
    fn keeps_div_by_zero_for_runtime() {
        let tu = folded("int f() { return 1 / 0; }");
        assert_eq!(ret_of(&tu, "f").as_int(), None);
    }

    #[test]
    fn prunes_constant_if() {
        let tu = folded("int f(int x) { if (0) { return 1; } else { return x; } }");
        let f = tu.find_func("f").unwrap();
        // the if was replaced by its else arm
        assert!(matches!(&f.body.as_ref().unwrap()[0], Stmt::Block(b) if b.len() == 1));
    }

    #[test]
    fn removes_while_zero() {
        let tu = folded("int f() { while (0) { } return 1; }");
        let f = tu.find_func("f").unwrap();
        assert!(matches!(&f.body.as_ref().unwrap()[0], Stmt::Empty));
    }

    #[test]
    fn identity_simplifications() {
        let tu = folded("int f(int x) { return x + 0; }");
        assert!(matches!(ret_of(&tu, "f").kind, ExprKind::Ident(_)));
        let tu = folded("int g(int x) { return x * 1; }");
        assert!(matches!(ret_of(&tu, "g").kind, ExprKind::Ident(_)));
    }

    #[test]
    fn folds_ternary() {
        let tu = folded("int f(int a, int b) { return 1 ? a : b; }");
        assert!(matches!(ret_of(&tu, "f").kind, ExprKind::Ident(ref n) if n == "a"));
    }

    #[test]
    fn char_cast_masks() {
        let tu = folded("int f() { return (char)300; }");
        assert_eq!(ret_of(&tu, "f").as_int(), Some(44));
    }
}
