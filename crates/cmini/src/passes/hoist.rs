//! Call hoisting: normalize direct calls out of expression positions into
//! their own temporaries, so the statement-level inliner can see them.
//!
//! `if (ip_cksum(p, 0, 10) != 0) …` becomes
//! `int __h0 = ip_cksum(p, 0, 10); if (__h0 != 0) …` — after which the
//! inliner can splice `ip_cksum`'s body. Only *unconditionally evaluated*
//! positions are hoisted: calls behind `&&`/`||` right operands or `?:`
//! branches stay put (hoisting them would change evaluation), and loop
//! conditions/steps are left alone (they run once per iteration).
//!
//! Only calls to functions *defined in this translation unit* are hoisted
//! (the callee's declared return type gives the temporary its type; extern
//! calls gain nothing from hoisting).

use std::collections::BTreeMap;

use crate::ast::*;
use crate::token::Span;

/// Hoist calls throughout a translation unit. Returns the number of calls
/// hoisted.
pub fn hoist_tu(tu: &mut TranslationUnit) -> usize {
    // return types of locally-defined functions
    let mut ret_types: BTreeMap<String, Type> = BTreeMap::new();
    for item in &tu.items {
        if let Item::Func(f) = item {
            if f.body.is_some() && !f.varargs {
                ret_types.insert(f.name.clone(), f.ret.clone());
            }
        }
    }
    let mut counter = 0usize;
    let mut hoisted = 0usize;
    for item in &mut tu.items {
        if let Item::Func(f) = item {
            if let Some(body) = &mut f.body {
                let mut h = Hoister { ret_types: &ret_types, counter: &mut counter, hoisted: 0 };
                h.block(body);
                hoisted += h.hoisted;
            }
        }
    }
    hoisted
}

struct Hoister<'a> {
    ret_types: &'a BTreeMap<String, Type>,
    counter: &'a mut usize,
    hoisted: usize,
}

impl<'a> Hoister<'a> {
    fn block(&mut self, ss: &mut Vec<Stmt>) {
        let old = std::mem::take(ss);
        for mut s in old {
            let mut temps: Vec<Stmt> = Vec::new();
            self.stmt(&mut s, &mut temps);
            ss.append(&mut temps);
            ss.push(s);
        }
    }

    fn stmt(&mut self, s: &mut Stmt, temps: &mut Vec<Stmt>) {
        match s {
            Stmt::Expr(e) => {
                // keep a whole-statement call for the inliner; hoist inner
                // positions only
                self.expr_children_only(e, temps);
            }
            Stmt::Decl { init: Some(e), .. } => self.expr_children_only(e, temps),
            Stmt::Return(Some(e), _) => self.expr_children_only(e, temps),
            Stmt::If { cond, then_s, else_s } => {
                self.expr(cond, temps);
                self.boxed(then_s);
                if let Some(e) = else_s {
                    self.boxed(e);
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => self.boxed(body),
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    // the init clause runs once: hoists surface before the loop
                    self.stmt(i, temps);
                }
                self.boxed(body);
            }
            Stmt::Block(ss) => self.block(ss),
            _ => {}
        }
    }

    fn boxed(&mut self, b: &mut Box<Stmt>) {
        // a non-block child needs its own block to hold hoisted temps
        let mut temps: Vec<Stmt> = Vec::new();
        self.stmt(b, &mut temps);
        if !temps.is_empty() {
            let inner = std::mem::replace(b.as_mut(), Stmt::Empty);
            temps.push(inner);
            **b = Stmt::Block(temps);
        }
    }

    /// Hoist inside `e`'s children, but never replace `e` itself (so
    /// statement-position calls stay put for the inliner).
    fn expr_children_only(&mut self, e: &mut Expr, temps: &mut Vec<Stmt>) {
        match &mut e.kind {
            ExprKind::Call { callee, args } => {
                self.expr(callee, temps);
                for a in args {
                    self.expr(a, temps);
                }
            }
            ExprKind::Assign { op: None, lhs, rhs } => {
                self.expr(lhs, temps);
                // `x = f(…)` whole-call RHS stays for the inliner
                if let ExprKind::Ident(_) = lhs.kind {
                    self.expr_children_only(rhs, temps);
                } else {
                    self.expr(rhs, temps);
                }
            }
            _ => self.expr(e, temps),
        }
    }

    /// Hoist every hoistable call in `e`, replacing each with a temp read.
    fn expr(&mut self, e: &mut Expr, temps: &mut Vec<Stmt>) {
        match &mut e.kind {
            ExprKind::Call { callee, args } => {
                self.expr(callee, temps);
                for a in args.iter_mut() {
                    self.expr(a, temps);
                }
                if let ExprKind::Ident(name) = &callee.kind {
                    if let Some(ret) = self.ret_types.get(name) {
                        if ret.is_scalar() {
                            let tmp = format!("__h{}", *self.counter);
                            *self.counter += 1;
                            self.hoisted += 1;
                            let call = std::mem::replace(
                                e,
                                Expr::new(ExprKind::Ident(tmp.clone()), e.span),
                            );
                            temps.push(Stmt::Decl {
                                name: tmp,
                                ty: ret.clone(),
                                init: Some(call),
                                span: Span::default(),
                            });
                        }
                    }
                }
            }
            ExprKind::Bin { op: BinOp::LogAnd | BinOp::LogOr, lhs, rhs } => {
                self.expr(lhs, temps);
                let _ = rhs; // conditionally evaluated: leave untouched
            }
            ExprKind::Bin { lhs, rhs, .. } => {
                self.expr(lhs, temps);
                self.expr(rhs, temps);
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                self.expr(lhs, temps);
                self.expr(rhs, temps);
            }
            ExprKind::Cond { cond, .. } => {
                self.expr(cond, temps);
                // branches are conditionally evaluated: leave untouched
            }
            ExprKind::Un { expr, .. }
            | ExprKind::Cast { expr, .. }
            | ExprKind::Deref(expr)
            | ExprKind::SizeofExpr(expr)
            | ExprKind::IncDec { expr, .. }
            | ExprKind::VarArg(expr) => self.expr(expr, temps),
            ExprKind::AddrOf(expr) => self.expr(expr, temps),
            ExprKind::Index { base, index } => {
                self.expr(base, temps);
                self.expr(index, temps);
            }
            ExprKind::Member { base, .. } => self.expr(base, temps),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn hoisted(src: &str) -> (TranslationUnit, usize) {
        let mut tu = parse("t.c", src).unwrap();
        let n = hoist_tu(&mut tu);
        (tu, n)
    }

    fn body_of<'t>(tu: &'t TranslationUnit, name: &str) -> &'t Vec<Stmt> {
        tu.find_func(name).unwrap().body.as_ref().unwrap()
    }

    #[test]
    fn hoists_call_from_if_condition() {
        let (tu, n) = hoisted(
            "int check(int x) { return x > 0; }\n\
             int f(int y) { if (check(y) != 0) return 1; return 2; }",
        );
        assert_eq!(n, 1);
        let body = body_of(&tu, "f");
        assert!(matches!(&body[0], Stmt::Decl { name, .. } if name.starts_with("__h")));
    }

    #[test]
    fn hoists_from_compound_assignment() {
        let (tu, n) = hoisted(
            "int get(int i) { return i * 2; }\n\
             int f() { int sum = 0; sum += get(3); return sum; }",
        );
        assert_eq!(n, 1);
        let _ = tu;
    }

    #[test]
    fn leaves_short_circuit_rhs_alone() {
        let (_, n) = hoisted(
            "int g(int x) { return x; }\n\
             int f(int a) { if (a && g(a)) return 1; return 0; }",
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn leaves_ternary_branches_alone() {
        let (_, n) = hoisted(
            "int g(int x) { return x; }\n\
             int f(int a) { return a ? g(1) : g(2); }",
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn leaves_statement_calls_for_the_inliner() {
        let (tu, n) = hoisted(
            "int g(int x) { return x; }\n\
             void f() { g(1); int a = g(2); a = g(3); }",
        );
        // whole-statement call positions are the inliner's job
        assert_eq!(n, 0);
        let _ = tu;
    }

    #[test]
    fn hoists_nested_call_arguments() {
        let (tu, n) = hoisted(
            "int g(int x) { return x; }\n\
             int f(int y) { return g(g(y) + 1); }",
        );
        // inner g(y) hoisted; outer g(…) is the return's whole call,
        // left in place
        assert_eq!(n, 1);
        let _ = tu;
    }

    #[test]
    fn does_not_hoist_loop_conditions() {
        let (_, n) = hoisted(
            "int more(int i) { return i < 3; }\n\
             int f() { int i = 0; while (more(i)) i++; return i; }",
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn extern_calls_not_hoisted() {
        let (_, n) = hoisted("int ext(int x);\nint f(int y) { if (ext(y)) return 1; return 0; }");
        assert_eq!(n, 0);
    }

    #[test]
    fn semantics_preserved_under_hoisting() {
        // evaluation order: g then h (left to right)
        let (tu, n) = hoisted(
            "int trace;\n\
             int g() { trace = trace * 10 + 1; return 1; }\n\
             int h() { trace = trace * 10 + 2; return 2; }\n\
             int f() { return g() + h() * 10; }",
        );
        assert_eq!(n, 2);
        let body = body_of(&tu, "f");
        // two temps in order, then the return
        match (&body[0], &body[1]) {
            (Stmt::Decl { init: Some(a), .. }, Stmt::Decl { init: Some(b), .. }) => {
                let name_of = |e: &Expr| match &e.kind {
                    ExprKind::Call { callee, .. } => match &callee.kind {
                        ExprKind::Ident(n) => n.clone(),
                        _ => panic!(),
                    },
                    _ => panic!("expected call init"),
                };
                assert_eq!(name_of(a), "g");
                assert_eq!(name_of(b), "h");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
