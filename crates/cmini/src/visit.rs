//! Read-only visitors over the mini-C AST.
//!
//! These walkers back cross-unit static analysis (`knit-core`'s
//! `analyze` module): identifier references, a direct call graph, and the
//! properties that make the flattening inliner bail — varargs definitions,
//! address-taken functions, self-recursion (see `passes/inline.rs` for the
//! bail conditions these mirror).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Expr, ExprKind, FuncDef, Init, Item, Stmt, Storage, TranslationUnit};

/// Walk every sub-expression of `e` (including `e` itself), preorder.
pub fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::IntLit(_)
        | ExprKind::CharLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Ident(_)
        | ExprKind::SizeofType(_) => {}
        ExprKind::Bin { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        ExprKind::Un { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::Deref(expr)
        | ExprKind::AddrOf(expr)
        | ExprKind::SizeofExpr(expr)
        | ExprKind::IncDec { expr, .. }
        | ExprKind::VarArg(expr) => visit_expr(expr, f),
        ExprKind::Cond { cond, then_e, else_e } => {
            visit_expr(cond, f);
            visit_expr(then_e, f);
            visit_expr(else_e, f);
        }
        ExprKind::Call { callee, args } => {
            visit_expr(callee, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::Index { base, index } => {
            visit_expr(base, f);
            visit_expr(index, f);
        }
        ExprKind::Member { base, .. } => visit_expr(base, f),
    }
}

/// Walk every top-level expression in `s` (and nested statements).
pub fn visit_stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Expr(e) | Stmt::Return(Some(e), _) => f(e),
        Stmt::Decl { init: Some(e), .. } => f(e),
        Stmt::Decl { .. } | Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) => {}
        Stmt::If { cond, then_s, else_s } => {
            f(cond);
            visit_stmt_exprs(then_s, f);
            if let Some(e) = else_s {
                visit_stmt_exprs(e, f);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            f(cond);
            visit_stmt_exprs(body, f);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                visit_stmt_exprs(i, f);
            }
            if let Some(c) = cond {
                f(c);
            }
            if let Some(st) = step {
                f(st);
            }
            visit_stmt_exprs(body, f);
        }
        Stmt::Block(ss) => {
            for s in ss {
                visit_stmt_exprs(s, f);
            }
        }
        Stmt::Empty => {}
    }
}

fn visit_init_exprs(init: &Init, f: &mut impl FnMut(&Expr)) {
    match init {
        Init::Expr(e) => f(e),
        Init::List(items) => {
            for i in items {
                visit_init_exprs(i, f);
            }
        }
    }
}

/// Identifier- and call-level facts about one translation unit, as used by
/// cross-unit lints. All sets are over C identifier names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TuUses {
    /// Every identifier referenced in any function body or global
    /// initializer (including direct-call callees).
    pub referenced: BTreeSet<String>,
    /// Direct call graph: defined function → names it calls directly
    /// (bare-identifier callees only; `__vararg` excluded).
    pub calls: BTreeMap<String, BTreeSet<String>>,
    /// Functions defined in this unit whose name is used outside the
    /// callee position of a direct call (address taken / stored).
    pub address_taken: BTreeSet<String>,
    /// Functions defined (with a body) in this unit.
    pub defined_funcs: BTreeSet<String>,
    /// Defined functions that take varargs.
    pub varargs_funcs: BTreeSet<String>,
    /// Defined functions that call themselves directly.
    pub self_recursive: BTreeSet<String>,
    /// `static` definitions (functions and globals) in this unit.
    pub statics: BTreeSet<String>,
}

/// Collect identifier references into `out`, flagging function names used
/// outside a direct-call callee position as address-taken.
fn scan_expr(e: &Expr, funcs: &BTreeSet<String>, uses: &mut TuUses, in_callee: bool) {
    match &e.kind {
        ExprKind::Ident(n) => {
            uses.referenced.insert(n.clone());
            if !in_callee && funcs.contains(n) {
                uses.address_taken.insert(n.clone());
            }
        }
        ExprKind::Call { callee, args } => {
            scan_expr(callee, funcs, uses, matches!(callee.kind, ExprKind::Ident(_)));
            for a in args {
                scan_expr(a, funcs, uses, false);
            }
        }
        ExprKind::Bin { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            scan_expr(lhs, funcs, uses, false);
            scan_expr(rhs, funcs, uses, false);
        }
        ExprKind::Un { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::Deref(expr)
        | ExprKind::AddrOf(expr)
        | ExprKind::SizeofExpr(expr)
        | ExprKind::IncDec { expr, .. }
        | ExprKind::VarArg(expr) => scan_expr(expr, funcs, uses, false),
        ExprKind::Cond { cond, then_e, else_e } => {
            scan_expr(cond, funcs, uses, false);
            scan_expr(then_e, funcs, uses, false);
            scan_expr(else_e, funcs, uses, false);
        }
        ExprKind::Index { base, index } => {
            scan_expr(base, funcs, uses, false);
            scan_expr(index, funcs, uses, false);
        }
        ExprKind::Member { base, .. } => scan_expr(base, funcs, uses, false),
        ExprKind::IntLit(_)
        | ExprKind::CharLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::SizeofType(_) => {}
    }
}

/// The direct-call callee name of `e`, if it is `name(args...)` and not the
/// `__vararg` builtin.
pub fn direct_callee(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Ident(n) if n != "__vararg" => Some(n),
            _ => None,
        },
        _ => None,
    }
}

fn func_body_calls(f: &FuncDef, out: &mut BTreeSet<String>) {
    if let Some(body) = &f.body {
        for s in body {
            visit_stmt_exprs(s, &mut |e| {
                visit_expr(e, &mut |sub| {
                    if let Some(n) = direct_callee(sub) {
                        out.insert(n.to_string());
                    }
                });
            });
        }
    }
}

/// Compute [`TuUses`] for one translation unit.
pub fn tu_uses(tu: &TranslationUnit) -> TuUses {
    let mut uses = TuUses::default();
    for item in &tu.items {
        match item {
            Item::Func(f) if f.body.is_some() => {
                uses.defined_funcs.insert(f.name.clone());
                if f.varargs {
                    uses.varargs_funcs.insert(f.name.clone());
                }
                if f.storage == Storage::Static {
                    uses.statics.insert(f.name.clone());
                }
            }
            Item::Global(g) if g.storage == Storage::Static => {
                uses.statics.insert(g.name.clone());
            }
            _ => {}
        }
    }
    let funcs = uses.defined_funcs.clone();
    for item in &tu.items {
        match item {
            Item::Func(f) => {
                if let Some(body) = &f.body {
                    let mut callees = BTreeSet::new();
                    func_body_calls(f, &mut callees);
                    if callees.contains(&f.name) {
                        uses.self_recursive.insert(f.name.clone());
                    }
                    uses.calls.entry(f.name.clone()).or_default().extend(callees);
                    for s in body {
                        visit_stmt_exprs(s, &mut |e| scan_expr(e, &funcs, &mut uses, false));
                    }
                }
            }
            Item::Global(g) => {
                if let Some(init) = &g.init {
                    visit_init_exprs(init, &mut |e| scan_expr(e, &funcs, &mut uses, false));
                }
            }
            Item::Struct(_) => {}
        }
    }
    uses
}

/// Merge `other` into `acc` (for units spanning several files). Call
/// graphs union per function; `statics` keeps names defined in *either*
/// file, and the caller can detect cross-file collisions by intersecting
/// per-file results before merging.
pub fn merge_uses(acc: &mut TuUses, other: &TuUses) {
    acc.referenced.extend(other.referenced.iter().cloned());
    for (f, callees) in &other.calls {
        acc.calls.entry(f.clone()).or_default().extend(callees.iter().cloned());
    }
    acc.address_taken.extend(other.address_taken.iter().cloned());
    acc.defined_funcs.extend(other.defined_funcs.iter().cloned());
    acc.varargs_funcs.extend(other.varargs_funcs.iter().cloned());
    acc.self_recursive.extend(other.self_recursive.iter().cloned());
    acc.statics.extend(other.statics.iter().cloned());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend_expanded;

    fn uses(src: &str) -> TuUses {
        let tu = frontend_expanded("t.c", src).unwrap();
        tu_uses(&tu)
    }

    #[test]
    fn collects_references_and_call_graph() {
        let u = uses(
            "int helper(int x) { return x + 1; }\n\
             int imported(int x);\n\
             int top(int y) { return helper(imported(y)); }\n",
        );
        assert!(u.referenced.contains("helper"));
        assert!(u.referenced.contains("imported"));
        assert_eq!(u.calls["top"], ["helper", "imported"].iter().map(|s| s.to_string()).collect());
        assert!(u.defined_funcs.contains("top"));
        assert!(!u.defined_funcs.contains("imported"));
    }

    #[test]
    fn detects_inliner_hazards() {
        let u = uses(
            "int chatter(int n, ...) { return n; }\n\
             int add(int a, int b) { return a + b; }\n\
             int (*handler)(int, int) = &add;\n\
             int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }\n\
             static int counter;\n\
             static int bump() { counter += 1; return counter; }\n",
        );
        assert!(u.varargs_funcs.contains("chatter"));
        assert!(u.address_taken.contains("add"));
        assert!(u.self_recursive.contains("fact"));
        assert!(u.statics.contains("counter"));
        assert!(u.statics.contains("bump"));
        // a plain direct call is NOT address-taken
        assert!(!u.address_taken.contains("fact"));
    }

    #[test]
    fn global_initializers_count_as_references() {
        let u = uses("int imported_table;\nint *p = &imported_table;\n");
        assert!(u.referenced.contains("imported_table"));
    }
}
