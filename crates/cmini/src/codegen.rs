//! Code generation: typed AST → `cobj` object files.
//!
//! Type checking happens here, during generation (the classic one-pass
//! small-C structure): every expression is generated with its type, and
//! mismatches are reported as [`CError::Type`] with the source span.

use std::collections::{BTreeMap, BTreeSet};

use cobj::ir::{BinOp as IrBin, Instr, SymId, UnOp as IrUn};
use cobj::object::{DataDef, DataReloc, FuncDef as ObjFunc, ObjectFile, Symbol};

use crate::ast::*;
use crate::error::CError;
use crate::token::Span;
use crate::types::{round_up, TypeTable};

/// Compile a translation unit into an object file named after the unit.
pub fn compile_tu(tu: &TranslationUnit) -> Result<ObjectFile, CError> {
    let types = TypeTable::build(tu)?;
    let mut cg = Cg {
        tu,
        types,
        obj: ObjectFile::new(format!("{}.o", tu.file.trim_end_matches(".c"))),
        syms: BTreeMap::new(),
        funcs: BTreeMap::new(),
        globals: BTreeMap::new(),
        str_count: 0,
    };
    cg.collect_decls()?;
    cg.emit_globals()?;
    cg.emit_funcs()?;
    cg.obj.validate().map_err(|e| CError::Type {
        file: tu.file.clone(),
        span: Span::default(),
        msg: format!("internal: generated object failed validation: {e}"),
    })?;
    Ok(cg.obj)
}

#[derive(Clone)]
struct FuncSig {
    ty: FuncType,
    defined: bool,
    is_static: bool,
    /// Unknown signature (implicitly declared in call position).
    implicit: bool,
}

#[derive(Clone)]
struct GlobalSig {
    ty: Type,
    defined: bool,
    is_static: bool,
}

struct Cg<'a> {
    tu: &'a TranslationUnit,
    types: TypeTable,
    obj: ObjectFile,
    syms: BTreeMap<String, SymId>,
    funcs: BTreeMap<String, FuncSig>,
    globals: BTreeMap<String, GlobalSig>,
    str_count: u32,
}

impl<'a> Cg<'a> {
    fn terr<T>(&self, span: Span, msg: impl Into<String>) -> Result<T, CError> {
        Err(CError::Type { file: self.tu.file.clone(), span, msg: msg.into() })
    }

    fn collect_decls(&mut self) -> Result<(), CError> {
        for item in &self.tu.items {
            match item {
                Item::Struct(_) => {}
                Item::Func(f) => {
                    let defined = f.body.is_some();
                    if let Some(prev) = self.funcs.get(&f.name) {
                        if prev.defined && defined {
                            return self
                                .terr(f.span, format!("duplicate definition of `{}`", f.name));
                        }
                    }
                    let entry = FuncSig {
                        ty: f.func_type(),
                        defined: defined || self.funcs.get(&f.name).is_some_and(|p| p.defined),
                        is_static: f.storage == Storage::Static,
                        implicit: false,
                    };
                    self.funcs.insert(f.name.clone(), entry);
                }
                Item::Global(g) => {
                    let defined = g.storage != Storage::Extern;
                    if let Some(prev) = self.globals.get(&g.name) {
                        if prev.defined && defined {
                            return self
                                .terr(g.span, format!("duplicate definition of `{}`", g.name));
                        }
                    }
                    if self.funcs.contains_key(&g.name) {
                        return self
                            .terr(g.span, format!("`{}` is both function and variable", g.name));
                    }
                    let entry = GlobalSig {
                        ty: g.ty.clone(),
                        defined: defined || self.globals.get(&g.name).is_some_and(|p| p.defined),
                        is_static: g.storage == Storage::Static,
                    };
                    self.globals.insert(g.name.clone(), entry);
                }
            }
        }
        // Create symbols for everything defined here.
        for (name, f) in &self.funcs {
            if f.defined {
                let sym = if f.is_static { Symbol::local_func(name) } else { Symbol::func(name) };
                let id = self.obj.add_symbol(sym);
                self.syms.insert(name.clone(), id);
            }
        }
        for (name, g) in &self.globals {
            if g.defined {
                let sym = if g.is_static { Symbol::local_data(name) } else { Symbol::data(name) };
                let id = self.obj.add_symbol(sym);
                self.syms.insert(name.clone(), id);
            }
        }
        Ok(())
    }

    /// Get (or create an undefined entry for) the symbol of `name`.
    fn sym_for(&mut self, name: &str) -> SymId {
        if let Some(id) = self.syms.get(name) {
            return *id;
        }
        let id = self.obj.add_symbol(Symbol::undef(name));
        self.syms.insert(name.to_string(), id);
        id
    }

    /// Create an anonymous local data symbol for a string literal.
    fn string_sym(&mut self, bytes: &[u8]) -> SymId {
        let name = format!(".str{}", self.str_count);
        self.str_count += 1;
        let id = self.obj.add_symbol(Symbol::local_data(&name));
        let mut init = bytes.to_vec();
        init.push(0);
        self.obj.data.push(DataDef { sym: id, init, zeroed: 0, relocs: vec![], align: 1 });
        id
    }

    // ----- globals -----------------------------------------------------

    fn emit_globals(&mut self) -> Result<(), CError> {
        // Deduplicate: emit one DataDef per defined global (the first
        // defining item wins; duplicates were rejected above).
        let mut emitted: BTreeSet<String> = BTreeSet::new();
        let items: Vec<&GlobalDef> = self
            .tu
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Global(g) if g.storage != Storage::Extern => Some(g),
                _ => None,
            })
            .collect();
        for g in items {
            if !emitted.insert(g.name.clone()) {
                continue;
            }
            let layout = self.types.layout_at(&g.ty, g.span)?;
            let sym = self.sym_for(&g.name);
            let def = match &g.init {
                None => DataDef {
                    sym,
                    init: vec![],
                    zeroed: layout.size,
                    relocs: vec![],
                    align: layout.align,
                },
                Some(init) => {
                    let mut buf = vec![0u8; layout.size as usize];
                    let mut relocs = Vec::new();
                    let ty = g.ty.clone();
                    self.write_init(&mut buf, &mut relocs, 0, &ty, init, g.span)?;
                    DataDef { sym, init: buf, zeroed: 0, relocs, align: layout.align }
                }
            };
            self.obj.data.push(def);
        }
        Ok(())
    }

    fn write_init(
        &mut self,
        buf: &mut Vec<u8>,
        relocs: &mut Vec<DataReloc>,
        at: u64,
        ty: &Type,
        init: &Init,
        span: Span,
    ) -> Result<(), CError> {
        match (ty, init) {
            (Type::Int | Type::Char | Type::Ptr(_), Init::Expr(e)) => {
                self.write_scalar_init(buf, relocs, at, ty, e, span)
            }
            (Type::Array(elem, n), Init::Expr(e)) => {
                // char s[] = "…"
                if let (Type::Char, ExprKind::StrLit(s)) = (elem.as_ref(), &e.kind) {
                    if s.len() as u64 + 1 > *n {
                        return self.terr(span, "string initializer longer than array");
                    }
                    let a = at as usize;
                    buf[a..a + s.len()].copy_from_slice(s);
                    Ok(())
                } else {
                    self.terr(span, "array initializer must be a brace list or string")
                }
            }
            (Type::Array(elem, n), Init::List(items)) => {
                if items.len() as u64 > *n {
                    return self.terr(span, "too many initializers for array");
                }
                let esize = self.types.layout_at(elem, span)?.size;
                for (i, item) in items.iter().enumerate() {
                    self.write_init(buf, relocs, at + i as u64 * esize, elem, item, span)?;
                }
                Ok(())
            }
            (Type::Struct(name), Init::List(items)) => {
                let info = match self.types.struct_info(name) {
                    Some(i) => i.clone(),
                    None => {
                        return self.terr(span, format!("struct `{name}` has no definition here"))
                    }
                };
                if items.len() > info.fields.len() {
                    return self.terr(span, "too many initializers for struct");
                }
                for (item, (_, fty, off)) in items.iter().zip(info.fields.iter()) {
                    self.write_init(buf, relocs, at + off, fty, item, span)?;
                }
                Ok(())
            }
            (_, Init::List(_)) => self.terr(span, "brace initializer on scalar"),
            (t, _) => self.terr(span, format!("cannot initialize value of type {t:?}")),
        }
    }

    fn write_scalar_init(
        &mut self,
        buf: &mut [u8],
        relocs: &mut Vec<DataReloc>,
        at: u64,
        ty: &Type,
        e: &Expr,
        span: Span,
    ) -> Result<(), CError> {
        // peel casts
        let mut e = e;
        while let ExprKind::Cast { expr, .. } = &e.kind {
            e = expr;
        }
        if let Some(v) = self.const_eval(e) {
            let a = at as usize;
            match ty {
                Type::Char => buf[a] = v as u8,
                _ => buf[a..a + 8].copy_from_slice(&v.to_le_bytes()),
            }
            return Ok(());
        }
        // address-valued initializers
        let sym = match &e.kind {
            ExprKind::StrLit(s) => Some(self.string_sym(s)),
            ExprKind::Ident(name) => {
                if self.funcs.contains_key(name) || self.globals.contains_key(name) {
                    Some(self.sym_for(name))
                } else {
                    None
                }
            }
            ExprKind::AddrOf(inner) => match &inner.kind {
                ExprKind::Ident(name) => Some(self.sym_for(name)),
                _ => None,
            },
            _ => None,
        };
        match sym {
            Some(sym) => {
                relocs.push(DataReloc { offset: at, sym, addend: 0 });
                Ok(())
            }
            None => self.terr(span, "global initializer is not a constant"),
        }
    }

    /// Best-effort constant evaluation for initializers and `sizeof`.
    fn const_eval(&self, e: &Expr) -> Option<i64> {
        match &e.kind {
            ExprKind::IntLit(v) => Some(*v),
            ExprKind::CharLit(c) => Some(*c as i64),
            ExprKind::Un { op, expr } => {
                let v = self.const_eval(expr)?;
                Some(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                    UnOp::BitNot => !v,
                })
            }
            ExprKind::Bin { op, lhs, rhs } => {
                let a = self.const_eval(lhs)?;
                let b = self.const_eval(rhs)?;
                match op {
                    BinOp::LogAnd => Some(((a != 0) && (b != 0)) as i64),
                    BinOp::LogOr => Some(((a != 0) || (b != 0)) as i64),
                    other => ast_to_ir_bin(*other).and_then(|ir| ir.eval(a, b)),
                }
            }
            ExprKind::Cond { cond, then_e, else_e } => {
                let c = self.const_eval(cond)?;
                if c != 0 {
                    self.const_eval(then_e)
                } else {
                    self.const_eval(else_e)
                }
            }
            ExprKind::Cast { expr, ty } => {
                let v = self.const_eval(expr)?;
                Some(if matches!(ty, Type::Char) { v & 0xff } else { v })
            }
            ExprKind::SizeofType(t) => self.types.layout_at(t, e.span).ok().map(|l| l.size as i64),
            _ => None,
        }
    }

    // ----- functions ----------------------------------------------------

    fn emit_funcs(&mut self) -> Result<(), CError> {
        let items: Vec<&FuncDef> = self
            .tu
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Func(f) if f.body.is_some() => Some(f),
                _ => None,
            })
            .collect();
        for f in items {
            let body = f.body.as_ref().expect("definition");
            let mut fg = FnCg::new(self, f);
            fg.prologue()?;
            for s in body {
                fg.stmt(s)?;
            }
            // implicit return
            fg.emit(Instr::Ret { value: None });
            let (instrs, nregs, frame_size) = fg.finish()?;
            let sym = self.sym_for(&f.name);
            self.obj.funcs.push(ObjFunc {
                sym,
                params: f.params.len() as u32,
                nregs,
                frame_size,
                body: instrs,
            });
        }
        Ok(())
    }
}

fn ast_to_ir_bin(op: BinOp) -> Option<IrBin> {
    Some(match op {
        BinOp::Add => IrBin::Add,
        BinOp::Sub => IrBin::Sub,
        BinOp::Mul => IrBin::Mul,
        BinOp::Div => IrBin::Div,
        BinOp::Rem => IrBin::Rem,
        BinOp::And => IrBin::And,
        BinOp::Or => IrBin::Or,
        BinOp::Xor => IrBin::Xor,
        BinOp::Shl => IrBin::Shl,
        BinOp::Shr => IrBin::Shr,
        BinOp::Eq => IrBin::Eq,
        BinOp::Ne => IrBin::Ne,
        BinOp::Lt => IrBin::Lt,
        BinOp::Le => IrBin::Le,
        BinOp::Gt => IrBin::Gt,
        BinOp::Ge => IrBin::Ge,
        BinOp::LogAnd | BinOp::LogOr => return None,
    })
}

/// Where a local variable lives.
#[derive(Clone, Debug)]
enum Local {
    /// In a virtual register (scalars whose address is never taken).
    Reg(u32, Type),
    /// In the stack frame at the given offset.
    Slot { offset: i64, ty: Type },
}

/// A generated lvalue.
enum Lv {
    /// A register (scalar local).
    Reg(u32),
    /// Memory at `addr_reg + offset`.
    Mem { addr: u32, offset: i64 },
}

struct LabelId(usize);

enum Fixup {
    Jump { at: usize, label: usize },
    BranchThen { at: usize, label: usize },
    BranchElse { at: usize, label: usize },
}

struct FnCg<'a, 'b> {
    cg: &'b mut Cg<'a>,
    f: &'a FuncDef,
    body: Vec<Instr>,
    next_reg: u32,
    frame_size: u64,
    scopes: Vec<BTreeMap<String, Local>>,
    labels: Vec<Option<usize>>,
    fixups: Vec<Fixup>,
    break_labels: Vec<usize>,
    cont_labels: Vec<usize>,
    addr_taken: BTreeSet<String>,
}

impl<'a, 'b> FnCg<'a, 'b> {
    fn new(cg: &'b mut Cg<'a>, f: &'a FuncDef) -> Self {
        let mut addr_taken = BTreeSet::new();
        if let Some(body) = &f.body {
            for s in body {
                collect_addr_taken_stmt(s, &mut addr_taken);
            }
        }
        FnCg {
            cg,
            f,
            body: Vec::new(),
            next_reg: f.params.len().max(1) as u32,
            frame_size: 0,
            scopes: vec![BTreeMap::new()],
            labels: Vec::new(),
            fixups: Vec::new(),
            break_labels: Vec::new(),
            cont_labels: Vec::new(),
            addr_taken,
        }
    }

    fn terr<T>(&self, span: Span, msg: impl Into<String>) -> Result<T, CError> {
        Err(CError::Type { file: self.cg.tu.file.clone(), span, msg: msg.into() })
    }

    fn emit(&mut self, i: Instr) {
        self.body.push(i);
    }

    fn reg(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn new_label(&mut self) -> LabelId {
        self.labels.push(None);
        LabelId(self.labels.len() - 1)
    }

    fn bind(&mut self, l: &LabelId) {
        self.labels[l.0] = Some(self.body.len());
    }

    fn emit_jump(&mut self, l: &LabelId) {
        self.fixups.push(Fixup::Jump { at: self.body.len(), label: l.0 });
        self.emit(Instr::Jump { target: 0 });
    }

    fn emit_branch(&mut self, cond: u32, then_l: &LabelId, else_l: &LabelId) {
        self.fixups.push(Fixup::BranchThen { at: self.body.len(), label: then_l.0 });
        self.fixups.push(Fixup::BranchElse { at: self.body.len(), label: else_l.0 });
        self.emit(Instr::Branch { cond, then_to: 0, else_to: 0 });
    }

    fn finish(mut self) -> Result<(Vec<Instr>, u32, u32), CError> {
        // Resolve labels (an unbound label is an internal error).
        let resolve = |labels: &Vec<Option<usize>>, l: usize| -> usize {
            labels[l].expect("internal: unbound label")
        };
        for fix in &self.fixups {
            match fix {
                Fixup::Jump { at, label } => {
                    if let Instr::Jump { target } = &mut self.body[*at] {
                        *target = resolve(&self.labels, *label);
                    }
                }
                Fixup::BranchThen { at, label } => {
                    if let Instr::Branch { then_to, .. } = &mut self.body[*at] {
                        *then_to = resolve(&self.labels, *label);
                    }
                }
                Fixup::BranchElse { at, label } => {
                    if let Instr::Branch { else_to, .. } = &mut self.body[*at] {
                        *else_to = resolve(&self.labels, *label);
                    }
                }
            }
        }
        // Jump targets may point one past the end (loops ending at function
        // end); append a Ret to make them valid.
        let n = self.body.len();
        let has_end_target = self.body.iter().any(|i| match i {
            Instr::Jump { target } => *target >= n,
            Instr::Branch { then_to, else_to, .. } => *then_to >= n || *else_to >= n,
            _ => false,
        });
        if has_end_target {
            self.body.push(Instr::Ret { value: None });
        }
        let frame = round_up(self.frame_size, 16) as u32;
        Ok((self.body, self.next_reg, frame))
    }

    fn prologue(&mut self) -> Result<(), CError> {
        for (i, (name, ty)) in self.f.params.iter().enumerate() {
            if !ty.is_scalar() {
                return self.terr(
                    self.f.span,
                    format!("parameter `{name}` must be scalar (pass aggregates by pointer)"),
                );
            }
            if self.addr_taken.contains(name) {
                let offset = self.alloc_slot(ty, self.f.span)?;
                let addr = self.reg();
                self.emit(Instr::FrameAddr { dst: addr, offset });
                self.emit(Instr::Store {
                    addr,
                    offset: 0,
                    src: i as u32,
                    width: TypeTable::width_of(ty),
                });
                self.insert_local(name, Local::Slot { offset, ty: ty.clone() });
            } else {
                self.insert_local(name, Local::Reg(i as u32, ty.clone()));
            }
        }
        Ok(())
    }

    fn alloc_slot(&mut self, ty: &Type, span: Span) -> Result<i64, CError> {
        let l = self.cg.types.layout_at(ty, span)?;
        self.frame_size = round_up(self.frame_size, l.align);
        let off = self.frame_size as i64;
        self.frame_size += l.size;
        Ok(off)
    }

    fn insert_local(&mut self, name: &str, l: Local) {
        self.scopes.last_mut().expect("scope stack nonempty").insert(name.to_string(), l);
    }

    fn lookup_local(&self, name: &str) -> Option<&Local> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    // ----- statements ---------------------------------------------------

    fn stmt(&mut self, s: &'a Stmt) -> Result<(), CError> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Expr(e) => {
                self.rvalue(e)?;
                Ok(())
            }
            Stmt::Block(stmts) => {
                self.scopes.push(BTreeMap::new());
                for s in stmts {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl { name, ty, init, span } => {
                if matches!(ty, Type::Void) {
                    return self.terr(*span, format!("variable `{name}` has type void"));
                }
                let needs_slot = !ty.is_scalar() || self.addr_taken.contains(name);
                if needs_slot {
                    let offset = self.alloc_slot(ty, *span)?;
                    self.insert_local(name, Local::Slot { offset, ty: ty.clone() });
                    if let Some(e) = init {
                        // char buf[] = "…" local initialization
                        if let (Type::Array(elem, _), ExprKind::StrLit(s)) = (ty, &e.kind) {
                            if matches!(elem.as_ref(), Type::Char) {
                                let sym = self.cg.string_sym(s);
                                self.copy_bytes_from_sym(offset, sym, s.len() as u64 + 1);
                                return Ok(());
                            }
                        }
                        if !ty.is_scalar() {
                            return self.terr(
                                *span,
                                "aggregate locals cannot have expression initializers",
                            );
                        }
                        let (v, _) = self.rvalue(e)?;
                        let addr = self.reg();
                        self.emit(Instr::FrameAddr { dst: addr, offset });
                        self.emit(Instr::Store {
                            addr,
                            offset: 0,
                            src: v,
                            width: TypeTable::width_of(ty),
                        });
                    }
                } else {
                    let r = self.reg();
                    self.insert_local(name, Local::Reg(r, ty.clone()));
                    if let Some(e) = init {
                        let (v, _) = self.rvalue(e)?;
                        self.store_lv(&Lv::Reg(r), v, ty, *span)?;
                    }
                }
                Ok(())
            }
            Stmt::If { cond, then_s, else_s } => {
                let then_l = self.new_label();
                let else_l = self.new_label();
                let end_l = self.new_label();
                let (c, _) = self.rvalue(cond)?;
                self.emit_branch(c, &then_l, &else_l);
                self.bind(&then_l);
                self.stmt(then_s)?;
                self.emit_jump(&end_l);
                self.bind(&else_l);
                if let Some(e) = else_s {
                    self.stmt(e)?;
                }
                self.bind(&end_l);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.new_label();
                let body_l = self.new_label();
                let end = self.new_label();
                self.bind(&head);
                let (c, _) = self.rvalue(cond)?;
                self.emit_branch(c, &body_l, &end);
                self.bind(&body_l);
                self.break_labels.push(end.0);
                self.cont_labels.push(head.0);
                self.stmt(body)?;
                self.break_labels.pop();
                self.cont_labels.pop();
                self.emit_jump(&head);
                self.bind(&end);
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let head = self.new_label();
                let check = self.new_label();
                let end = self.new_label();
                self.bind(&head);
                self.break_labels.push(end.0);
                self.cont_labels.push(check.0);
                self.stmt(body)?;
                self.break_labels.pop();
                self.cont_labels.pop();
                self.bind(&check);
                let (c, _) = self.rvalue(cond)?;
                self.emit_branch(c, &head, &end);
                self.bind(&end);
                Ok(())
            }
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(BTreeMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let head = self.new_label();
                let body_l = self.new_label();
                let step_l = self.new_label();
                let end = self.new_label();
                self.bind(&head);
                match cond {
                    Some(c) => {
                        let (r, _) = self.rvalue(c)?;
                        self.emit_branch(r, &body_l, &end);
                    }
                    None => self.emit_jump(&body_l),
                }
                self.bind(&body_l);
                self.break_labels.push(end.0);
                self.cont_labels.push(step_l.0);
                self.stmt(body)?;
                self.break_labels.pop();
                self.cont_labels.pop();
                self.bind(&step_l);
                if let Some(s) = step {
                    self.rvalue(s)?;
                }
                self.emit_jump(&head);
                self.bind(&end);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(v, _span) => {
                match v {
                    Some(e) => {
                        let (r, _) = self.rvalue(e)?;
                        self.emit(Instr::Ret { value: Some(r) });
                    }
                    None => self.emit(Instr::Ret { value: None }),
                }
                Ok(())
            }
            Stmt::Break(span) => match self.break_labels.last() {
                Some(l) => {
                    let l = LabelId(*l);
                    self.emit_jump(&l);
                    Ok(())
                }
                None => self.terr(*span, "break outside loop"),
            },
            Stmt::Continue(span) => match self.cont_labels.last() {
                Some(l) => {
                    let l = LabelId(*l);
                    self.emit_jump(&l);
                    Ok(())
                }
                None => self.terr(*span, "continue outside loop"),
            },
        }
    }

    fn copy_bytes_from_sym(&mut self, frame_offset: i64, sym: SymId, len: u64) {
        // inline byte-copy loop unrolled (strings are short)
        let src = self.reg();
        let dst = self.reg();
        let tmp = self.reg();
        self.emit(Instr::Addr { dst: src, sym, offset: 0 });
        self.emit(Instr::FrameAddr { dst, offset: frame_offset });
        for i in 0..len as i64 {
            self.emit(Instr::Load { dst: tmp, addr: src, offset: i, width: cobj::Width::W1 });
            self.emit(Instr::Store { addr: dst, offset: i, src: tmp, width: cobj::Width::W1 });
        }
    }

    // ----- expressions ----------------------------------------------------

    /// Generate an rvalue: (register holding the value, its type).
    /// Arrays decay to element pointers; struct-typed results are addresses.
    fn rvalue(&mut self, e: &Expr) -> Result<(u32, Type), CError> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let r = self.reg();
                self.emit(Instr::Const { dst: r, value: *v });
                Ok((r, Type::Int))
            }
            ExprKind::CharLit(c) => {
                let r = self.reg();
                self.emit(Instr::Const { dst: r, value: *c as i64 });
                Ok((r, Type::Int))
            }
            ExprKind::StrLit(s) => {
                let sym = self.cg.string_sym(s);
                let r = self.reg();
                self.emit(Instr::Addr { dst: r, sym, offset: 0 });
                Ok((r, Type::Char.ptr()))
            }
            ExprKind::SizeofType(t) => {
                let l = self.cg.types.layout_at(t, e.span)?;
                let r = self.reg();
                self.emit(Instr::Const { dst: r, value: l.size as i64 });
                Ok((r, Type::Int))
            }
            ExprKind::SizeofExpr(inner) => {
                let t = self.type_of(inner)?;
                let l = self.cg.types.layout_at(&t, e.span)?;
                let r = self.reg();
                self.emit(Instr::Const { dst: r, value: l.size as i64 });
                Ok((r, Type::Int))
            }
            ExprKind::Ident(name) => self.rvalue_ident(name, e.span),
            ExprKind::VarArg(idx) => {
                let (i, _) = self.rvalue(idx)?;
                let r = self.reg();
                self.emit(Instr::VarArg { dst: r, idx: i });
                Ok((r, Type::Int))
            }
            ExprKind::Cast { ty, expr } => {
                let (r, _) = self.rvalue(expr)?;
                if matches!(ty, Type::Char) {
                    let mask = self.reg();
                    let out = self.reg();
                    self.emit(Instr::Const { dst: mask, value: 0xff });
                    self.emit(Instr::Bin { op: IrBin::And, dst: out, a: r, b: mask });
                    Ok((out, ty.clone()))
                } else {
                    Ok((r, ty.clone()))
                }
            }
            ExprKind::Un { op, expr } => {
                let (r, _) = self.rvalue(expr)?;
                let out = self.reg();
                let ir = match op {
                    UnOp::Neg => IrUn::Neg,
                    UnOp::Not => IrUn::Not,
                    UnOp::BitNot => IrUn::BitNot,
                };
                self.emit(Instr::Un { op: ir, dst: out, a: r });
                Ok((out, Type::Int))
            }
            ExprKind::Bin { op: BinOp::LogAnd, lhs, rhs } => self.short_circuit(lhs, rhs, true),
            ExprKind::Bin { op: BinOp::LogOr, lhs, rhs } => self.short_circuit(lhs, rhs, false),
            ExprKind::Bin { op, lhs, rhs } => self.binop(*op, lhs, rhs, e.span),
            ExprKind::Assign { op, lhs, rhs } => self.assign(*op, lhs, rhs, e.span),
            ExprKind::Cond { cond, then_e, else_e } => {
                let (c, _) = self.rvalue(cond)?;
                let then_l = self.new_label();
                let else_l = self.new_label();
                let end = self.new_label();
                let out = self.reg();
                self.emit_branch(c, &then_l, &else_l);
                self.bind(&then_l);
                let (tv, tt) = self.rvalue(then_e)?;
                self.emit(Instr::Mov { dst: out, src: tv });
                self.emit_jump(&end);
                self.bind(&else_l);
                let (ev, _) = self.rvalue(else_e)?;
                self.emit(Instr::Mov { dst: out, src: ev });
                self.bind(&end);
                Ok((out, tt))
            }
            ExprKind::Call { callee, args } => self.call(callee, args, e.span),
            ExprKind::Deref(inner) => {
                let (p, pt) = self.rvalue(inner)?;
                let pointee = match pt.pointee() {
                    Some(t) => t.clone(),
                    None => return self.terr(e.span, "dereference of non-pointer"),
                };
                self.load_from_addr(p, 0, pointee)
            }
            ExprKind::Index { base, index } => {
                let (addr, elem) = self.index_addr(base, index, e.span)?;
                self.load_from_addr(addr, 0, elem)
            }
            ExprKind::Member { .. } => {
                let (lv, ty) = self.lvalue(e)?;
                self.load_lv(lv, ty, e.span)
            }
            ExprKind::AddrOf(inner) => {
                // &func is just the function's address
                if let ExprKind::Ident(name) = &inner.kind {
                    if self.lookup_local(name).is_none() && self.cg.funcs.contains_key(name) {
                        let ft = self.cg.funcs[name].ty.clone();
                        let sym = self.cg.sym_for(name);
                        let r = self.reg();
                        self.emit(Instr::Addr { dst: r, sym, offset: 0 });
                        return Ok((r, Type::Func(Box::new(ft)).ptr()));
                    }
                }
                let (lv, ty) = self.lvalue(inner)?;
                match lv {
                    Lv::Reg(_) => self.terr(e.span, "cannot take the address of this value"),
                    Lv::Mem { addr, offset } => {
                        if offset == 0 {
                            Ok((addr, ty.ptr()))
                        } else {
                            let off = self.reg();
                            let out = self.reg();
                            self.emit(Instr::Const { dst: off, value: offset });
                            self.emit(Instr::Bin { op: IrBin::Add, dst: out, a: addr, b: off });
                            Ok((out, ty.ptr()))
                        }
                    }
                }
            }
            ExprKind::IncDec { pre, inc, expr } => {
                let (lv, ty) = self.lvalue(expr)?;
                let (cur, _) = self.load_lv(self.clone_lv(&lv), ty.clone(), e.span)?;
                // Copy out of the variable's own register: storing the new
                // value must not change what the old value reads as.
                let old = self.reg();
                self.emit(Instr::Mov { dst: old, src: cur });
                let step = match &ty {
                    Type::Ptr(p) => self.cg.types.layout_at(p, e.span)?.size as i64,
                    _ => 1,
                };
                let one = self.reg();
                let newv = self.reg();
                self.emit(Instr::Const { dst: one, value: step });
                let op = if *inc { IrBin::Add } else { IrBin::Sub };
                self.emit(Instr::Bin { op, dst: newv, a: old, b: one });
                self.store_lv(&lv, newv, &ty, e.span)?;
                Ok((if *pre { newv } else { old }, ty))
            }
        }
    }

    fn clone_lv(&self, lv: &Lv) -> Lv {
        match lv {
            Lv::Reg(r) => Lv::Reg(*r),
            Lv::Mem { addr, offset } => Lv::Mem { addr: *addr, offset: *offset },
        }
    }

    fn rvalue_ident(&mut self, name: &str, span: Span) -> Result<(u32, Type), CError> {
        if let Some(local) = self.lookup_local(name).cloned() {
            return match local {
                Local::Reg(r, ty) => Ok((r, ty)),
                Local::Slot { offset, ty } => match &ty {
                    Type::Array(elem, _) => {
                        let r = self.reg();
                        self.emit(Instr::FrameAddr { dst: r, offset });
                        Ok((r, elem.as_ref().clone().ptr()))
                    }
                    Type::Struct(_) => {
                        let r = self.reg();
                        self.emit(Instr::FrameAddr { dst: r, offset });
                        Ok((r, ty))
                    }
                    _ => {
                        let a = self.reg();
                        let r = self.reg();
                        self.emit(Instr::FrameAddr { dst: a, offset });
                        self.emit(Instr::Load {
                            dst: r,
                            addr: a,
                            offset: 0,
                            width: TypeTable::width_of(&ty),
                        });
                        Ok((r, ty))
                    }
                },
            };
        }
        if let Some(sig) = self.cg.funcs.get(name).cloned() {
            let sym = self.cg.sym_for(name);
            let r = self.reg();
            self.emit(Instr::Addr { dst: r, sym, offset: 0 });
            return Ok((r, Type::Func(Box::new(sig.ty)).ptr()));
        }
        if let Some(g) = self.cg.globals.get(name).cloned() {
            let sym = self.cg.sym_for(name);
            let a = self.reg();
            self.emit(Instr::Addr { dst: a, sym, offset: 0 });
            return match &g.ty {
                Type::Array(elem, _) => Ok((a, elem.as_ref().clone().ptr())),
                Type::Struct(_) => Ok((a, g.ty.clone())),
                _ => {
                    let r = self.reg();
                    self.emit(Instr::Load {
                        dst: r,
                        addr: a,
                        offset: 0,
                        width: TypeTable::width_of(&g.ty),
                    });
                    Ok((r, g.ty.clone()))
                }
            };
        }
        self.terr(span, format!("unknown identifier `{name}`"))
    }

    fn short_circuit(
        &mut self,
        lhs: &Expr,
        rhs: &Expr,
        is_and: bool,
    ) -> Result<(u32, Type), CError> {
        let out = self.reg();
        let rhs_l = self.new_label();
        let short_l = self.new_label();
        let end = self.new_label();
        let (a, _) = self.rvalue(lhs)?;
        if is_and {
            self.emit_branch(a, &rhs_l, &short_l);
        } else {
            self.emit_branch(a, &short_l, &rhs_l);
        }
        self.bind(&rhs_l);
        let (b, _) = self.rvalue(rhs)?;
        // normalize to 0/1
        let zero = self.reg();
        self.emit(Instr::Const { dst: zero, value: 0 });
        self.emit(Instr::Bin { op: IrBin::Ne, dst: out, a: b, b: zero });
        self.emit_jump(&end);
        self.bind(&short_l);
        self.emit(Instr::Const { dst: out, value: if is_and { 0 } else { 1 } });
        self.bind(&end);
        Ok((out, Type::Int))
    }

    fn binop(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> Result<(u32, Type), CError> {
        let (a, at) = self.rvalue(lhs)?;
        let (b, bt) = self.rvalue(rhs)?;
        let ir = ast_to_ir_bin(op).expect("short-circuit handled elsewhere");
        // pointer arithmetic
        match (op, &at, &bt) {
            (BinOp::Add | BinOp::Sub, Type::Ptr(p), Type::Int | Type::Char) => {
                let size = self.cg.types.layout_at(p, span)?.size;
                let scaled = self.scale(b, size);
                let out = self.reg();
                self.emit(Instr::Bin { op: ir, dst: out, a, b: scaled });
                return Ok((out, at.clone()));
            }
            (BinOp::Add, Type::Int | Type::Char, Type::Ptr(p)) => {
                let size = self.cg.types.layout_at(p, span)?.size;
                let scaled = self.scale(a, size);
                let out = self.reg();
                self.emit(Instr::Bin { op: ir, dst: out, a: scaled, b });
                return Ok((out, bt.clone()));
            }
            (BinOp::Sub, Type::Ptr(p), Type::Ptr(_)) => {
                let size = self.cg.types.layout_at(p, span)?.size;
                let diff = self.reg();
                self.emit(Instr::Bin { op: IrBin::Sub, dst: diff, a, b });
                if size > 1 {
                    let s = self.reg();
                    let out = self.reg();
                    self.emit(Instr::Const { dst: s, value: size as i64 });
                    self.emit(Instr::Bin { op: IrBin::Div, dst: out, a: diff, b: s });
                    return Ok((out, Type::Int));
                }
                return Ok((diff, Type::Int));
            }
            _ => {}
        }
        let out = self.reg();
        self.emit(Instr::Bin { op: ir, dst: out, a, b });
        let ty = match op {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => Type::Int,
            _ => {
                if matches!(at, Type::Ptr(_)) {
                    at
                } else {
                    Type::Int
                }
            }
        };
        Ok((out, ty))
    }

    fn scale(&mut self, r: u32, size: u64) -> u32 {
        if size == 1 {
            return r;
        }
        let s = self.reg();
        let out = self.reg();
        self.emit(Instr::Const { dst: s, value: size as i64 });
        self.emit(Instr::Bin { op: IrBin::Mul, dst: out, a: r, b: s });
        out
    }

    fn assign(
        &mut self,
        op: Option<BinOp>,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> Result<(u32, Type), CError> {
        let (lv, ty) = self.lvalue(lhs)?;
        if !ty.is_scalar() {
            return self.terr(span, "aggregate assignment is not supported (copy members)");
        }
        let value = match op {
            None => {
                let (r, _) = self.rvalue(rhs)?;
                r
            }
            Some(op) => {
                let (old, _) = self.load_lv(self.clone_lv(&lv), ty.clone(), span)?;
                let (r, rt) = self.rvalue(rhs)?;
                let ir = ast_to_ir_bin(op).ok_or_else(|| CError::Type {
                    file: self.cg.tu.file.clone(),
                    span,
                    msg: "&&= / ||= are not valid".into(),
                })?;
                // pointer += int scaling
                let r = match (&ty, &rt) {
                    (Type::Ptr(p), _) if matches!(op, BinOp::Add | BinOp::Sub) => {
                        let size = self.cg.types.layout_at(p, span)?.size;
                        self.scale(r, size)
                    }
                    _ => r,
                };
                let out = self.reg();
                self.emit(Instr::Bin { op: ir, dst: out, a: old, b: r });
                out
            }
        };
        self.store_lv(&lv, value, &ty, span)?;
        Ok((value, ty))
    }

    fn call(&mut self, callee: &Expr, args: &[Expr], span: Span) -> Result<(u32, Type), CError> {
        // Evaluate args first.
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            let (r, t) = self.rvalue(a)?;
            if matches!(t, Type::Struct(_)) {
                return self.terr(a.span, "cannot pass a struct by value (pass a pointer)");
            }
            argv.push(r);
        }
        // Direct call to a named function (not shadowed by a local).
        if let ExprKind::Ident(name) = &callee.kind {
            if self.lookup_local(name).is_none() && !self.cg.globals.contains_key(name) {
                let sig = match self.cg.funcs.get(name) {
                    Some(s) => s.clone(),
                    None => {
                        // implicit declaration (C89 style): int name(...)
                        let sig = FuncSig {
                            ty: FuncType { ret: Type::Int, params: vec![], varargs: true },
                            defined: false,
                            is_static: false,
                            implicit: true,
                        };
                        self.cg.funcs.insert(name.clone(), sig.clone());
                        sig
                    }
                };
                if !sig.implicit {
                    let want = sig.ty.params.len();
                    if args.len() < want || (!sig.ty.varargs && args.len() > want) {
                        return self.terr(
                            span,
                            format!("`{name}` expects {want} argument(s), got {}", args.len()),
                        );
                    }
                }
                let sym = self.cg.sym_for(name);
                let out = self.reg();
                self.emit(Instr::Call { dst: Some(out), target: sym, args: argv });
                let ret =
                    if matches!(sig.ty.ret, Type::Void) { Type::Int } else { sig.ty.ret.clone() };
                return Ok((out, ret));
            }
        }
        // Indirect call through a function-pointer value.
        let (f, ft) = self.rvalue(callee)?;
        let ret = match &ft {
            Type::Ptr(inner) => match inner.as_ref() {
                Type::Func(sig) => {
                    let want = sig.params.len();
                    if args.len() < want || (!sig.varargs && args.len() > want) {
                        return self.terr(
                            span,
                            format!(
                                "function pointer expects {want} argument(s), got {}",
                                args.len()
                            ),
                        );
                    }
                    sig.ret.clone()
                }
                _ => return self.terr(span, "call of non-function pointer"),
            },
            _ => return self.terr(span, "call of non-function value"),
        };
        let out = self.reg();
        self.emit(Instr::CallInd { dst: Some(out), target: f, args: argv });
        let ret = if matches!(ret, Type::Void) { Type::Int } else { ret };
        Ok((out, ret))
    }

    fn index_addr(&mut self, base: &Expr, index: &Expr, span: Span) -> Result<(u32, Type), CError> {
        let (b, bt) = self.rvalue(base)?;
        let elem = match bt.pointee() {
            Some(t) => t.clone(),
            None => return self.terr(span, "indexing a non-pointer"),
        };
        let (i, _) = self.rvalue(index)?;
        let size = self.cg.types.layout_at(&elem, span)?.size;
        let scaled = self.scale(i, size);
        let out = self.reg();
        self.emit(Instr::Bin { op: IrBin::Add, dst: out, a: b, b: scaled });
        Ok((out, elem))
    }

    /// Load a value of type `ty` from `[addr + offset]`, decaying arrays and
    /// structs to addresses.
    fn load_from_addr(&mut self, addr: u32, offset: i64, ty: Type) -> Result<(u32, Type), CError> {
        match &ty {
            Type::Array(elem, _) => {
                let out = self.offset_reg(addr, offset);
                Ok((out, elem.as_ref().clone().ptr()))
            }
            Type::Struct(_) => {
                let out = self.offset_reg(addr, offset);
                Ok((out, ty))
            }
            _ => {
                let out = self.reg();
                self.emit(Instr::Load { dst: out, addr, offset, width: TypeTable::width_of(&ty) });
                Ok((out, ty))
            }
        }
    }

    fn offset_reg(&mut self, addr: u32, offset: i64) -> u32 {
        if offset == 0 {
            return addr;
        }
        let o = self.reg();
        let out = self.reg();
        self.emit(Instr::Const { dst: o, value: offset });
        self.emit(Instr::Bin { op: IrBin::Add, dst: out, a: addr, b: o });
        out
    }

    fn load_lv(&mut self, lv: Lv, ty: Type, span: Span) -> Result<(u32, Type), CError> {
        match lv {
            Lv::Reg(r) => Ok((r, ty)),
            Lv::Mem { addr, offset } => {
                if !ty.is_scalar() {
                    return self.load_from_addr(addr, offset, ty);
                }
                let _ = span;
                let out = self.reg();
                self.emit(Instr::Load { dst: out, addr, offset, width: TypeTable::width_of(&ty) });
                Ok((out, ty))
            }
        }
    }

    fn store_lv(&mut self, lv: &Lv, value: u32, ty: &Type, span: Span) -> Result<(), CError> {
        match lv {
            Lv::Reg(r) => {
                // `char` variables truncate on store, matching the W1 store
                // that a memory-resident char would get.
                if matches!(ty, Type::Char) {
                    let mask = self.reg();
                    self.emit(Instr::Const { dst: mask, value: 0xff });
                    self.emit(Instr::Bin { op: IrBin::And, dst: *r, a: value, b: mask });
                } else {
                    self.emit(Instr::Mov { dst: *r, src: value });
                }
                Ok(())
            }
            Lv::Mem { addr, offset } => {
                if !ty.is_scalar() {
                    return self.terr(span, "cannot store an aggregate");
                }
                self.emit(Instr::Store {
                    addr: *addr,
                    offset: *offset,
                    src: value,
                    width: TypeTable::width_of(ty),
                });
                Ok(())
            }
        }
    }

    fn lvalue(&mut self, e: &Expr) -> Result<(Lv, Type), CError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(local) = self.lookup_local(name).cloned() {
                    return match local {
                        Local::Reg(r, ty) => Ok((Lv::Reg(r), ty)),
                        Local::Slot { offset, ty } => {
                            let a = self.reg();
                            self.emit(Instr::FrameAddr { dst: a, offset });
                            Ok((Lv::Mem { addr: a, offset: 0 }, ty))
                        }
                    };
                }
                if let Some(g) = self.cg.globals.get(name).cloned() {
                    let sym = self.cg.sym_for(name);
                    let a = self.reg();
                    self.emit(Instr::Addr { dst: a, sym, offset: 0 });
                    return Ok((Lv::Mem { addr: a, offset: 0 }, g.ty));
                }
                self.terr(e.span, format!("`{name}` is not an assignable variable"))
            }
            ExprKind::Deref(p) => {
                let (r, pt) = self.rvalue(p)?;
                match pt.pointee() {
                    Some(t) => Ok((Lv::Mem { addr: r, offset: 0 }, t.clone())),
                    None => self.terr(e.span, "dereference of non-pointer"),
                }
            }
            ExprKind::Index { base, index } => {
                let (addr, elem) = self.index_addr(base, index, e.span)?;
                Ok((Lv::Mem { addr, offset: 0 }, elem))
            }
            ExprKind::Member { base, field, arrow } => {
                let (addr, offset, sname) = if *arrow {
                    let (p, pt) = self.rvalue(base)?;
                    match pt.pointee() {
                        Some(Type::Struct(s)) => (p, 0i64, s.clone()),
                        _ => return self.terr(e.span, "`->` on non-struct-pointer"),
                    }
                } else {
                    let (lv, ty) = self.lvalue(base)?;
                    match (lv, ty) {
                        (Lv::Mem { addr, offset }, Type::Struct(s)) => (addr, offset, s),
                        _ => return self.terr(e.span, "`.` on non-struct value"),
                    }
                };
                let (fty, foff) = match self.cg.types.field(&sname, field) {
                    Some((t, o)) => (t.clone(), o),
                    None => {
                        return self
                            .terr(e.span, format!("struct `{sname}` has no field `{field}`"))
                    }
                };
                Ok((Lv::Mem { addr, offset: offset + foff as i64 }, fty))
            }
            ExprKind::Cast { expr, .. } => self.lvalue(expr),
            _ => self.terr(e.span, "expression is not an lvalue"),
        }
    }

    /// Best-effort static type of an expression (for `sizeof expr`).
    fn type_of(&mut self, e: &Expr) -> Result<Type, CError> {
        Ok(match &e.kind {
            ExprKind::IntLit(_)
            | ExprKind::CharLit(_)
            | ExprKind::SizeofExpr(_)
            | ExprKind::SizeofType(_) => Type::Int,
            ExprKind::StrLit(s) => Type::Array(Box::new(Type::Char), s.len() as u64 + 1),
            ExprKind::Ident(name) => {
                if let Some(l) = self.lookup_local(name) {
                    match l {
                        Local::Reg(_, t) => t.clone(),
                        Local::Slot { ty, .. } => ty.clone(),
                    }
                } else if let Some(g) = self.cg.globals.get(name) {
                    g.ty.clone()
                } else if let Some(f) = self.cg.funcs.get(name) {
                    Type::Func(Box::new(f.ty.clone())).ptr()
                } else {
                    return self.terr(e.span, format!("unknown identifier `{name}`"));
                }
            }
            ExprKind::Deref(p) => {
                let t = self.type_of(p)?;
                match t.pointee() {
                    Some(t) => t.clone(),
                    None => return self.terr(e.span, "dereference of non-pointer"),
                }
            }
            ExprKind::AddrOf(inner) => self.type_of(inner)?.ptr(),
            ExprKind::Index { base, .. } => {
                let t = self.type_of(base)?;
                match t {
                    Type::Ptr(p) => *p,
                    Type::Array(elem, _) => *elem,
                    _ => return self.terr(e.span, "indexing a non-pointer"),
                }
            }
            ExprKind::Member { base, field, arrow } => {
                let bt = self.type_of(base)?;
                let sname = match (&bt, arrow) {
                    (Type::Ptr(inner), true) => match inner.as_ref() {
                        Type::Struct(s) => s.clone(),
                        _ => return self.terr(e.span, "`->` on non-struct-pointer"),
                    },
                    (Type::Struct(s), false) => s.clone(),
                    _ => return self.terr(e.span, "member access on non-struct"),
                };
                match self.cg.types.field(&sname, field) {
                    Some((t, _)) => t.clone(),
                    None => return self.terr(e.span, format!("no field `{field}`")),
                }
            }
            ExprKind::Cast { ty, .. } => ty.clone(),
            ExprKind::Call { callee, .. } => {
                let t = self.type_of(callee)?;
                match t {
                    Type::Ptr(inner) => match *inner {
                        Type::Func(f) => f.ret,
                        _ => Type::Int,
                    },
                    _ => Type::Int,
                }
            }
            ExprKind::Assign { lhs, .. } => self.type_of(lhs)?,
            ExprKind::Cond { then_e, .. } => self.type_of(then_e)?,
            ExprKind::Bin { lhs, .. } => self.type_of(lhs)?,
            _ => Type::Int,
        })
    }
}

fn collect_addr_taken_stmt(s: &Stmt, out: &mut BTreeSet<String>) {
    match s {
        Stmt::Expr(e) => collect_addr_taken_expr(e, out),
        Stmt::Decl { init: Some(e), .. } => collect_addr_taken_expr(e, out),
        Stmt::If { cond, then_s, else_s } => {
            collect_addr_taken_expr(cond, out);
            collect_addr_taken_stmt(then_s, out);
            if let Some(e) = else_s {
                collect_addr_taken_stmt(e, out);
            }
        }
        Stmt::While { cond, body } => {
            collect_addr_taken_expr(cond, out);
            collect_addr_taken_stmt(body, out);
        }
        Stmt::DoWhile { body, cond } => {
            collect_addr_taken_stmt(body, out);
            collect_addr_taken_expr(cond, out);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                collect_addr_taken_stmt(i, out);
            }
            if let Some(c) = cond {
                collect_addr_taken_expr(c, out);
            }
            if let Some(s2) = step {
                collect_addr_taken_expr(s2, out);
            }
            collect_addr_taken_stmt(body, out);
        }
        Stmt::Return(Some(e), _) => collect_addr_taken_expr(e, out),
        Stmt::Block(ss) => {
            for s in ss {
                collect_addr_taken_stmt(s, out);
            }
        }
        _ => {}
    }
}

fn collect_addr_taken_expr(e: &Expr, out: &mut BTreeSet<String>) {
    if let ExprKind::AddrOf(inner) = &e.kind {
        if let ExprKind::Ident(name) = &inner.kind {
            out.insert(name.clone());
        }
    }
    // recurse
    match &e.kind {
        ExprKind::Bin { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            collect_addr_taken_expr(lhs, out);
            collect_addr_taken_expr(rhs, out);
        }
        ExprKind::Un { expr, .. }
        | ExprKind::Deref(expr)
        | ExprKind::AddrOf(expr)
        | ExprKind::Cast { expr, .. }
        | ExprKind::SizeofExpr(expr)
        | ExprKind::IncDec { expr, .. }
        | ExprKind::VarArg(expr) => collect_addr_taken_expr(expr, out),
        ExprKind::Cond { cond, then_e, else_e } => {
            collect_addr_taken_expr(cond, out);
            collect_addr_taken_expr(then_e, out);
            collect_addr_taken_expr(else_e, out);
        }
        ExprKind::Call { callee, args } => {
            collect_addr_taken_expr(callee, out);
            for a in args {
                collect_addr_taken_expr(a, out);
            }
        }
        ExprKind::Index { base, index } => {
            collect_addr_taken_expr(base, out);
            collect_addr_taken_expr(index, out);
        }
        ExprKind::Member { base, .. } => collect_addr_taken_expr(base, out),
        _ => {}
    }
}
