//! Diagnostics for the mini-C compiler.

use std::fmt;

use crate::token::Span;

/// A compile error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CError {
    /// Preprocessor error.
    Pp { file: String, line: u32, msg: String },
    /// Lexical error.
    Lex { file: String, span: Span, msg: String },
    /// Syntax error.
    Parse { file: String, span: Span, msg: String },
    /// Type or name-resolution error.
    Type { file: String, span: Span, msg: String },
}

impl CError {
    /// The human-readable message part.
    pub fn message(&self) -> &str {
        match self {
            CError::Pp { msg, .. }
            | CError::Lex { msg, .. }
            | CError::Parse { msg, .. }
            | CError::Type { msg, .. } => msg,
        }
    }
}

impl fmt::Display for CError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CError::Pp { file, line, msg } => write!(f, "{file}:{line}: preprocessor: {msg}"),
            CError::Lex { file, span, msg } => write!(f, "{file}:{span}: lex: {msg}"),
            CError::Parse { file, span, msg } => write!(f, "{file}:{span}: parse: {msg}"),
            CError::Type { file, span, msg } => write!(f, "{file}:{span}: type: {msg}"),
        }
    }
}

impl std::error::Error for CError {}
