//! Pretty-printer for mini-C.
//!
//! Emits compilable source from an AST; `parse(print(ast))` reaches a
//! fixed point (checked against the whole component corpus in
//! `tests/printer_roundtrip.rs`). Used for debugging flattened merges and
//! as a stress test of parser/AST agreement. Expressions are printed fully
//! parenthesized, so no precedence decisions can go wrong.

use std::fmt::Write as _;

use crate::ast::*;

/// Render a translation unit as mini-C source.
pub fn print_tu(tu: &TranslationUnit) -> String {
    let mut out = String::new();
    for item in &tu.items {
        match item {
            Item::Struct(s) => {
                if s.fields.is_empty() {
                    let _ = writeln!(out, "struct {};", s.name);
                } else {
                    let _ = writeln!(out, "struct {} {{", s.name);
                    for (name, ty) in &s.fields {
                        let _ = writeln!(out, "    {};", decl(ty, name));
                    }
                    let _ = writeln!(out, "}};");
                }
            }
            Item::Global(g) => {
                let storage = storage_prefix(g.storage);
                match &g.init {
                    Some(init) => {
                        let _ = writeln!(
                            out,
                            "{storage}{} = {};",
                            decl(&g.ty, &g.name),
                            init_str(init)
                        );
                    }
                    None => {
                        let _ = writeln!(out, "{storage}{};", decl(&g.ty, &g.name));
                    }
                }
            }
            Item::Func(f) => {
                let storage =
                    storage_prefix(if f.body.is_some() { f.storage } else { Storage::Public });
                let params = if f.params.is_empty() && !f.varargs {
                    String::new()
                } else {
                    let mut ps: Vec<String> = f.params.iter().map(|(n, t)| decl(t, n)).collect();
                    if f.varargs {
                        ps.push("...".to_string());
                    }
                    ps.join(", ")
                };
                let head = format!("{storage}{} {}({params})", ret_str(&f.ret), f.name);
                match &f.body {
                    None => {
                        let _ = writeln!(out, "{head};");
                    }
                    Some(body) => {
                        let _ = writeln!(out, "{head} {{");
                        for s in body {
                            stmt(&mut out, s, 1);
                        }
                        let _ = writeln!(out, "}}");
                    }
                }
            }
        }
    }
    out
}

fn storage_prefix(s: Storage) -> &'static str {
    match s {
        Storage::Public => "",
        Storage::Static => "static ",
        Storage::Extern => "extern ",
    }
}

fn ret_str(t: &Type) -> String {
    match t {
        Type::Int => "int".into(),
        Type::Char => "char".into(),
        Type::Void => "void".into(),
        Type::Ptr(inner) => format!("{}*", ret_str(inner)),
        Type::Struct(n) => format!("struct {n}"),
        other => format!("/*?*/ {other:?}"),
    }
}

/// Render a C declarator for `ty` with the given name.
fn decl(ty: &Type, name: &str) -> String {
    match ty {
        Type::Int => format!("int {name}"),
        Type::Char => format!("char {name}"),
        Type::Void => format!("void {name}"),
        Type::Struct(s) => format!("struct {s} {name}"),
        Type::Array(elem, n) => {
            // arrays of function pointers need the (*name[n])(…) shape
            if let Type::Ptr(inner) = elem.as_ref() {
                if let Type::Func(ft) = inner.as_ref() {
                    return fnptr(ft, &format!("{name}[{n}]"));
                }
            }
            decl(elem, &format!("{name}[{n}]"))
        }
        Type::Ptr(inner) => match inner.as_ref() {
            Type::Func(ft) => fnptr(ft, name),
            _ => decl(inner, &format!("*{name}")),
        },
        Type::Func(ft) => fnptr(ft, name), // bare function types print as pointers
    }
}

fn fnptr(ft: &FuncType, name: &str) -> String {
    let mut params: Vec<String> = ft.params.iter().map(|t| decl(t, "")).collect();
    if ft.varargs {
        params.push("...".into());
    }
    let params: Vec<String> = params.iter().map(|p| p.trim_end().to_string()).collect();
    format!("{} (*{name})({})", ret_str(&ft.ret), params.join(", "))
}

fn init_str(i: &Init) -> String {
    match i {
        Init::Expr(e) => expr(e),
        Init::List(items) => {
            let parts: Vec<String> = items.iter().map(init_str).collect();
            format!("{{ {} }}", parts.join(", "))
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Empty => {
            indent(out, level);
            out.push_str(";\n");
        }
        Stmt::Expr(e) => {
            indent(out, level);
            let _ = writeln!(out, "{};", expr(e));
        }
        Stmt::Decl { name, ty, init, .. } => {
            indent(out, level);
            match init {
                Some(e) => {
                    let _ = writeln!(out, "{} = {};", decl(ty, name), expr(e));
                }
                None => {
                    let _ = writeln!(out, "{};", decl(ty, name));
                }
            }
        }
        Stmt::If { cond, then_s, else_s } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            stmt_body(out, then_s, level + 1);
            indent(out, level);
            match else_s {
                Some(e) => {
                    let _ = writeln!(out, "}} else {{");
                    stmt_body(out, e, level + 1);
                    indent(out, level);
                    let _ = writeln!(out, "}}");
                }
                None => {
                    let _ = writeln!(out, "}}");
                }
            }
        }
        Stmt::While { cond, body } => {
            indent(out, level);
            let _ = writeln!(out, "while ({}) {{", expr(cond));
            stmt_body(out, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::DoWhile { body, cond } => {
            indent(out, level);
            let _ = writeln!(out, "do {{");
            stmt_body(out, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}} while ({});", expr(cond));
        }
        Stmt::For { init, cond, step, body } => {
            indent(out, level);
            let init_s = match init {
                Some(i) => {
                    // render the init statement inline, without its `;\n`
                    let mut tmp = String::new();
                    stmt(&mut tmp, i, 0);
                    tmp.trim_end().trim_end_matches(';').to_string()
                }
                None => String::new(),
            };
            let cond_s = cond.as_ref().map(expr).unwrap_or_default();
            let step_s = step.as_ref().map(expr).unwrap_or_default();
            let _ = writeln!(out, "for ({init_s}; {cond_s}; {step_s}) {{");
            stmt_body(out, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::Return(v, _) => {
            indent(out, level);
            match v {
                Some(e) => {
                    let _ = writeln!(out, "return {};", expr(e));
                }
                None => {
                    let _ = writeln!(out, "return;");
                }
            }
        }
        Stmt::Break(_) => {
            indent(out, level);
            out.push_str("break;\n");
        }
        Stmt::Continue(_) => {
            indent(out, level);
            out.push_str("continue;\n");
        }
        Stmt::Block(ss) => {
            indent(out, level);
            out.push_str("{\n");
            for s in ss {
                stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

/// Print a statement that is the body of a control structure: blocks are
/// spliced (their braces come from the parent), others print normally.
fn stmt_body(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Block(ss) => {
            for s in ss {
                stmt(out, s, level);
            }
        }
        other => stmt(out, other, level),
    }
}

fn bin_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::LogAnd => "&&",
        BinOp::LogOr => "||",
    }
}

fn escape(bytes: &[u8]) -> String {
    let mut s = String::new();
    for &b in bytes {
        match b {
            b'\n' => s.push_str("\\n"),
            b'\t' => s.push_str("\\t"),
            b'\r' => s.push_str("\\r"),
            0 => s.push_str("\\0"),
            b'\\' => s.push_str("\\\\"),
            b'"' => s.push_str("\\\""),
            other => s.push(other as char),
        }
    }
    s
}

/// Fully parenthesized expression rendering.
pub fn expr(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::CharLit(c) => match *c {
            b'\n' => "'\\n'".into(),
            b'\t' => "'\\t'".into(),
            b'\'' => "'\\''".into(),
            b'\\' => "'\\\\'".into(),
            0 => "'\\0'".into(),
            c if c.is_ascii_graphic() || c == b' ' => format!("'{}'", c as char),
            c => (c as i64).to_string(),
        },
        ExprKind::StrLit(s) => format!("\"{}\"", escape(s)),
        ExprKind::Ident(n) => n.clone(),
        ExprKind::Bin { op, lhs, rhs } => {
            format!("({} {} {})", expr(lhs), bin_op(*op), expr(rhs))
        }
        ExprKind::Un { op, expr: inner } => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            format!("({o}{})", expr(inner))
        }
        ExprKind::Assign { op, lhs, rhs } => {
            let o = match op {
                None => "=".to_string(),
                Some(b) => format!("{}=", bin_op(*b)),
            };
            format!("({} {o} {})", expr(lhs), expr(rhs))
        }
        ExprKind::Cond { cond, then_e, else_e } => {
            format!("({} ? {} : {})", expr(cond), expr(then_e), expr(else_e))
        }
        ExprKind::Call { callee, args } => {
            let a: Vec<String> = args.iter().map(expr).collect();
            format!("{}({})", expr(callee), a.join(", "))
        }
        ExprKind::Index { base, index } => format!("{}[{}]", expr(base), expr(index)),
        ExprKind::Member { base, field, arrow } => {
            format!("{}{}{}", expr(base), if *arrow { "->" } else { "." }, field)
        }
        ExprKind::Deref(inner) => format!("(*{})", expr(inner)),
        ExprKind::AddrOf(inner) => format!("(&{})", expr(inner)),
        ExprKind::Cast { ty, expr: inner } => {
            format!("(({}){})", cast_ty(ty), expr(inner))
        }
        ExprKind::SizeofType(t) => format!("sizeof({})", cast_ty(t)),
        ExprKind::SizeofExpr(inner) => format!("sizeof {}", expr(inner)),
        ExprKind::IncDec { pre, inc, expr: inner } => {
            let op = if *inc { "++" } else { "--" };
            if *pre {
                format!("({op}{})", expr(inner))
            } else {
                format!("({}{op})", expr(inner))
            }
        }
        ExprKind::VarArg(inner) => format!("__vararg({})", expr(inner)),
    }
}

fn cast_ty(t: &Type) -> String {
    match t {
        Type::Int => "int".into(),
        Type::Char => "char".into(),
        Type::Void => "void".into(),
        Type::Ptr(inner) => format!("{}*", cast_ty(inner)),
        Type::Struct(n) => format!("struct {n}"),
        other => format!("{other:?}"),
    }
}
