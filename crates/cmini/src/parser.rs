//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::error::CError;
use crate::token::{lex, Span, Tok, Token};

/// Parse a (preprocessed) mini-C source string into a translation unit.
pub fn parse(file: &str, src: &str) -> Result<TranslationUnit, CError> {
    let tokens = lex(file, src)?;
    let mut p = Parser { file: file.to_string(), toks: tokens, pos: 0 };
    p.translation_unit()
}

struct Parser {
    file: String,
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CError> {
        Err(CError::Parse { file: self.file.clone(), span: self.span(), msg: msg.into() })
    }

    fn expect(&mut self, t: Tok) -> Result<(), CError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    // ----- types ------------------------------------------------------

    fn at_type_start(&self) -> bool {
        matches!(self.peek(), Tok::KwInt | Tok::KwChar | Tok::KwVoid | Tok::KwStruct)
    }

    /// Base type: `int`, `char`, `void`, `struct Name`.
    fn base_type(&mut self) -> Result<Type, CError> {
        match self.bump() {
            Tok::KwInt => Ok(Type::Int),
            Tok::KwChar => Ok(Type::Char),
            Tok::KwVoid => Ok(Type::Void),
            Tok::KwStruct => {
                let name = self.ident()?;
                Ok(Type::Struct(name))
            }
            other => self.err(format!("expected type, found {other}")),
        }
    }

    /// Abstract type for casts and `sizeof`: base type plus `*`s.
    fn type_name(&mut self) -> Result<Type, CError> {
        let mut t = self.base_type()?;
        while self.eat(Tok::Star) {
            t = t.ptr();
        }
        Ok(t)
    }

    /// Parse a declarator after the base type. Returns (name, full type).
    /// Handles `*`s, plain names, array suffixes, function-pointer
    /// declarators `(*name)(params)`, and function declarators
    /// `name(params)` (the latter only when `allow_func`).
    fn declarator(&mut self, base: Type, allow_func: bool) -> Result<(String, Type), CError> {
        let mut t = base;
        while self.eat(Tok::Star) {
            t = t.ptr();
        }
        // Function pointer: ( * name ) ( params )
        if *self.peek() == Tok::LParen && *self.peek2() == Tok::Star {
            self.bump(); // (
            self.bump(); // *
            let name = self.ident()?;
            // optional array of function pointers: (*name[N])(params)
            let arr = if self.eat(Tok::LBracket) {
                let n = match self.bump() {
                    Tok::Int(v) if v >= 0 => v as u64,
                    other => return self.err(format!("expected array size, found {other}")),
                };
                self.expect(Tok::RBracket)?;
                Some(n)
            } else {
                None
            };
            self.expect(Tok::RParen)?;
            self.expect(Tok::LParen)?;
            let (params, varargs) = self.param_types()?;
            self.expect(Tok::RParen)?;
            let fnty = Type::Func(Box::new(FuncType { ret: t, params, varargs }));
            let mut full = fnty.ptr();
            if let Some(n) = arr {
                full = Type::Array(Box::new(full), n);
            }
            return Ok((name, full));
        }
        let name = self.ident()?;
        // Array suffixes: name[N][M]… ; `[]` means incomplete (pointer for
        // params; size-from-initializer for globals, handled by caller).
        let mut dims: Vec<Option<u64>> = Vec::new();
        while self.eat(Tok::LBracket) {
            if self.eat(Tok::RBracket) {
                dims.push(None);
            } else {
                let n = match self.bump() {
                    Tok::Int(v) if v >= 0 => v as u64,
                    other => return self.err(format!("expected array size, found {other}")),
                };
                self.expect(Tok::RBracket)?;
                dims.push(Some(n));
            }
        }
        for d in dims.into_iter().rev() {
            t = match d {
                Some(n) => Type::Array(Box::new(t), n),
                // incomplete array: callers adjust (param → pointer,
                // global → sized by initializer). Use size 0 as marker.
                None => Type::Array(Box::new(t), 0),
            };
        }
        if allow_func && *self.peek() == Tok::LParen {
            self.bump();
            let (params, varargs) = self.param_types()?;
            self.expect(Tok::RParen)?;
            let fnty = Type::Func(Box::new(FuncType { ret: t, params, varargs }));
            return Ok((name, fnty));
        }
        Ok((name, t))
    }

    /// Types only (for function-pointer signatures).
    fn param_types(&mut self) -> Result<(Vec<Type>, bool), CError> {
        let (params, varargs) = self.params()?;
        Ok((params.into_iter().map(|(_, t)| t).collect(), varargs))
    }

    /// Parameter list with optional names. `(void)` and `()` are empty.
    fn params(&mut self) -> Result<(Vec<(String, Type)>, bool), CError> {
        let mut out = Vec::new();
        let mut varargs = false;
        if *self.peek() == Tok::RParen {
            return Ok((out, varargs));
        }
        if *self.peek() == Tok::KwVoid && *self.peek2() == Tok::RParen {
            self.bump();
            return Ok((out, varargs));
        }
        loop {
            if self.eat(Tok::Ellipsis) {
                varargs = true;
                break;
            }
            let base = self.base_type()?;
            let mut t = base;
            while self.eat(Tok::Star) {
                t = t.ptr();
            }
            // Function-pointer param: (*name)(params)
            if *self.peek() == Tok::LParen && *self.peek2() == Tok::Star {
                self.bump();
                self.bump();
                let name =
                    if let Tok::Ident(_) = self.peek() { self.ident()? } else { String::new() };
                self.expect(Tok::RParen)?;
                self.expect(Tok::LParen)?;
                let (ps, va) = self.param_types()?;
                self.expect(Tok::RParen)?;
                let fnty = Type::Func(Box::new(FuncType { ret: t, params: ps, varargs: va }));
                out.push((name, fnty.ptr()));
            } else {
                let name =
                    if let Tok::Ident(_) = self.peek() { self.ident()? } else { String::new() };
                // array params decay to pointers
                while self.eat(Tok::LBracket) {
                    if !self.eat(Tok::RBracket) {
                        match self.bump() {
                            Tok::Int(_) => {}
                            other => {
                                return self.err(format!("expected array size, found {other}"))
                            }
                        }
                        self.expect(Tok::RBracket)?;
                    }
                    t = t.ptr();
                }
                out.push((name, t));
            }
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        Ok((out, varargs))
    }

    // ----- top level ---------------------------------------------------

    fn translation_unit(&mut self) -> Result<TranslationUnit, CError> {
        let mut items = Vec::new();
        while *self.peek() != Tok::Eof {
            items.push(self.item()?);
        }
        Ok(TranslationUnit { file: self.file.clone(), items })
    }

    fn item(&mut self) -> Result<Item, CError> {
        let span = self.span();
        // struct definition: struct Name { … };
        if *self.peek() == Tok::KwStruct {
            if let Tok::Ident(_) = self.peek2() {
                // lookahead: struct Name {  → definition
                let save = self.pos;
                self.bump();
                let name = self.ident()?;
                if self.eat(Tok::LBrace) {
                    let mut fields = Vec::new();
                    while !self.eat(Tok::RBrace) {
                        let base = self.base_type()?;
                        let (fname, fty) = self.declarator(base, false)?;
                        self.expect(Tok::Semi)?;
                        fields.push((fname, fty));
                    }
                    self.expect(Tok::Semi)?;
                    return Ok(Item::Struct(StructDef { name, fields, span }));
                }
                // not a definition; rewind and fall through to decl
                self.pos = save;
            }
        }

        let storage = if self.eat(Tok::KwStatic) {
            Storage::Static
        } else if self.eat(Tok::KwExtern) {
            Storage::Extern
        } else {
            Storage::Public
        };

        let base = self.base_type()?;
        // `struct S;` forward declaration
        if let Type::Struct(name) = &base {
            if *self.peek() == Tok::Semi {
                self.bump();
                return Ok(Item::Struct(StructDef {
                    name: clone_name(name),
                    fields: vec![],
                    span,
                }));
            }
        }
        let mut t = base;
        while self.eat(Tok::Star) {
            t = t.ptr();
        }
        // Function-pointer global: `ret (*name)(params) [= init];`
        if *self.peek() == Tok::LParen && *self.peek2() == Tok::Star {
            let (name, ty) = self.declarator(t, false)?;
            let init = if self.eat(Tok::Assign) { Some(self.initializer()?) } else { None };
            self.expect(Tok::Semi)?;
            return Ok(Item::Global(GlobalDef { name, ty, init, storage, span }));
        }
        let name = self.ident()?;
        // Function prototype or definition: `ret name(params) {body}` / `;`
        if self.eat(Tok::LParen) {
            let (params, varargs) = self.params()?;
            self.expect(Tok::RParen)?;
            let body = if *self.peek() == Tok::LBrace {
                Some(self.block()?)
            } else {
                self.expect(Tok::Semi)?;
                None
            };
            return Ok(Item::Func(FuncDef { name, ret: t, params, varargs, body, storage, span }));
        }
        // Global variable with optional array suffixes and initializer.
        let ty = self.array_suffixes(t)?;
        let init = if self.eat(Tok::Assign) { Some(self.initializer()?) } else { None };
        self.expect(Tok::Semi)?;
        let ty = complete_array_type(ty, init.as_ref());
        Ok(Item::Global(GlobalDef { name, ty, init, storage, span }))
    }

    /// Trailing `[N]` (or `[]`, marked as size 0) suffixes for globals.
    fn array_suffixes(&mut self, mut t: Type) -> Result<Type, CError> {
        let mut dims: Vec<u64> = Vec::new();
        while self.eat(Tok::LBracket) {
            if self.eat(Tok::RBracket) {
                dims.push(0);
            } else {
                let n = match self.bump() {
                    Tok::Int(v) if v >= 0 => v as u64,
                    other => return self.err(format!("expected array size, found {other}")),
                };
                self.expect(Tok::RBracket)?;
                dims.push(n);
            }
        }
        for d in dims.into_iter().rev() {
            t = Type::Array(Box::new(t), d);
        }
        Ok(t)
    }

    fn initializer(&mut self) -> Result<Init, CError> {
        if self.eat(Tok::LBrace) {
            let mut list = Vec::new();
            if !self.eat(Tok::RBrace) {
                loop {
                    list.push(self.initializer()?);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                    // allow trailing comma
                    if *self.peek() == Tok::RBrace {
                        break;
                    }
                }
                self.expect(Tok::RBrace)?;
            }
            Ok(Init::List(list))
        } else {
            Ok(Init::Expr(self.assignment_expr()?))
        }
    }

    // ----- statements ---------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CError> {
        self.expect(Tok::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(Tok::RBrace) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, CError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_s = Box::new(self.stmt()?);
                let else_s =
                    if self.eat(Tok::KwElse) { Some(Box::new(self.stmt()?)) } else { None };
                Ok(Stmt::If { cond, then_s, else_s })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body })
            }
            Tok::KwDo => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect(Tok::KwWhile)?;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if *self.peek() == Tok::Semi {
                    self.bump();
                    None
                } else if self.at_type_start() {
                    Some(Box::new(self.local_decl()?))
                } else {
                    let e = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if *self.peek() == Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen { None } else { Some(self.expr()?) };
                self.expect(Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For { init, cond, step, body })
            }
            Tok::KwReturn => {
                self.bump();
                let v = if *self.peek() == Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(v, span))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break(span))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue(span))
            }
            Tok::KwInt | Tok::KwChar | Tok::KwVoid | Tok::KwStruct => self.local_decl(),
            _ => {
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// Local declaration, including the trailing `;`.
    fn local_decl(&mut self) -> Result<Stmt, CError> {
        let span = self.span();
        let base = self.base_type()?;
        let (name, ty) = self.declarator(base, false)?;
        let init = if self.eat(Tok::Assign) { Some(self.assignment_expr()?) } else { None };
        self.expect(Tok::Semi)?;
        // `char buf[] = "…"` sizes itself from the initializer
        let ty = complete_array_type(ty, init.as_ref().map(|e| Init::Expr(e.clone())).as_ref());
        Ok(Stmt::Decl { name, ty, init, span })
    }

    // ----- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CError> {
        self.assignment_expr()
    }

    fn assignment_expr(&mut self) -> Result<Expr, CError> {
        let span = self.span();
        let lhs = self.ternary_expr()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            Tok::PercentAssign => Some(BinOp::Rem),
            Tok::AmpAssign => Some(BinOp::And),
            Tok::PipeAssign => Some(BinOp::Or),
            Tok::CaretAssign => Some(BinOp::Xor),
            Tok::ShlAssign => Some(BinOp::Shl),
            Tok::ShrAssign => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment_expr()?;
        Ok(Expr::new(ExprKind::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span))
    }

    fn ternary_expr(&mut self) -> Result<Expr, CError> {
        let span = self.span();
        let cond = self.binary_expr(0)?;
        if self.eat(Tok::Question) {
            let t = self.expr()?;
            self.expect(Tok::Colon)?;
            let e = self.ternary_expr()?;
            Ok(Expr::new(
                ExprKind::Cond { cond: Box::new(cond), then_e: Box::new(t), else_e: Box::new(e) },
                span,
            ))
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing binary expression parser.
    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, CError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::PipePipe => (BinOp::LogOr, 1),
                Tok::AmpAmp => (BinOp::LogAnd, 2),
                Tok::Pipe => (BinOp::Or, 3),
                Tok::Caret => (BinOp::Xor, 4),
                Tok::Amp => (BinOp::And, 5),
                Tok::EqEq => (BinOp::Eq, 6),
                Tok::NotEq => (BinOp::Ne, 6),
                Tok::Lt => (BinOp::Lt, 7),
                Tok::Gt => (BinOp::Gt, 7),
                Tok::Le => (BinOp::Le, 7),
                Tok::Ge => (BinOp::Ge, 7),
                Tok::Shl => (BinOp::Shl, 8),
                Tok::Shr => (BinOp::Shr, 8),
                Tok::Plus => (BinOp::Add, 9),
                Tok::Minus => (BinOp::Sub, 9),
                Tok::Star => (BinOp::Mul, 10),
                Tok::Slash => (BinOp::Div, 10),
                Tok::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let span = self.span();
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::new(ExprKind::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Un { op: UnOp::Not, expr: Box::new(e) }, span))
            }
            Tok::Tilde => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Un { op: UnOp::BitNot, expr: Box::new(e) }, span))
            }
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Un { op: UnOp::Neg, expr: Box::new(e) }, span))
            }
            Tok::Star => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Deref(Box::new(e)), span))
            }
            Tok::Amp => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::AddrOf(Box::new(e)), span))
            }
            Tok::PlusPlus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::IncDec { pre: true, inc: true, expr: Box::new(e) }, span))
            }
            Tok::MinusMinus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::IncDec { pre: true, inc: false, expr: Box::new(e) }, span))
            }
            Tok::KwSizeof => {
                self.bump();
                if *self.peek() == Tok::LParen && is_type_tok(self.peek2()) {
                    self.bump();
                    let t = self.type_name()?;
                    self.expect(Tok::RParen)?;
                    Ok(Expr::new(ExprKind::SizeofType(t), span))
                } else {
                    let e = self.unary_expr()?;
                    Ok(Expr::new(ExprKind::SizeofExpr(Box::new(e)), span))
                }
            }
            Tok::LParen if is_type_tok(self.peek2()) => {
                // cast
                self.bump();
                let t = self.type_name()?;
                self.expect(Tok::RParen)?;
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Cast { ty: t, expr: Box::new(e) }, span))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, CError> {
        let mut e = self.primary_expr()?;
        loop {
            let span = self.span();
            match self.peek().clone() {
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(Tok::RParen) {
                        loop {
                            args.push(self.assignment_expr()?);
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    // recognize the __vararg builtin
                    if let ExprKind::Ident(name) = &e.kind {
                        if name == "__vararg" {
                            if args.len() != 1 {
                                return self.err("__vararg takes exactly one argument");
                            }
                            e = Expr::new(
                                ExprKind::VarArg(Box::new(
                                    args.into_iter().next().expect("one arg"),
                                )),
                                span,
                            );
                            continue;
                        }
                    }
                    e = Expr::new(ExprKind::Call { callee: Box::new(e), args }, span);
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::new(
                        ExprKind::Index { base: Box::new(e), index: Box::new(idx) },
                        span,
                    );
                }
                Tok::Dot => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr::new(
                        ExprKind::Member { base: Box::new(e), field: f, arrow: false },
                        span,
                    );
                }
                Tok::Arrow => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr::new(
                        ExprKind::Member { base: Box::new(e), field: f, arrow: true },
                        span,
                    );
                }
                Tok::PlusPlus => {
                    self.bump();
                    e = Expr::new(
                        ExprKind::IncDec { pre: false, inc: true, expr: Box::new(e) },
                        span,
                    );
                }
                Tok::MinusMinus => {
                    self.bump();
                    e = Expr::new(
                        ExprKind::IncDec { pre: false, inc: false, expr: Box::new(e) },
                        span,
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, CError> {
        let span = self.span();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::new(ExprKind::IntLit(v), span)),
            Tok::Char(c) => Ok(Expr::new(ExprKind::CharLit(c), span)),
            Tok::Str(s) => Ok(Expr::new(ExprKind::StrLit(s), span)),
            Tok::Ident(name) => Ok(Expr::new(ExprKind::Ident(name), span)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected expression, found {other}"))
            }
        }
    }
}

fn is_type_tok(t: &Tok) -> bool {
    matches!(t, Tok::KwInt | Tok::KwChar | Tok::KwVoid | Tok::KwStruct)
}

fn clone_name(n: &str) -> String {
    n.to_string()
}

/// Complete `T x[] = {…}` / `char s[] = "…"` array types from initializers.
fn complete_array_type(ty: Type, init: Option<&Init>) -> Type {
    match (&ty, init) {
        (Type::Array(elem, 0), Some(Init::List(items))) => {
            Type::Array(elem.clone(), items.len() as u64)
        }
        (Type::Array(elem, 0), Some(Init::Expr(e))) => {
            if let ExprKind::StrLit(s) = &e.kind {
                Type::Array(elem.clone(), s.len() as u64 + 1)
            } else {
                ty
            }
        }
        _ => ty,
    }
}

// The parser splits function parsing: `item` calls `declarator` which for a
// name followed by `(` builds a Func type but loses parameter names. We
// instead intercept *before* that: the real implementation below overrides
// `item` behaviour for functions by re-parsing. To keep the code simple and
// correct, `declarator(…, true)` is only invoked from `item`, and `item`
// handles the Func case by reconstructing names — but names were discarded.
//
// Rather than thread names through `Type`, `item` uses this second entry
// point: when the declarator returns a Func type we re-parse from a saved
// position with `params()` to recover names. See `Parser::item_fixed`.

/// Parse helpers exposed for tests.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_function() {
        let tu = parse("t.c", "int add(int a, int b) { return a + b; }").unwrap();
        assert_eq!(tu.items.len(), 1);
        match &tu.items[0] {
            Item::Func(f) => {
                assert_eq!(f.name, "add");
                assert_eq!(f.params.len(), 2);
                assert_eq!(f.params[0].0, "a");
                assert!(f.body.is_some());
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parse_struct_and_globals() {
        let src = r#"
            struct point { int x; int y; };
            static int counter = 0;
            extern int debug_level;
            char msg[] = "hi";
            int table[4] = { 1, 2, 3, 4 };
        "#;
        let tu = parse("t.c", src).unwrap();
        assert_eq!(tu.items.len(), 5);
        match &tu.items[0] {
            Item::Struct(s) => assert_eq!(s.fields.len(), 2),
            _ => panic!(),
        }
        match &tu.items[3] {
            Item::Global(g) => assert_eq!(g.ty, Type::Array(Box::new(Type::Char), 3)),
            _ => panic!(),
        }
        match &tu.items[4] {
            Item::Global(g) => assert_eq!(g.ty, Type::Array(Box::new(Type::Int), 4)),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_function_pointers() {
        let src = r#"
            struct ops { int (*push)(int, int); };
            int apply(int (*f)(int), int x) { return f(x); }
        "#;
        let tu = parse("t.c", src).unwrap();
        match &tu.items[0] {
            Item::Struct(s) => {
                assert!(
                    matches!(&s.fields[0].1, Type::Ptr(inner) if matches!(**inner, Type::Func(_)))
                );
            }
            _ => panic!(),
        }
        match &tu.items[1] {
            Item::Func(f) => {
                assert!(
                    matches!(&f.params[0].1, Type::Ptr(inner) if matches!(**inner, Type::Func(_)))
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_control_flow() {
        let src = r#"
            int f(int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (i % 2 == 0) acc += i; else acc -= 1;
                }
                while (acc > 100) acc /= 2;
                do { acc++; } while (acc < 0);
                return acc;
            }
        "#;
        let tu = parse("t.c", src).unwrap();
        assert!(tu.find_func("f").is_some());
    }

    #[test]
    fn parse_expressions() {
        let src = r#"
            int g(char *p, int n) {
                int x = p[n] + *p;
                x = (int)p + sizeof(int) + sizeof x;
                x = x ? n : -n;
                x = a.b + c->d;
                return x << 2 | x & 3;
            }
            int a; int c;
        "#;
        // a.b / c->d won't typecheck, but must parse.
        assert!(parse("t.c", src).is_ok());
    }

    #[test]
    fn parse_varargs_and_builtin() {
        let src = r#"
            int printf(char *fmt, ...);
            int f() { return __vararg(0); }
        "#;
        let tu = parse("t.c", src).unwrap();
        match &tu.items[0] {
            Item::Func(f) => {
                assert!(f.varargs);
                assert!(f.body.is_none());
            }
            _ => panic!(),
        }
        match &tu.items[1] {
            Item::Func(f) => {
                let body = f.body.as_ref().unwrap();
                assert!(
                    matches!(&body[0], Stmt::Return(Some(e), _) if matches!(e.kind, ExprKind::VarArg(_)))
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = parse("t.c", "int f( { }").unwrap_err();
        match err {
            CError::Parse { span, .. } => assert_eq!(span.line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn precedence_is_c_like() {
        let tu = parse("t.c", "int f() { return 1 + 2 * 3; }").unwrap();
        let f = tu.find_func("f").unwrap();
        let body = f.body.as_ref().unwrap();
        match &body[0] {
            Stmt::Return(Some(e), _) => match &e.kind {
                ExprKind::Bin { op: BinOp::Add, rhs, .. } => {
                    assert!(matches!(rhs.kind, ExprKind::Bin { op: BinOp::Mul, .. }));
                }
                other => panic!("unexpected shape {other:?}"),
            },
            _ => panic!(),
        }
    }
}
