//! Abstract syntax for mini-C.
//!
//! The subset is chosen to be exactly what systems components need (it is
//! the language the `oskit` and `clack` crates are written in): `int`
//! (64-bit), `char` (8-bit, unsigned), `void`, pointers, fixed arrays,
//! structs, function pointers, varargs, `static`/`extern` storage, and the
//! usual statements and operators. No typedefs, unions, floats, or bitfields.

use crate::token::Span;

/// A mini-C type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 8-bit unsigned character.
    Char,
    /// No value.
    Void,
    /// Pointer to a type.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, u64),
    /// Struct by name (layout resolved against the translation unit's
    /// struct definitions).
    Struct(String),
    /// Function type; only meaningful behind a pointer.
    Func(Box<FuncType>),
}

/// Signature part of a function type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncType {
    /// Return type.
    pub ret: Type,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Whether the signature ends with `...`.
    pub varargs: bool,
}

impl Type {
    /// Pointer to `self`.
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Whether values of this type fit in one machine register.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Char | Type::Ptr(_))
    }

    /// The pointee, if this is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            _ => None,
        }
    }
}

/// Binary operators at the AST level. `LogAnd`/`LogOr` short-circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
}

/// An expression with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// The expression shape.
    pub kind: ExprKind,
    /// Source position (for diagnostics).
    pub span: Span,
}

impl Expr {
    /// Construct an expression at a span.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }

    /// An integer literal with a default span (used by optimizers).
    pub fn int(v: i64, span: Span) -> Expr {
        Expr::new(ExprKind::IntLit(v), span)
    }

    /// Is this a compile-time integer literal?
    pub fn as_int(&self) -> Option<i64> {
        match self.kind {
            ExprKind::IntLit(v) => Some(v),
            ExprKind::CharLit(c) => Some(c as i64),
            _ => None,
        }
    }
}

/// Expression shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Character literal.
    CharLit(u8),
    /// String literal (NUL terminator added by codegen).
    StrLit(Vec<u8>),
    /// Variable or function reference.
    Ident(String),
    /// Binary operation.
    Bin { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Unary operation.
    Un { op: UnOp, expr: Box<Expr> },
    /// Assignment; `op` is `Some` for compound assignments like `+=`.
    Assign { op: Option<BinOp>, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Ternary conditional.
    Cond { cond: Box<Expr>, then_e: Box<Expr>, else_e: Box<Expr> },
    /// Function call; callee may be a name or a function-pointer expression.
    Call { callee: Box<Expr>, args: Vec<Expr> },
    /// Array indexing.
    Index { base: Box<Expr>, index: Box<Expr> },
    /// Member access `base.field` or `base->field`.
    Member { base: Box<Expr>, field: String, arrow: bool },
    /// Pointer dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e`.
    AddrOf(Box<Expr>),
    /// Cast `(type)e`.
    Cast { ty: Type, expr: Box<Expr> },
    /// `sizeof(type)`.
    SizeofType(Type),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
    /// Pre/post increment/decrement.
    IncDec { pre: bool, inc: bool, expr: Box<Expr> },
    /// The `__vararg(i)` builtin: i-th argument past the named parameters.
    VarArg(Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local variable declaration.
    Decl { name: String, ty: Type, init: Option<Expr>, span: Span },
    /// `if`, with optional `else`.
    If { cond: Expr, then_s: Box<Stmt>, else_s: Option<Box<Stmt>> },
    /// `while` loop.
    While { cond: Expr, body: Box<Stmt> },
    /// `do … while` loop.
    DoWhile { body: Box<Stmt>, cond: Expr },
    /// `for` loop. The init clause may be a declaration or expression.
    For { init: Option<Box<Stmt>>, cond: Option<Expr>, step: Option<Expr>, body: Box<Stmt> },
    /// `return`, with optional value.
    Return(Option<Expr>, Span),
    /// `break`.
    Break(Span),
    /// `continue`.
    Continue(Span),
    /// Braced block.
    Block(Vec<Stmt>),
    /// Empty statement (`;`).
    Empty,
}

/// Storage class of a top-level definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Link-visible definition (the default).
    Public,
    /// File-local (`static`).
    Static,
    /// Declaration of an external definition (`extern`, or a function
    /// prototype).
    Extern,
}

/// A global initializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Init {
    /// A (constant) expression: literal, string, or `&name`.
    Expr(Expr),
    /// Brace list for arrays and structs.
    List(Vec<Init>),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(String, Type)>,
    /// Source position.
    pub span: Span,
}

/// A global variable definition or declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDef {
    /// Variable name.
    pub name: String,
    /// Its type.
    pub ty: Type,
    /// Optional initializer (definitions only).
    pub init: Option<Init>,
    /// Storage class.
    pub storage: Storage,
    /// Source position.
    pub span: Span,
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Named parameters.
    pub params: Vec<(String, Type)>,
    /// Whether the signature ends with `...`.
    pub varargs: bool,
    /// Body statements; `None` for a prototype.
    pub body: Option<Vec<Stmt>>,
    /// Storage class (`Static` for file-local functions).
    pub storage: Storage,
    /// Source position.
    pub span: Span,
}

impl FuncDef {
    /// The function's type (as used behind function pointers).
    pub fn func_type(&self) -> FuncType {
        FuncType {
            ret: self.ret.clone(),
            params: self.params.iter().map(|(_, t)| t.clone()).collect(),
            varargs: self.varargs,
        }
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// Struct definition.
    Struct(StructDef),
    /// Global variable.
    Global(GlobalDef),
    /// Function definition or prototype.
    Func(FuncDef),
}

/// A parsed translation unit (one `.c` file after preprocessing).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TranslationUnit {
    /// File name for diagnostics.
    pub file: String,
    /// Items in source order (order matters for the inliner, mirroring
    /// gcc's definition-before-use inlining that flattening exploits).
    pub items: Vec<Item>,
}

impl TranslationUnit {
    /// Find a function definition (with body) by name.
    pub fn find_func(&self, name: &str) -> Option<&FuncDef> {
        self.items.iter().find_map(|i| match i {
            Item::Func(f) if f.name == name && f.body.is_some() => Some(f),
            _ => None,
        })
    }

    /// Iterate over all function definitions with bodies.
    pub fn funcs(&self) -> impl Iterator<Item = &FuncDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Func(f) if f.body.is_some() => Some(f),
            _ => None,
        })
    }
}
