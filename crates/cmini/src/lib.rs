//! # cmini — a compiler for mini-C
//!
//! This crate is the stand-in for gcc 2.95 in the Knit reproduction (see
//! DESIGN.md). It compiles a C subset — `int`/`char`/`void`, pointers,
//! arrays, structs, function pointers, varargs, `static`/`extern` — to
//! [`cobj`] object files, via:
//!
//! 1. a line-based preprocessor ([`pp`]): `#include "…"`, object-like
//!    `#define`, `#ifdef` conditionals;
//! 2. a lexer ([`token`]) and recursive-descent parser ([`parser`]);
//! 3. AST optimization passes ([`passes`]): constant folding, and —
//!    crucially for the paper's flattening experiment — an inliner that
//!    only fires when the callee's definition precedes the call in the
//!    same translation unit, mimicking gcc's behaviour that Knit's
//!    source-merging exploits;
//! 4. one-pass typed code generation ([`codegen`]);
//! 5. IR-level local value numbering and dead-code elimination
//!    ([`passes::vn`]).
//!
//! The entry point is [`compile`]:
//!
//! ```
//! use cmini::{compile, CompileOptions, pp::NoFiles};
//!
//! let obj = compile(
//!     "answer.c",
//!     "int answer() { return 6 * 7; }",
//!     &CompileOptions::default(),
//!     &NoFiles,
//! ).unwrap();
//! assert!(obj.exported_names().contains("answer"));
//! ```

pub mod ast;
pub mod codegen;
pub mod error;
pub mod parser;
pub mod passes;
pub mod pp;
pub mod printer;
pub mod token;
pub mod types;
pub mod visit;

pub use error::CError;
pub use pp::{FileProvider, NoFiles, PpOptions};

use cobj::object::ObjectFile;

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No optimization: straight translation.
    O0,
    /// Fold, inline (definition-before-use), DCE, then IR value numbering.
    #[default]
    O2,
}

/// Compiler configuration.
#[derive(Default)]
pub struct CompileOptions {
    /// Preprocessor configuration (`-I`, `-D`).
    pub pp: PpOptions,
    /// Optimization level (`-O0` / `-O2`). Defaults to `O2`.
    pub opt: OptLevel,
    /// Inliner body-size budget in statements (0 = default of 24).
    pub inline_budget: usize,
}

impl CompileOptions {
    /// Parse gcc-style flags: `-Idir`, `-DNAME[=value]`, `-O0`, `-O2`.
    /// Unknown flags are an error (Knit unit files should not carry silent
    /// typos).
    pub fn from_flags<S: AsRef<str>>(flags: &[S]) -> Result<CompileOptions, String> {
        let mut opts = CompileOptions { inline_budget: 24, ..Default::default() };
        for f in flags {
            let f = f.as_ref();
            if let Some(dir) = f.strip_prefix("-I") {
                opts.pp.include_dirs.push(dir.to_string());
            } else if let Some(def) = f.strip_prefix("-D") {
                match def.split_once('=') {
                    Some((n, v)) => opts.pp.defines.push((n.to_string(), v.to_string())),
                    None => opts.pp.defines.push((def.to_string(), "1".to_string())),
                }
            } else if f == "-O0" {
                opts.opt = OptLevel::O0;
            } else if f == "-O2" || f == "-O1" || f == "-O3" {
                opts.opt = OptLevel::O2;
            } else {
                return Err(format!("unknown compiler flag `{f}`"));
            }
        }
        Ok(opts)
    }

    fn budget(&self) -> usize {
        if self.inline_budget == 0 {
            24
        } else {
            self.inline_budget
        }
    }
}

/// Preprocess and parse `src` into an AST (used directly by the `flatten`
/// crate, which merges ASTs before compilation).
pub fn frontend(
    file: &str,
    src: &str,
    opts: &CompileOptions,
    provider: &dyn FileProvider,
) -> Result<ast::TranslationUnit, CError> {
    let expanded = pp::preprocess(file, src, &opts.pp, provider)?;
    parser::parse(file, &expanded)
}

/// Parse an *already preprocessed* source into an AST. The Knit driver
/// preprocesses each file once to content-hash it for its compile cache,
/// then hands the expanded text here on a cache miss — the same text
/// [`frontend`] would have produced, without preprocessing twice.
///
/// Like every entry point in this crate, this is a pure function of its
/// arguments (no global or thread-local state anywhere in `cmini`), so
/// callers may invoke it from many threads at once.
pub fn frontend_expanded(file: &str, expanded: &str) -> Result<ast::TranslationUnit, CError> {
    parser::parse(file, expanded)
}

/// Optimize (per `opts.opt`) and generate code for an already-parsed
/// translation unit.
pub fn backend(mut tu: ast::TranslationUnit, opts: &CompileOptions) -> Result<ObjectFile, CError> {
    if opts.opt == OptLevel::O2 {
        passes::fold::fold_tu(&mut tu);
        passes::hoist::hoist_tu(&mut tu);
        passes::inline::inline_tu(&mut tu, opts.budget());
        passes::fold::fold_tu(&mut tu);
        passes::dce::dce_tu(&mut tu);
    }
    let mut obj = codegen::compile_tu(&tu)?;
    if opts.opt == OptLevel::O2 {
        passes::vn::optimize_obj(&mut obj);
    }
    Ok(obj)
}

/// Compile one mini-C source file to an object file.
pub fn compile(
    file: &str,
    src: &str,
    opts: &CompileOptions,
    provider: &dyn FileProvider,
) -> Result<ObjectFile, CError> {
    let tu = frontend(file, src, opts, provider)?;
    backend(tu, opts)
}

/// Compile with default options and no include files (tests, examples).
pub fn compile_simple(file: &str, src: &str) -> Result<ObjectFile, CError> {
    compile(file, src, &CompileOptions::default(), &NoFiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_exports_and_imports() {
        let obj = compile_simple(
            "web.c",
            r#"
            int serve_file(int s, char *p);
            int serve_cgi(int s, char *p);
            int serve_web(int s, char *path) {
                if (path[0] == 'c') return serve_cgi(s, path);
                return serve_file(s, path);
            }
            "#,
        )
        .unwrap();
        assert!(obj.exported_names().contains("serve_web"));
        assert!(obj.undefined_names().contains("serve_file"));
        assert!(obj.undefined_names().contains("serve_cgi"));
    }

    #[test]
    fn statics_are_local() {
        let obj = compile_simple(
            "t.c",
            "static int hidden = 3;\nstatic int helper() { return hidden; }\nint public_fn() { return helper(); }",
        )
        .unwrap();
        assert!(obj.exported_names().contains("public_fn"));
        assert!(!obj.exported_names().contains("helper"));
        assert!(!obj.exported_names().contains("hidden"));
    }

    #[test]
    fn o2_inlines_definition_before_use() {
        let src = r#"
            int add(int a, int b) { return a + b; }
            int quad(int x) { int s = add(x, x); int t = add(s, s); return t; }
        "#;
        let o0 = compile(
            "t.c",
            src,
            &CompileOptions { opt: OptLevel::O0, ..Default::default() },
            &NoFiles,
        )
        .unwrap();
        let o2 = compile_simple("t.c", src).unwrap();
        let quad = o2.funcs.iter().find(|f| o2.symbol(f.sym).name == "quad").unwrap();
        assert!(!quad.body.iter().any(|i| matches!(i, cobj::Instr::Call { .. })));
        let quad0 = o0.funcs.iter().find(|f| o0.symbol(f.sym).name == "quad").unwrap();
        assert!(quad0.body.iter().any(|i| matches!(i, cobj::Instr::Call { .. })));
    }

    #[test]
    fn flags_parse() {
        let o = CompileOptions::from_flags(&["-Iinc", "-DDEBUG", "-DN=4", "-O0"]).unwrap();
        assert_eq!(o.pp.include_dirs, vec!["inc"]);
        assert_eq!(o.pp.defines.len(), 2);
        assert_eq!(o.opt, OptLevel::O0);
        assert!(CompileOptions::from_flags(&["-funknown"]).is_err());
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(compile_simple("t.c", "int f() { return undefined_var; }").is_err());
        assert!(compile_simple("t.c", "int f(int x) { return *x; }").is_err());
        assert!(compile_simple(
            "t.c",
            "struct s { int a; }; int f(struct s *p) { return p->nope; }"
        )
        .is_err());
        assert!(compile_simple("t.c", "int f() { return 1; } int f() { return 2; }").is_err());
    }

    #[test]
    fn globals_with_initializers() {
        let obj = compile_simple(
            "t.c",
            r#"
            int counter = 42;
            char banner[] = "knit";
            int table[3] = { 1, 2, 3 };
            struct pair { int a; int b; };
            struct pair origin = { 10, 20 };
            int f();
            int (*handler)() = &f;
            "#,
        )
        .unwrap();
        let find = |n: &str| obj.data.iter().find(|d| obj.symbol(d.sym).name == n).unwrap();
        assert_eq!(&find("counter").init[..8], &42i64.to_le_bytes());
        assert_eq!(&find("banner").init[..5], b"knit\0");
        assert_eq!(find("table").init.len(), 24);
        assert_eq!(&find("origin").init[8..16], &20i64.to_le_bytes());
        assert_eq!(find("handler").relocs.len(), 1);
    }
}
