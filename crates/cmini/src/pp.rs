//! A small C preprocessor.
//!
//! Supports exactly what the component corpus needs: `#include "file"`
//! (resolved through a [`FileProvider`], typically the Knit build's virtual
//! source tree, searched through `-I` include directories), object-like
//! `#define`/`#undef`, and `#ifdef`/`#ifndef`/`#else`/`#endif` conditionals.
//! Macro substitution is token-aware (identifiers only — never inside
//! string or character literals).

use std::collections::BTreeMap;

use crate::error::CError;

/// Source of header files for `#include`.
pub trait FileProvider {
    /// Return the contents of `path`, if it exists.
    fn read_file(&self, path: &str) -> Option<String>;
}

/// A provider with no files (for sources without includes).
pub struct NoFiles;

impl FileProvider for NoFiles {
    fn read_file(&self, _path: &str) -> Option<String> {
        None
    }
}

impl FileProvider for BTreeMap<String, String> {
    fn read_file(&self, path: &str) -> Option<String> {
        self.get(path).cloned()
    }
}

/// Preprocessor configuration.
#[derive(Default)]
pub struct PpOptions {
    /// `-I` include directories, searched in order; `""` means the bare
    /// path is also tried.
    pub include_dirs: Vec<String>,
    /// `-D` style predefined macros.
    pub defines: Vec<(String, String)>,
}

const MAX_INCLUDE_DEPTH: usize = 32;

/// Run the preprocessor over `src`, returning expanded source.
pub fn preprocess(
    file: &str,
    src: &str,
    opts: &PpOptions,
    provider: &dyn FileProvider,
) -> Result<String, CError> {
    let mut macros: BTreeMap<String, String> = opts.defines.iter().cloned().collect();
    let mut out = String::new();
    let mut stack = vec![file.to_string()];
    expand(file, src, opts, provider, &mut macros, &mut out, &mut stack)?;
    Ok(out)
}

fn expand(
    file: &str,
    src: &str,
    opts: &PpOptions,
    provider: &dyn FileProvider,
    macros: &mut BTreeMap<String, String>,
    out: &mut String,
    include_stack: &mut Vec<String>,
) -> Result<(), CError> {
    // Conditional-inclusion state: each entry is (currently_active,
    // any_branch_taken).
    let mut conds: Vec<(bool, bool)> = Vec::new();
    let err = |line: u32, msg: String| CError::Pp { file: file.to_string(), line, msg };

    for (lineno0, line) in src.lines().enumerate() {
        let lineno = lineno0 as u32 + 1;
        let trimmed = line.trim_start();
        let active = conds.iter().all(|(a, _)| *a);
        if let Some(rest) = trimmed.strip_prefix('#') {
            let rest = rest.trim_start();
            let (directive, arg) = match rest.find(char::is_whitespace) {
                Some(i) => (&rest[..i], rest[i..].trim()),
                None => (rest, ""),
            };
            match directive {
                "include" => {
                    if !active {
                        continue;
                    }
                    let path = arg
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| err(lineno, format!("malformed #include: `{arg}`")))?;
                    if include_stack.len() >= MAX_INCLUDE_DEPTH {
                        return Err(err(lineno, "include depth exceeded".into()));
                    }
                    if include_stack.iter().any(|f| f == path) {
                        return Err(err(lineno, format!("circular #include of \"{path}\"")));
                    }
                    let mut found = None;
                    let bare_first =
                        std::iter::once(String::new()).chain(opts.include_dirs.iter().cloned());
                    for dir in bare_first {
                        let cand = if dir.is_empty() {
                            path.to_string()
                        } else {
                            format!("{}/{}", dir.trim_end_matches('/'), path)
                        };
                        if let Some(text) = provider.read_file(&cand) {
                            found = Some((cand, text));
                            break;
                        }
                    }
                    let (cand, text) = found
                        .ok_or_else(|| err(lineno, format!("cannot find include \"{path}\"")))?;
                    include_stack.push(path.to_string());
                    expand(&cand, &text, opts, provider, macros, out, include_stack)?;
                    include_stack.pop();
                }
                "define" => {
                    if !active {
                        continue;
                    }
                    let (name, val) = match arg.find(char::is_whitespace) {
                        Some(i) => (&arg[..i], arg[i..].trim()),
                        None => (arg, ""),
                    };
                    if name.is_empty() || !is_ident(name) {
                        return Err(err(lineno, format!("bad macro name `{name}`")));
                    }
                    if name.contains('(') {
                        return Err(err(lineno, "function-like macros are not supported".into()));
                    }
                    macros.insert(name.to_string(), val.to_string());
                }
                "undef" => {
                    if !active {
                        continue;
                    }
                    macros.remove(arg);
                }
                "ifdef" => {
                    conds.push((active && macros.contains_key(arg), macros.contains_key(arg)));
                }
                "ifndef" => {
                    conds.push((active && !macros.contains_key(arg), !macros.contains_key(arg)));
                }
                "else" => {
                    if conds.is_empty() {
                        return Err(err(lineno, "#else without #ifdef".into()));
                    }
                    let parent_active = conds[..conds.len() - 1].iter().all(|(x, _)| *x);
                    let last = conds.last_mut().expect("nonempty");
                    last.0 = parent_active && !last.1;
                    last.1 = true;
                }
                "endif" => {
                    if conds.pop().is_none() {
                        return Err(err(lineno, "#endif without #ifdef".into()));
                    }
                }
                other => return Err(err(lineno, format!("unknown directive `#{other}`"))),
            }
            continue;
        }
        if !active {
            continue;
        }
        out.push_str(&substitute(line, macros));
        out.push('\n');
    }
    if !conds.is_empty() {
        return Err(CError::Pp {
            file: file.to_string(),
            line: src.lines().count() as u32,
            msg: "unterminated #ifdef".into(),
        });
    }
    Ok(())
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Substitute object-like macros in one line, skipping string and character
/// literals and comments. Repeats until fixpoint (bounded, to tolerate
/// self-referential macros).
fn substitute(line: &str, macros: &BTreeMap<String, String>) -> String {
    let mut cur = line.to_string();
    for _ in 0..8 {
        let next = substitute_once(&cur, macros);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

fn substitute_once(line: &str, macros: &BTreeMap<String, String>) -> String {
    let b = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // skip string literals
        if c == b'"' || c == b'\'' {
            let quote = c;
            out.push(c as char);
            i += 1;
            while i < b.len() {
                out.push(b[i] as char);
                if b[i] == b'\\' && i + 1 < b.len() {
                    out.push(b[i + 1] as char);
                    i += 2;
                    continue;
                }
                if b[i] == quote {
                    i += 1;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // skip line comments entirely
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            out.push_str(&line[i..]);
            break;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let word = &line[start..i];
            match macros.get(word) {
                Some(val) => out.push_str(val),
                None => out.push_str(word),
            }
            continue;
        }
        out.push(c as char);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(src: &str) -> String {
        preprocess("t.c", src, &PpOptions::default(), &NoFiles).unwrap()
    }

    #[test]
    fn define_and_substitute() {
        let out = pp("#define N 4\nint x = N;\n");
        assert_eq!(out, "int x = 4;\n");
    }

    #[test]
    fn no_substitution_in_strings() {
        let out = pp("#define N 4\nchar *s = \"N is N\"; int x = N;\n");
        assert_eq!(out, "char *s = \"N is N\"; int x = 4;\n");
    }

    #[test]
    fn word_boundaries_respected() {
        let out = pp("#define N 4\nint NN = N1 + N;\n");
        assert_eq!(out, "int NN = N1 + 4;\n");
    }

    #[test]
    fn chained_macros_reach_fixpoint() {
        let out = pp("#define A B\n#define B 7\nint x = A;\n");
        assert_eq!(out, "int x = 7;\n");
    }

    #[test]
    fn ifdef_else_endif() {
        let src = "#define YES 1\n#ifdef YES\nint a;\n#else\nint b;\n#endif\n#ifdef NO\nint c;\n#else\nint d;\n#endif\n";
        assert_eq!(pp(src), "int a;\nint d;\n");
    }

    #[test]
    fn nested_conditionals() {
        let src = "#ifdef A\n#ifdef B\nint x;\n#endif\nint y;\n#endif\nint z;\n";
        assert_eq!(pp(src), "int z;\n");
        let src2 = "#define A 1\n#ifdef A\n#ifndef B\nint x;\n#endif\n#endif\n";
        assert_eq!(pp(src2), "int x;\n");
    }

    #[test]
    fn include_via_provider_and_dirs() {
        let mut files = BTreeMap::new();
        files.insert("inc/defs.h".to_string(), "#define MAX 10\n".to_string());
        let opts = PpOptions { include_dirs: vec!["inc".into()], defines: vec![] };
        let out = preprocess("t.c", "#include \"defs.h\"\nint x = MAX;\n", &opts, &files).unwrap();
        assert_eq!(out, "int x = 10;\n");
    }

    #[test]
    fn circular_include_rejected() {
        let mut files = BTreeMap::new();
        files.insert("a.h".to_string(), "#include \"a.h\"\n".to_string());
        let r = preprocess("t.c", "#include \"a.h\"\n", &PpOptions::default(), &files);
        assert!(r.is_err());
    }

    #[test]
    fn missing_include_is_error() {
        let r = preprocess("t.c", "#include \"nope.h\"\n", &PpOptions::default(), &NoFiles);
        assert!(r.is_err());
    }

    #[test]
    fn predefines_from_options() {
        let opts = PpOptions { include_dirs: vec![], defines: vec![("DEBUG".into(), "1".into())] };
        let out =
            preprocess("t.c", "#ifdef DEBUG\nint dbg = DEBUG;\n#endif\n", &opts, &NoFiles).unwrap();
        assert_eq!(out, "int dbg = 1;\n");
    }

    #[test]
    fn unterminated_ifdef_is_error() {
        assert!(preprocess("t.c", "#ifdef X\nint a;\n", &PpOptions::default(), &NoFiles).is_err());
    }

    #[test]
    fn ifndef_include_guard_pattern() {
        let mut files = BTreeMap::new();
        files.insert(
            "g.h".to_string(),
            "#ifndef G_H\n#define G_H 1\nint from_header;\n#endif\n".to_string(),
        );
        // Including twice from different nesting is fine because of the
        // guard (direct circularity is separately rejected).
        let src = "#include \"g.h\"\n#include \"g.h\"\nint main_var;\n";
        let out = preprocess("t.c", src, &PpOptions::default(), &files).unwrap();
        assert_eq!(out.matches("from_header").count(), 1);
    }
}
