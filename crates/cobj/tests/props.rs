//! Property tests over the object-file layer.

use std::collections::BTreeMap;

use proptest::prelude::*;

use cobj::ir::Instr;
use cobj::object::{FuncDef, ObjectFile, Symbol};
use cobj::{link, objcopy, Archive, LinkInput, LinkOptions};

/// A generated object: `nfuncs` functions named f0..fn, a call chain
/// between consecutive ones, and one undefined external per object.
fn gen_object(tag: usize, nfuncs: usize) -> ObjectFile {
    let mut o = ObjectFile::new(format!("gen{tag}.o"));
    let ext = o.add_symbol(Symbol::undef(format!("ext{tag}")));
    let mut syms = Vec::new();
    for i in 0..nfuncs {
        syms.push(o.add_symbol(Symbol::func(format!("g{tag}_f{i}"))));
    }
    for i in 0..nfuncs {
        let mut body = Vec::new();
        if i + 1 < nfuncs {
            body.push(Instr::Call { dst: Some(0), target: syms[i + 1], args: vec![] });
        } else {
            body.push(Instr::Call { dst: Some(0), target: ext, args: vec![] });
        }
        body.push(Instr::Ret { value: Some(0) });
        o.funcs.push(FuncDef { sym: syms[i], params: 0, nregs: 1, frame_size: 0, body });
    }
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_objects_validate_and_link(nobjs in 1usize..5, nfuncs in 1usize..6) {
        let mut inputs = Vec::new();
        for t in 0..nobjs {
            let o = gen_object(t, nfuncs);
            prop_assert!(o.validate().is_ok());
            inputs.push(LinkInput::Object(o));
        }
        // provide the externals
        let mut provider = ObjectFile::new("ext.o");
        let mut bodies = Vec::new();
        for t in 0..nobjs {
            let s = provider.add_symbol(Symbol::func(format!("ext{t}")));
            bodies.push(s);
        }
        for s in bodies {
            provider.funcs.push(FuncDef {
                sym: s,
                params: 0,
                nregs: 1,
                frame_size: 0,
                body: vec![Instr::Const { dst: 0, value: 1 }, Instr::Ret { value: Some(0) }],
            });
        }
        inputs.push(LinkInput::Object(provider));
        let img = link(&inputs, &LinkOptions::default()).expect("links");
        prop_assert_eq!(img.funcs.len(), nobjs * nfuncs + nobjs);
        // layout invariants: addresses strictly increase and never overlap
        for w in img.funcs.windows(2) {
            prop_assert!(w[0].addr + w[0].size <= w[1].addr);
        }
        prop_assert!(img.data_base >= img.funcs.last().map(|f| f.addr + f.size).unwrap_or(0));
    }

    #[test]
    fn rename_then_inverse_is_identity(nfuncs in 1usize..6) {
        let o = gen_object(0, nfuncs);
        let mut fwd = BTreeMap::new();
        let mut back = BTreeMap::new();
        for i in 0..nfuncs {
            fwd.insert(format!("g0_f{i}"), format!("renamed_{i}"));
            back.insert(format!("renamed_{i}"), format!("g0_f{i}"));
        }
        let renamed = objcopy::rename_symbols(&o, &fwd).expect("rename ok");
        prop_assert!(renamed.validate().is_ok());
        let restored = objcopy::rename_symbols(&renamed, &back).expect("inverse ok");
        prop_assert_eq!(restored.symbols, o.symbols);
        prop_assert_eq!(restored.funcs, o.funcs);
    }

    #[test]
    fn gc_is_idempotent_and_sound(nfuncs in 2usize..7) {
        let mut o = gen_object(0, nfuncs);
        // localize everything but the entry; the chain keeps all reachable
        let mut keep = std::collections::BTreeSet::new();
        keep.insert("g0_f0".to_string());
        objcopy::localize_except(&mut o, &keep);
        let g1 = objcopy::gc(&o);
        let g2 = objcopy::gc(&g1);
        prop_assert!(g1.validate().is_ok());
        prop_assert_eq!(g1.funcs.len(), g2.funcs.len());
        prop_assert_eq!(g1.symbols.len(), g2.symbols.len());
        // the chain is fully reachable from f0
        prop_assert_eq!(g1.funcs.len(), nfuncs);
    }

    #[test]
    fn archive_pull_set_is_minimal(extra in 1usize..5) {
        // main needs exactly one member; `extra` others must stay out
        let mut main = ObjectFile::new("main.o");
        let need = main.add_symbol(Symbol::undef("needed"));
        let m = main.add_symbol(Symbol::func("main"));
        main.funcs.push(FuncDef {
            sym: m,
            params: 0,
            nregs: 1,
            frame_size: 0,
            body: vec![Instr::Call { dst: Some(0), target: need, args: vec![] }, Instr::Ret { value: Some(0) }],
        });
        let mut members = Vec::new();
        for i in 0..extra {
            let mut o = ObjectFile::new(format!("x{i}.o"));
            let s = o.add_symbol(Symbol::func(format!("unneeded{i}")));
            o.funcs.push(FuncDef { sym: s, params: 0, nregs: 0, frame_size: 0, body: vec![Instr::Ret { value: None }] });
            members.push(o);
        }
        let mut o = ObjectFile::new("needed.o");
        let s = o.add_symbol(Symbol::func("needed"));
        o.funcs.push(FuncDef { sym: s, params: 0, nregs: 0, frame_size: 0, body: vec![Instr::Ret { value: None }] });
        members.push(o);
        let img = link(
            &[LinkInput::Object(main), LinkInput::Archive(Archive::from_members("lib.a", members))],
            &LinkOptions::new("main", []),
        ).expect("links");
        prop_assert_eq!(img.funcs.len(), 2, "exactly main + needed");
    }
}
