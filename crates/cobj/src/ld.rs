//! The bag-of-objects linker.
//!
//! This is a faithful model of classic Unix `ld` semantics as the paper
//! describes them (Section 2.1 and 5.1):
//!
//! * Inputs are processed **in order**; explicit objects are always
//!   included.
//! * An archive member is included only if it defines a symbol that is
//!   currently undefined; an archive is re-scanned until no more members
//!   are pulled in. This is what made "override by careful ordering of
//!   ld's arguments" work in the pre-Knit OSKit.
//! * All resolution happens in a single global namespace: two included
//!   definitions of one name are a hard error, and there is no way to link
//!   the same undefined name to two different providers — which is exactly
//!   why `ld` cannot express the interposition of Figure 1(c). (The Knit
//!   pipeline avoids the limitation by `objcopy`-renaming symbols *before*
//!   calling this same linker.)
//!
//! Undefined names listed in [`LinkOptions::runtime_symbols`] are satisfied
//! by the runtime (the `machine` crate's intrinsics) rather than by objects.

use std::collections::{BTreeMap, BTreeSet};

use crate::archive::Archive;
use crate::error::LinkError;
use crate::image::{
    align_up, CallTarget, Image, ImageFunc, RInstr, SymbolLoc, FUNC_ALIGN, TEXT_BASE,
};
use crate::ir::{Instr, SymId};
use crate::layout::{FuncMeta, Layout};
use crate::object::{FuncDef, ObjectFile, SymDef};

/// One linker command-line argument.
#[derive(Debug, Clone)]
pub enum LinkInput {
    /// An explicit object file — always included.
    Object(ObjectFile),
    /// An archive — members included on demand.
    Archive(Archive),
}

/// Linker configuration.
#[derive(Debug, Clone, Default)]
pub struct LinkOptions {
    /// Entry symbol to record in the image (must be a defined function if
    /// given).
    pub entry: Option<String>,
    /// Names provided by the runtime; undefined references to these resolve
    /// to intrinsics instead of failing.
    pub runtime_symbols: BTreeSet<String>,
    /// Text-placement strategy. [`Layout::InputOrder`] (the default) keeps
    /// the historical placement byte-for-byte.
    pub layout: Layout,
}

impl LinkOptions {
    /// Options with an entry point and a set of runtime symbols.
    pub fn new(entry: impl Into<String>, runtime: impl IntoIterator<Item = String>) -> Self {
        LinkOptions {
            entry: Some(entry.into()),
            runtime_symbols: runtime.into_iter().collect(),
            layout: Layout::InputOrder,
        }
    }

    /// Replace the text-placement strategy.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }
}

/// Link `inputs` into an executable [`Image`].
pub fn link(inputs: &[LinkInput], opts: &LinkOptions) -> Result<Image, LinkError> {
    let included = select_objects(inputs, opts)?;
    layout(&included, opts)
}

/// Phase 1: decide which objects participate, applying archive semantics.
fn select_objects(inputs: &[LinkInput], opts: &LinkOptions) -> Result<Vec<ObjectFile>, LinkError> {
    let mut included: Vec<ObjectFile> = Vec::new();
    // name -> index of including object in `included`
    let mut defined: BTreeMap<String, usize> = BTreeMap::new();
    // names referenced but not yet defined (runtime-satisfied names never
    // enter this set, so they do not pull archive members)
    let mut undefined: BTreeSet<String> = BTreeSet::new();

    let include = |obj: &ObjectFile,
                   included: &mut Vec<ObjectFile>,
                   defined: &mut BTreeMap<String, usize>,
                   undefined: &mut BTreeSet<String>|
     -> Result<(), LinkError> {
        obj.validate()?;
        let idx = included.len();
        for s in &obj.symbols {
            if s.is_global_def() {
                if let Some(&first) = defined.get(&s.name) {
                    return Err(LinkError::MultipleDefinition {
                        name: s.name.clone(),
                        first: included[first].name.clone(),
                        second: obj.name.clone(),
                    });
                }
                defined.insert(s.name.clone(), idx);
                undefined.remove(&s.name);
            }
        }
        for s in &obj.symbols {
            if s.def == SymDef::Undefined
                && !defined.contains_key(&s.name)
                && !opts.runtime_symbols.contains(&s.name)
            {
                undefined.insert(s.name.clone());
            }
        }
        included.push(obj.clone());
        Ok(())
    };

    for input in inputs {
        match input {
            LinkInput::Object(o) => include(o, &mut included, &mut defined, &mut undefined)?,
            LinkInput::Archive(a) => {
                let mut pulled_members: BTreeSet<usize> = BTreeSet::new();
                loop {
                    let mut pulled = false;
                    for (mi, m) in a.members.iter().enumerate() {
                        if pulled_members.contains(&mi) {
                            continue;
                        }
                        let satisfies = m.exported_names().iter().any(|n| undefined.contains(*n));
                        if satisfies {
                            include(m, &mut included, &mut defined, &mut undefined)?;
                            pulled_members.insert(mi);
                            pulled = true;
                        }
                    }
                    if !pulled {
                        break;
                    }
                }
            }
        }
    }

    if let Some(name) = undefined.iter().next() {
        // Gather every object that references the first missing name, for a
        // useful diagnostic.
        let refs: Vec<String> = included
            .iter()
            .filter(|o| o.undefined_names().contains(name.as_str()))
            .map(|o| o.name.clone())
            .collect();
        return Err(LinkError::UndefinedReference { name: name.clone(), referenced_from: refs });
    }
    Ok(included)
}

/// Resolution of one symbol-table entry of one included object.
#[derive(Debug, Clone, Copy)]
enum Resolved {
    Func(u32),
    Data(u64),
    Intrinsic(u32),
}

/// Phase 2: lay out text and data, apply relocations, resolve operands.
fn layout(included: &[ObjectFile], opts: &LinkOptions) -> Result<Image, LinkError> {
    // --- assign text addresses ---
    struct FuncSlot<'a> {
        obj: usize,
        def: &'a FuncDef,
        addr: u64,
    }
    // Gather candidates in input order, then let the layout strategy pick
    // the placement order. `InputOrder` returns the identity permutation,
    // reproducing the historical images byte-for-byte.
    let mut raw: Vec<(usize, &FuncDef)> = Vec::new();
    let mut metas: Vec<FuncMeta> = Vec::new();
    for (oi, obj) in included.iter().enumerate() {
        for f in &obj.funcs {
            raw.push((oi, f));
            metas.push(FuncMeta { name: obj.symbol(f.sym).name.clone(), size: f.size_bytes() });
        }
    }
    let order = opts.layout.order(&metas);
    debug_assert_eq!(order.len(), raw.len());
    let mut slots: Vec<FuncSlot<'_>> = Vec::with_capacity(raw.len());
    let mut cursor = TEXT_BASE;
    for &ri in &order {
        let (oi, f) = raw[ri];
        cursor = align_up(cursor, FUNC_ALIGN);
        slots.push(FuncSlot { obj: oi, def: f, addr: cursor });
        cursor += f.size_bytes();
    }
    let text_end = cursor;
    let text_size: u64 = included.iter().map(|o| o.text_size()).sum();

    // --- assign data addresses ---
    let data_base = align_up(text_end, 0x1000);
    let mut data_cursor = data_base;
    // (object idx, data idx) -> address
    let mut data_addrs: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for (oi, obj) in included.iter().enumerate() {
        for (di, d) in obj.data.iter().enumerate() {
            data_cursor = align_up(data_cursor, d.align.max(1));
            data_addrs.insert((oi, di), data_cursor);
            data_cursor += d.size_bytes();
        }
    }
    let heap_base = align_up(data_cursor.max(data_base + 1), 0x1000);

    // --- intrinsic table ---
    let intrinsics: Vec<String> = opts.runtime_symbols.iter().cloned().collect();
    let intrinsic_ids: BTreeMap<&str, u32> =
        intrinsics.iter().enumerate().map(|(i, n)| (n.as_str(), i as u32)).collect();

    // --- global resolution tables ---
    // func symbol name -> image func index; data name -> address
    let mut global: BTreeMap<&str, Resolved> = BTreeMap::new();
    // per-object: SymId -> Resolved (includes locals)
    let mut per_obj: Vec<BTreeMap<u32, Resolved>> = vec![BTreeMap::new(); included.len()];

    for (fi, slot) in slots.iter().enumerate() {
        let obj = &included[slot.obj];
        let sym = obj.symbol(slot.def.sym);
        per_obj[slot.obj].insert(slot.def.sym.0, Resolved::Func(fi as u32));
        if sym.is_global_def() {
            global.insert(sym.name.as_str(), Resolved::Func(fi as u32));
        }
    }
    for (oi, obj) in included.iter().enumerate() {
        for (di, d) in obj.data.iter().enumerate() {
            let addr = data_addrs[&(oi, di)];
            let sym = obj.symbol(d.sym);
            per_obj[oi].insert(d.sym.0, Resolved::Data(addr));
            if sym.is_global_def() {
                global.insert(sym.name.as_str(), Resolved::Data(addr));
            }
        }
    }
    // undefined entries: resolve via global table or intrinsics
    for (oi, obj) in included.iter().enumerate() {
        for (si, s) in obj.symbols.iter().enumerate() {
            if s.def == SymDef::Undefined {
                let r = match global.get(s.name.as_str()) {
                    Some(r) => *r,
                    None => match intrinsic_ids.get(s.name.as_str()) {
                        Some(id) => Resolved::Intrinsic(*id),
                        // select_objects guarantees this cannot happen
                        None => {
                            return Err(LinkError::UndefinedReference {
                                name: s.name.clone(),
                                referenced_from: vec![obj.name.clone()],
                            })
                        }
                    },
                };
                per_obj[oi].insert(si as u32, r);
            }
        }
    }

    // --- build image functions with resolved bodies ---
    let resolve_addr_value = |r: Resolved, slots: &[FuncSlot<'_>]| -> u64 {
        match r {
            Resolved::Func(fi) => slots[fi as usize].addr,
            Resolved::Data(a) => a,
            Resolved::Intrinsic(id) => Image::intrinsic_addr(id),
        }
    };

    let mut funcs: Vec<ImageFunc> = Vec::with_capacity(slots.len());
    for slot in &slots {
        let obj = &included[slot.obj];
        let name = obj.symbol(slot.def.sym).name.clone();
        let mut body = Vec::with_capacity(slot.def.body.len());
        let mut instr_addrs = Vec::with_capacity(slot.def.body.len());
        let mut instr_sizes = Vec::with_capacity(slot.def.body.len());
        let mut pc = slot.addr;
        for instr in &slot.def.body {
            let size = instr.size_bytes();
            instr_addrs.push(pc);
            instr_sizes.push(size as u16);
            pc += size;
            let resolve = |sym: SymId| per_obj[slot.obj][&sym.0];
            let r = match instr {
                Instr::Const { dst, value } => RInstr::Const { dst: *dst, value: *value },
                Instr::Mov { dst, src } => RInstr::Mov { dst: *dst, src: *src },
                Instr::Bin { op, dst, a, b } => RInstr::Bin { op: *op, dst: *dst, a: *a, b: *b },
                Instr::Un { op, dst, a } => RInstr::Un { op: *op, dst: *dst, a: *a },
                Instr::Load { dst, addr, offset, width } => {
                    RInstr::Load { dst: *dst, addr: *addr, offset: *offset, width: *width }
                }
                Instr::Store { addr, offset, src, width } => {
                    RInstr::Store { addr: *addr, offset: *offset, src: *src, width: *width }
                }
                Instr::Addr { dst, sym, offset } => {
                    let base = resolve_addr_value(resolve(*sym), &slots);
                    RInstr::Const { dst: *dst, value: base.wrapping_add_signed(*offset) as i64 }
                }
                Instr::FrameAddr { dst, offset } => {
                    RInstr::FrameAddr { dst: *dst, offset: *offset }
                }
                Instr::VarArg { dst, idx } => RInstr::VarArg { dst: *dst, idx: *idx },
                Instr::Call { dst, target, args } => {
                    let tgt = match resolve(*target) {
                        Resolved::Func(fi) => CallTarget::Func(fi),
                        Resolved::Intrinsic(id) => CallTarget::Intrinsic(id),
                        Resolved::Data(_) => {
                            return Err(LinkError::KindMismatch {
                                name: obj.symbol(*target).name.clone(),
                                from: obj.name.clone(),
                            })
                        }
                    };
                    RInstr::Call { dst: *dst, target: tgt, args: args.clone() }
                }
                Instr::CallInd { dst, target, args } => {
                    RInstr::CallInd { dst: *dst, target: *target, args: args.clone() }
                }
                Instr::Jump { target } => RInstr::Jump { target: *target },
                Instr::Branch { cond, then_to, else_to } => {
                    RInstr::Branch { cond: *cond, then_to: *then_to, else_to: *else_to }
                }
                Instr::Ret { value } => RInstr::Ret { value: *value },
                Instr::Nop => RInstr::Nop,
            };
            body.push(r);
        }
        funcs.push(ImageFunc {
            name,
            addr: slot.addr,
            size: slot.def.size_bytes(),
            params: slot.def.params,
            nregs: slot.def.nregs,
            frame_size: slot.def.frame_size,
            body,
            instr_addrs,
            instr_sizes,
        });
    }

    // --- build and relocate the data segment ---
    let mut data = vec![0u8; (data_cursor - data_base) as usize];
    for (oi, obj) in included.iter().enumerate() {
        for (di, d) in obj.data.iter().enumerate() {
            let addr = data_addrs[&(oi, di)];
            let off = (addr - data_base) as usize;
            data[off..off + d.init.len()].copy_from_slice(&d.init);
            for reloc in &d.relocs {
                let target = per_obj[oi][&reloc.sym.0];
                let value = resolve_addr_value(target, &slots).wrapping_add_signed(reloc.addend);
                let at = off + reloc.offset as usize;
                data[at..at + 8].copy_from_slice(&value.to_le_bytes());
            }
        }
    }

    // --- symbol map and entry ---
    let mut symbols: BTreeMap<String, SymbolLoc> = BTreeMap::new();
    for (name, r) in &global {
        let loc = match r {
            Resolved::Func(fi) => SymbolLoc::Func(*fi),
            Resolved::Data(a) => SymbolLoc::Data(*a),
            Resolved::Intrinsic(_) => continue,
        };
        symbols.insert((*name).to_string(), loc);
    }
    let entry = match &opts.entry {
        Some(name) => match symbols.get(name) {
            Some(SymbolLoc::Func(fi)) => Some(*fi),
            _ => return Err(LinkError::NoEntry { name: name.clone() }),
        },
        None => None,
    };

    let addr_to_func =
        funcs.iter().enumerate().map(|(i, f)| (f.addr, i as u32)).collect::<BTreeMap<_, _>>();

    Ok(Image {
        funcs,
        addr_to_func,
        data,
        data_base,
        heap_base,
        symbols,
        intrinsics,
        text_size,
        entry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr;
    use crate::object::{DataDef, DataReloc, Symbol};

    /// Object defining `name` as a function that returns `ret`, optionally
    /// calling `calls` first.
    fn func_obj(objname: &str, name: &str, ret: i64, calls: &[&str]) -> ObjectFile {
        let mut o = ObjectFile::new(objname);
        let f = o.add_symbol(Symbol::func(name));
        let mut body = Vec::new();
        for c in calls {
            let cs = o.find_symbol(c).unwrap_or_else(|| o.add_symbol(Symbol::undef(*c)));
            body.push(Instr::Call { dst: None, target: cs, args: vec![] });
        }
        body.push(Instr::Const { dst: 0, value: ret });
        body.push(Instr::Ret { value: Some(0) });
        o.funcs.push(FuncDef { sym: f, params: 0, nregs: 1, frame_size: 0, body });
        o
    }

    #[test]
    fn simple_link_resolves_calls() {
        let a = func_obj("main.o", "main", 1, &["helper"]);
        let b = func_obj("help.o", "helper", 2, &[]);
        let img =
            link(&[LinkInput::Object(a), LinkInput::Object(b)], &LinkOptions::new("main", []))
                .unwrap();
        assert_eq!(img.funcs.len(), 2);
        let main = &img.funcs[img.entry.unwrap() as usize];
        assert!(matches!(
            main.body[0],
            RInstr::Call { target: CallTarget::Func(fi), .. } if img.funcs[fi as usize].name == "helper"
        ));
    }

    #[test]
    fn undefined_reference_is_an_error() {
        let a = func_obj("main.o", "main", 1, &["missing"]);
        let err = link(&[LinkInput::Object(a)], &LinkOptions::new("main", [])).unwrap_err();
        match err {
            LinkError::UndefinedReference { name, referenced_from } => {
                assert_eq!(name, "missing");
                assert_eq!(referenced_from, vec!["main.o".to_string()]);
            }
            other => panic!("expected undefined reference, got {other}"),
        }
    }

    #[test]
    fn multiple_definition_is_an_error() {
        let a = func_obj("a.o", "f", 1, &[]);
        let b = func_obj("b.o", "f", 2, &[]);
        let err = link(&[LinkInput::Object(a), LinkInput::Object(b)], &LinkOptions::default())
            .unwrap_err();
        assert!(matches!(err, LinkError::MultipleDefinition { .. }));
    }

    #[test]
    fn archive_member_pulled_only_on_demand() {
        let main = func_obj("main.o", "main", 1, &["used"]);
        let lib = Archive::from_members(
            "lib.a",
            vec![func_obj("used.o", "used", 2, &[]), func_obj("unused.o", "unused", 3, &[])],
        );
        let img = link(
            &[LinkInput::Object(main), LinkInput::Archive(lib)],
            &LinkOptions::new("main", []),
        )
        .unwrap();
        // `unused.o` must not be included.
        assert_eq!(img.funcs.len(), 2);
        assert!(img.func_by_name("unused").is_none());
    }

    #[test]
    fn archive_pull_reaches_fixpoint() {
        // main -> a, a -> b, both in the same archive, b appearing first:
        // requires the re-scan loop.
        let main = func_obj("main.o", "main", 1, &["a"]);
        let lib = Archive::from_members(
            "lib.a",
            vec![func_obj("b.o", "b", 2, &[]), func_obj("a.o", "a", 3, &["b"])],
        );
        let img = link(
            &[LinkInput::Object(main), LinkInput::Archive(lib)],
            &LinkOptions::new("main", []),
        )
        .unwrap();
        assert_eq!(img.funcs.len(), 3);
    }

    #[test]
    fn override_by_ordering_works_like_the_oskit_used_it() {
        // Paper §5.1: placing a replacement object before the original
        // library overrides the component.
        let main = func_obj("main.o", "main", 1, &["console_putc"]);
        let replacement = func_obj("serial.o", "console_putc", 42, &[]);
        let lib = Archive::from_members("libc.a", vec![func_obj("vga.o", "console_putc", 7, &[])]);
        let img = link(
            &[LinkInput::Object(main), LinkInput::Object(replacement), LinkInput::Archive(lib)],
            &LinkOptions::new("main", []),
        )
        .unwrap();
        // The archive member is skipped because the symbol is already
        // defined; the replacement wins.
        assert_eq!(img.funcs.len(), 2);
        let f = img.func_by_name("console_putc").unwrap();
        assert!(matches!(img.funcs[f as usize].body[0], RInstr::Const { value: 42, .. }));
    }

    #[test]
    fn interposition_is_impossible_with_ld() {
        // Figure 1(c): we want logger between main and serve, but all three
        // pieces speak the same symbol `serve`. Including both providers of
        // `serve` is a multiple-definition error — ld cannot build the
        // three-piece puzzle.
        let main = func_obj("main.o", "main", 1, &["serve"]);
        let real = func_obj("serve.o", "serve", 2, &[]);
        // logger exports `serve` and imports `serve` (impossible to express
        // in one object without renaming — we must split the name, which is
        // precisely the problem).
        let logger = func_obj("log.o", "serve", 3, &[]);
        let err = link(
            &[LinkInput::Object(main), LinkInput::Object(logger), LinkInput::Object(real)],
            &LinkOptions::new("main", []),
        )
        .unwrap_err();
        assert!(matches!(err, LinkError::MultipleDefinition { .. }));
    }

    #[test]
    fn runtime_symbols_become_intrinsics() {
        let main = func_obj("main.o", "main", 1, &["__halt"]);
        let img =
            link(&[LinkInput::Object(main)], &LinkOptions::new("main", ["__halt".to_string()]))
                .unwrap();
        assert_eq!(img.intrinsics, vec!["__halt".to_string()]);
        assert!(matches!(
            img.funcs[0].body[0],
            RInstr::Call { target: CallTarget::Intrinsic(0), .. }
        ));
    }

    #[test]
    fn object_definition_overrides_runtime_symbol() {
        let main = func_obj("main.o", "main", 1, &["__halt"]);
        let own = func_obj("halt.o", "__halt", 9, &[]);
        let img = link(
            &[LinkInput::Object(main), LinkInput::Object(own)],
            &LinkOptions::new("main", ["__halt".to_string()]),
        )
        .unwrap();
        assert!(matches!(img.funcs[0].body[0], RInstr::Call { target: CallTarget::Func(_), .. }));
    }

    #[test]
    fn data_relocation_patches_function_address() {
        // A vtable-like data object holding a function pointer.
        let mut o = ObjectFile::new("vt.o");
        let f = o.add_symbol(Symbol::func("handler"));
        let v = o.add_symbol(Symbol::data("vtable"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 1,
            frame_size: 0,
            body: vec![Instr::Const { dst: 0, value: 5 }, Instr::Ret { value: Some(0) }],
        });
        o.data.push(DataDef {
            sym: v,
            init: vec![0; 8],
            zeroed: 0,
            relocs: vec![DataReloc { offset: 0, sym: f, addend: 0 }],
            align: 8,
        });
        let img = link(&[LinkInput::Object(o)], &LinkOptions::default()).unwrap();
        let vaddr = img.data_by_name("vtable").unwrap();
        let off = (vaddr - img.data_base) as usize;
        let ptr = u64::from_le_bytes(img.data[off..off + 8].try_into().unwrap());
        assert_eq!(img.func_at_addr(ptr), Some(0));
    }

    #[test]
    fn text_layout_is_aligned_and_sized() {
        let a = func_obj("a.o", "f", 1, &[]);
        let b = func_obj("b.o", "g", 2, &[]);
        let img =
            link(&[LinkInput::Object(a), LinkInput::Object(b)], &LinkOptions::default()).unwrap();
        for f in &img.funcs {
            assert_eq!(f.addr % FUNC_ALIGN, 0);
            assert_eq!(f.size, f.instr_sizes.iter().map(|&s| s as u64).sum::<u64>());
            // instruction addresses are contiguous
            for i in 1..f.body.len() {
                assert_eq!(f.instr_addrs[i], f.instr_addrs[i - 1] + f.instr_sizes[i - 1] as u64);
            }
        }
        assert_eq!(img.text_size, 6 + 6);
        assert!(img.data_base >= TEXT_BASE);
        assert!(img.heap_base >= img.data_base);
    }

    #[test]
    fn default_layout_pins_historical_input_order_placement() {
        // Pin the exact placement the pre-strategy linker produced: input
        // order, each function aligned to FUNC_ALIGN. Each func_obj body
        // (Const + Ret) encodes to 6 bytes, so with 16-byte alignment the
        // three functions land at fixed, known addresses.
        let objs = [
            func_obj("a.o", "f", 1, &[]),
            func_obj("b.o", "g", 2, &[]),
            func_obj("c.o", "h", 3, &[]),
        ];
        let inputs: Vec<LinkInput> = objs.iter().cloned().map(LinkInput::Object).collect();
        let img = link(&inputs, &LinkOptions::default()).unwrap();
        let names: Vec<&str> = img.funcs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["f", "g", "h"], "input order preserved");
        assert_eq!(
            img.funcs.iter().map(|f| f.addr).collect::<Vec<_>>(),
            vec![TEXT_BASE, TEXT_BASE + 16, TEXT_BASE + 32],
        );
        // An explicit InputOrder strategy is the same image, byte for byte
        // (Image's PartialEq compares every function body, address, datum,
        // and symbol).
        let explicit =
            link(&inputs, &LinkOptions::default().with_layout(crate::layout::Layout::InputOrder))
                .unwrap();
        assert_eq!(img, explicit);
    }

    #[test]
    fn profile_guided_layout_moves_cold_code_behind_hot() {
        use crate::layout::{Layout, LayoutProfile};
        // main calls hot; cold is linked between them in input order.
        let objs = [
            func_obj("main.o", "main", 1, &["hot"]),
            func_obj("cold.o", "cold", 2, &[]),
            func_obj("hot.o", "hot", 3, &[]),
        ];
        let inputs: Vec<LinkInput> = objs.iter().cloned().map(LinkInput::Object).collect();
        let mut p = LayoutProfile::default();
        p.record_edge("main", "hot", 100);
        p.record_func("main", 10);
        p.record_func("hot", 10);
        let img =
            link(&inputs, &LinkOptions::new("main", []).with_layout(Layout::ProfileGuided(p)))
                .unwrap();
        let names: Vec<&str> = img.funcs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["main", "hot", "cold"], "hot pair adjacent, cold tail");
        // Same function set and sizes as the default layout, different order.
        let base = link(&inputs, &LinkOptions::new("main", [])).unwrap();
        let mut a: Vec<(String, u64)> =
            base.funcs.iter().map(|f| (f.name.clone(), f.size)).collect();
        let mut b: Vec<(String, u64)> =
            img.funcs.iter().map(|f| (f.name.clone(), f.size)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // The call still resolves to the right function.
        let main = img.entry.unwrap() as usize;
        assert!(matches!(
            img.funcs[main].body[0],
            RInstr::Call { target: CallTarget::Func(fi), .. }
                if img.funcs[fi as usize].name == "hot"
        ));
    }

    #[test]
    fn entry_must_be_defined_function() {
        let a = func_obj("a.o", "f", 1, &[]);
        let err = link(&[LinkInput::Object(a)], &LinkOptions::new("main", [])).unwrap_err();
        assert!(matches!(err, LinkError::NoEntry { .. }));
    }

    #[test]
    fn local_symbols_do_not_clash_across_objects() {
        // Two objects both defining a local (static) `helper` and a global
        // calling it: legal under ld, each resolves to its own copy.
        fn with_static(objname: &str, global: &str, ret: i64) -> ObjectFile {
            let mut o = ObjectFile::new(objname);
            let h = o.add_symbol(Symbol::local_func("helper"));
            let g = o.add_symbol(Symbol::func(global));
            o.funcs.push(FuncDef {
                sym: h,
                params: 0,
                nregs: 1,
                frame_size: 0,
                body: vec![Instr::Const { dst: 0, value: ret }, Instr::Ret { value: Some(0) }],
            });
            o.funcs.push(FuncDef {
                sym: g,
                params: 0,
                nregs: 1,
                frame_size: 0,
                body: vec![
                    Instr::Call { dst: Some(0), target: h, args: vec![] },
                    Instr::Ret { value: Some(0) },
                ],
            });
            o
        }
        let img = link(
            &[
                LinkInput::Object(with_static("a.o", "fa", 10)),
                LinkInput::Object(with_static("b.o", "fb", 20)),
            ],
            &LinkOptions::default(),
        )
        .unwrap();
        assert_eq!(img.funcs.len(), 4);
        // fa's call goes to a.o's helper, fb's to b.o's.
        let fa = img.func_by_name("fa").unwrap() as usize;
        let fb = img.func_by_name("fb").unwrap() as usize;
        let target_of = |fi: usize| match img.funcs[fi].body[0] {
            RInstr::Call { target: CallTarget::Func(t), .. } => t as usize,
            _ => panic!("expected call"),
        };
        let ha = target_of(fa);
        let hb = target_of(fb);
        assert_ne!(ha, hb);
        assert!(matches!(img.funcs[ha].body[0], RInstr::Const { value: 10, .. }));
        assert!(matches!(img.funcs[hb].body[0], RInstr::Const { value: 20, .. }));
    }
}
