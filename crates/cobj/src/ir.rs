//! The simulated instruction set.
//!
//! Compiled code in this reproduction is a simple register-machine bytecode.
//! Every instruction has a deterministic *encoded size in bytes*, loosely
//! modeled on a 32-bit x86 encoding; the sum of instruction sizes is the
//! program's text size, which is one of the three columns the paper reports
//! in Table 1 and also drives the I-cache simulation in the `machine` crate.
//!
//! Symbolic operands ([`SymId`]) index the owning object file's symbol
//! table; they are resolved to absolute addresses or function indices when
//! the object is linked into an [`crate::image::Image`].

/// A virtual register within a function frame.
///
/// Registers are function-local and unlimited in number; the cost model
/// charges for instructions, not register pressure (mirroring the paper's
/// reliance on gcc for low-level codegen quality).
pub type Reg = u32;

/// Index into an [`crate::object::ObjectFile`]'s symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte (`char`).
    W1,
    /// 2 bytes.
    W2,
    /// 4 bytes.
    W4,
    /// 8 bytes (`int`, pointers).
    W8,
}

impl Width {
    /// Number of bytes this width covers.
    pub fn bytes(self) -> u64 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }
}

/// Binary operators. Comparison operators produce 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Evaluate the operator on two signed 64-bit values.
    ///
    /// Division and remainder by zero are reported as `None` so the machine
    /// can raise a fault rather than panicking.
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Eq => (a == b) as i64,
            BinOp::Ne => (a != b) as i64,
            BinOp::Lt => (a < b) as i64,
            BinOp::Le => (a <= b) as i64,
            BinOp::Gt => (a > b) as i64,
            BinOp::Ge => (a >= b) as i64,
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`): 1 if operand is 0, else 0.
    Not,
    /// Bitwise complement (`~`).
    BitNot,
}

impl UnOp {
    /// Evaluate the operator.
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => (a == 0) as i64,
            UnOp::BitNot => !a,
        }
    }
}

/// A relocatable instruction as found in object files.
///
/// Jump targets are indices into the owning function's instruction vector;
/// they never cross function boundaries, so linking does not need to rewrite
/// them (only symbolic operands are relocated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = value`.
    Const { dst: Reg, value: i64 },
    /// `dst = src`.
    Mov { dst: Reg, src: Reg },
    /// `dst = a <op> b`.
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = <op> a`.
    Un { op: UnOp, dst: Reg, a: Reg },
    /// `dst = mem[addr + offset]` (sign-extended to 64 bits).
    Load { dst: Reg, addr: Reg, offset: i64, width: Width },
    /// `mem[addr + offset] = src` (truncated to width).
    Store { addr: Reg, offset: i64, src: Reg, width: Width },
    /// `dst = &sym + offset` — address of a global or function (relocated).
    Addr { dst: Reg, sym: SymId, offset: i64 },
    /// `dst = frame_pointer + offset` — address of a stack slot.
    FrameAddr { dst: Reg, offset: i64 },
    /// `dst = varargs[idx]` where `idx` (a register) counts arguments past
    /// the named parameters. Supports mini-C's variadic functions.
    VarArg { dst: Reg, idx: Reg },
    /// Direct call through a symbol (relocated at link time).
    Call { dst: Option<Reg>, target: SymId, args: Vec<Reg> },
    /// Indirect call through a function pointer value.
    CallInd { dst: Option<Reg>, target: Reg, args: Vec<Reg> },
    /// Unconditional jump to an instruction index in this function.
    Jump { target: usize },
    /// Conditional branch: if `cond != 0` go to `then_to` else `else_to`.
    Branch { cond: Reg, then_to: usize, else_to: usize },
    /// Return, optionally with a value.
    Ret { value: Option<Reg> },
    /// No operation (used as a relaxation placeholder by optimizers).
    Nop,
}

impl Instr {
    /// Encoded size in bytes, the unit of the text-size metric.
    ///
    /// The encoding is loosely x86-flavoured: immediates widen the
    /// instruction, each call argument costs a 2-byte push, and indirect
    /// calls are shorter than direct ones (no 4-byte displacement) — which
    /// is why object-style systems like Click have *smaller* text but pay
    /// more cycles per call.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Instr::Const { value, .. } => {
                if i32::try_from(*value).is_ok() {
                    5
                } else {
                    10
                }
            }
            Instr::Mov { .. } => 2,
            Instr::Bin { .. } => 3,
            Instr::Un { .. } => 3,
            Instr::Load { .. } => 4,
            Instr::Store { .. } => 4,
            Instr::Addr { .. } => 7,
            Instr::FrameAddr { .. } => 4,
            Instr::VarArg { .. } => 4,
            Instr::Call { args, .. } => 5 + 2 * args.len() as u64,
            Instr::CallInd { args, .. } => 3 + 2 * args.len() as u64,
            Instr::Jump { .. } => 2,
            Instr::Branch { .. } => 4,
            Instr::Ret { .. } => 1,
            Instr::Nop => 1,
        }
    }

    /// The symbol this instruction references, if any.
    pub fn sym_ref(&self) -> Option<SymId> {
        match self {
            Instr::Addr { sym, .. } => Some(*sym),
            Instr::Call { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Rewrite the symbol reference (used by `objcopy` when re-indexing
    /// symbol tables).
    pub fn map_sym(&mut self, f: impl Fn(SymId) -> SymId) {
        match self {
            Instr::Addr { sym, .. } => *sym = f(*sym),
            Instr::Call { target, .. } => *target = f(*target),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basic() {
        assert_eq!(BinOp::Add.eval(2, 3), Some(5));
        assert_eq!(BinOp::Sub.eval(2, 3), Some(-1));
        assert_eq!(BinOp::Mul.eval(-4, 3), Some(-12));
        assert_eq!(BinOp::Div.eval(7, 2), Some(3));
        assert_eq!(BinOp::Rem.eval(7, 2), Some(1));
        assert_eq!(BinOp::Lt.eval(1, 2), Some(1));
        assert_eq!(BinOp::Ge.eval(1, 2), Some(0));
    }

    #[test]
    fn binop_div_by_zero_is_none() {
        assert_eq!(BinOp::Div.eval(1, 0), None);
        assert_eq!(BinOp::Rem.eval(1, 0), None);
    }

    #[test]
    fn binop_wrapping() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), Some(i64::MIN));
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), Some(i64::MIN));
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Not.eval(0), 1);
        assert_eq!(UnOp::Not.eval(7), 0);
        assert_eq!(UnOp::BitNot.eval(0), -1);
    }

    #[test]
    fn sizes_reflect_immediates_and_args() {
        assert_eq!(Instr::Const { dst: 0, value: 1 }.size_bytes(), 5);
        assert_eq!(Instr::Const { dst: 0, value: i64::MAX }.size_bytes(), 10);
        let call = Instr::Call { dst: None, target: SymId(0), args: vec![1, 2, 3] };
        assert_eq!(call.size_bytes(), 11);
        let ind = Instr::CallInd { dst: None, target: 0, args: vec![1, 2, 3] };
        assert!(ind.size_bytes() < call.size_bytes());
    }

    #[test]
    fn map_sym_rewrites_refs() {
        let mut i = Instr::Call { dst: None, target: SymId(3), args: vec![] };
        i.map_sym(|SymId(n)| SymId(n + 10));
        assert_eq!(i.sym_ref(), Some(SymId(13)));
        let mut j = Instr::Mov { dst: 0, src: 1 };
        j.map_sym(|_| SymId(99));
        assert_eq!(j.sym_ref(), None);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::W1.bytes(), 1);
        assert_eq!(Width::W8.bytes(), 8);
    }
}
