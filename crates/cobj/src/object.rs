//! Relocatable object files.
//!
//! An [`ObjectFile`] is the unit of linking: a symbol table plus function
//! (text) and data definitions. This mirrors the paper's world, where every
//! component ultimately becomes one or more `.o` files — "puzzle pieces"
//! whose *tabs* are defined global symbols and whose *notches* are
//! undefined references (Figure 1 of the paper).

use std::collections::{BTreeMap, BTreeSet};

use crate::error::ObjectError;
use crate::ir::{Instr, SymId};

/// What a defined symbol names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymKind {
    /// A function in the text section.
    Func,
    /// An object in the data/bss section.
    Data,
}

/// Definition state of a symbol table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymDef {
    /// Defined in this object. `local` symbols (C `static`) are invisible
    /// to cross-object resolution — the "tabs" that are really private,
    /// which the paper calls out as a source of confusion under `ld`.
    Defined { kind: SymKind, local: bool },
    /// Referenced here, defined elsewhere (a "notch").
    Undefined,
}

/// A symbol table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// The symbol's name in the (global, for non-local symbols) namespace.
    pub name: String,
    /// Whether and how the symbol is defined.
    pub def: SymDef,
}

impl Symbol {
    /// A defined global function symbol.
    pub fn func(name: impl Into<String>) -> Self {
        Symbol { name: name.into(), def: SymDef::Defined { kind: SymKind::Func, local: false } }
    }

    /// A defined local (static) function symbol.
    pub fn local_func(name: impl Into<String>) -> Self {
        Symbol { name: name.into(), def: SymDef::Defined { kind: SymKind::Func, local: true } }
    }

    /// A defined global data symbol.
    pub fn data(name: impl Into<String>) -> Self {
        Symbol { name: name.into(), def: SymDef::Defined { kind: SymKind::Data, local: false } }
    }

    /// A defined local (static) data symbol.
    pub fn local_data(name: impl Into<String>) -> Self {
        Symbol { name: name.into(), def: SymDef::Defined { kind: SymKind::Data, local: true } }
    }

    /// An undefined reference.
    pub fn undef(name: impl Into<String>) -> Self {
        Symbol { name: name.into(), def: SymDef::Undefined }
    }

    /// True if the symbol is defined in its object.
    pub fn is_defined(&self) -> bool {
        matches!(self.def, SymDef::Defined { .. })
    }

    /// True if the symbol is defined and visible to other objects.
    pub fn is_global_def(&self) -> bool {
        matches!(self.def, SymDef::Defined { local: false, .. })
    }
}

/// A function definition in an object's text section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDef {
    /// Symbol table entry this function defines.
    pub sym: SymId,
    /// Number of named parameters; by convention they arrive in registers
    /// `0..params`.
    pub params: u32,
    /// Number of virtual registers the body uses.
    pub nregs: u32,
    /// Bytes of stack frame for address-taken locals and arrays.
    pub frame_size: u32,
    /// The instruction stream. Jump targets are indices into this vector.
    pub body: Vec<Instr>,
}

impl FuncDef {
    /// Encoded size of the function in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.body.iter().map(Instr::size_bytes).sum()
    }
}

/// An absolute 8-byte relocation within a data definition (e.g. a function
/// pointer in a vtable, or a pointer to a string literal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataReloc {
    /// Byte offset within the data definition where the 8-byte little-endian
    /// address is written.
    pub offset: u64,
    /// The symbol whose address is taken.
    pub sym: SymId,
    /// Constant added to the symbol's address.
    pub addend: i64,
}

/// A data definition (initialized bytes plus a zeroed tail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataDef {
    /// Symbol table entry this data defines.
    pub sym: SymId,
    /// Initialized bytes.
    pub init: Vec<u8>,
    /// Additional zeroed bytes after `init` (bss).
    pub zeroed: u64,
    /// Relocations patching addresses into `init`.
    pub relocs: Vec<DataReloc>,
    /// Required alignment in bytes (power of two).
    pub align: u64,
}

impl DataDef {
    /// Total size (initialized + zeroed) in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.init.len() as u64 + self.zeroed
    }
}

/// A relocatable object file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectFile {
    /// Name for diagnostics (e.g. `"log.o"` or a unit instance path).
    pub name: String,
    /// The symbol table. Instructions and relocations index into this.
    pub symbols: Vec<Symbol>,
    /// Function definitions (the text section).
    pub funcs: Vec<FuncDef>,
    /// Data definitions (the data/bss sections).
    pub data: Vec<DataDef>,
}

impl ObjectFile {
    /// Create an empty object with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ObjectFile { name: name.into(), ..Default::default() }
    }

    /// Add a symbol, returning its id. Does not check for duplicates; use
    /// [`ObjectFile::validate`] after construction.
    pub fn add_symbol(&mut self, sym: Symbol) -> SymId {
        let id = SymId(self.symbols.len() as u32);
        self.symbols.push(sym);
        id
    }

    /// Find a symbol id by name.
    pub fn find_symbol(&self, name: &str) -> Option<SymId> {
        self.symbols.iter().position(|s| s.name == name).map(|i| SymId(i as u32))
    }

    /// Look up a symbol entry.
    pub fn symbol(&self, id: SymId) -> &Symbol {
        &self.symbols[id.0 as usize]
    }

    /// Names of globally visible definitions (the "tabs").
    pub fn exported_names(&self) -> BTreeSet<&str> {
        self.symbols.iter().filter(|s| s.is_global_def()).map(|s| s.name.as_str()).collect()
    }

    /// Names of undefined references (the "notches").
    pub fn undefined_names(&self) -> BTreeSet<&str> {
        self.symbols
            .iter()
            .filter(|s| s.def == SymDef::Undefined)
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Total text bytes in this object.
    pub fn text_size(&self) -> u64 {
        self.funcs.iter().map(FuncDef::size_bytes).sum()
    }

    /// Structural validation: every symbol reference is in range, every
    /// defined func/data symbol has exactly one body, jump targets are in
    /// range, and no two symbols share a name unless both are local or one
    /// is the undefined twin of nothing.
    pub fn validate(&self) -> Result<(), ObjectError> {
        let nsyms = self.symbols.len() as u32;
        let check = |id: SymId, what: &str| -> Result<(), ObjectError> {
            if id.0 >= nsyms {
                return Err(ObjectError::BadSymbolIndex {
                    object: self.name.clone(),
                    index: id.0,
                    context: what.to_string(),
                });
            }
            Ok(())
        };

        let mut seen_names: BTreeMap<&str, &Symbol> = BTreeMap::new();
        for s in &self.symbols {
            if let Some(prev) = seen_names.get(s.name.as_str()) {
                // Two entries with the same name are only legal if at most
                // one of them defines it (an object may both reference and
                // define a name through separate entries only by mistake).
                if prev.is_defined() && s.is_defined() {
                    return Err(ObjectError::DuplicateSymbol {
                        object: self.name.clone(),
                        name: s.name.clone(),
                    });
                }
            }
            seen_names.insert(s.name.as_str(), s);
        }

        let mut defined_bodies: BTreeSet<u32> = BTreeSet::new();
        for f in &self.funcs {
            check(f.sym, "function definition")?;
            let sym = self.symbol(f.sym);
            match sym.def {
                SymDef::Defined { kind: SymKind::Func, .. } => {}
                _ => {
                    return Err(ObjectError::SymbolKindMismatch {
                        object: self.name.clone(),
                        name: sym.name.clone(),
                        expected: "defined function".to_string(),
                    })
                }
            }
            if !defined_bodies.insert(f.sym.0) {
                return Err(ObjectError::DuplicateSymbol {
                    object: self.name.clone(),
                    name: sym.name.clone(),
                });
            }
            let n = f.body.len();
            for (i, instr) in f.body.iter().enumerate() {
                if let Some(id) = instr.sym_ref() {
                    check(id, "instruction operand")?;
                }
                let bad_target = match instr {
                    Instr::Jump { target } => *target >= n,
                    Instr::Branch { then_to, else_to, .. } => *then_to >= n || *else_to >= n,
                    _ => false,
                };
                if bad_target {
                    return Err(ObjectError::BadJumpTarget {
                        object: self.name.clone(),
                        func: sym.name.clone(),
                        at: i,
                    });
                }
            }
        }
        for d in &self.data {
            check(d.sym, "data definition")?;
            let sym = self.symbol(d.sym);
            match sym.def {
                SymDef::Defined { kind: SymKind::Data, .. } => {}
                _ => {
                    return Err(ObjectError::SymbolKindMismatch {
                        object: self.name.clone(),
                        name: sym.name.clone(),
                        expected: "defined data".to_string(),
                    })
                }
            }
            if !defined_bodies.insert(d.sym.0) {
                return Err(ObjectError::DuplicateSymbol {
                    object: self.name.clone(),
                    name: sym.name.clone(),
                });
            }
            if !d.align.is_power_of_two() {
                return Err(ObjectError::BadAlignment {
                    object: self.name.clone(),
                    name: sym.name.clone(),
                    align: d.align,
                });
            }
            for r in &d.relocs {
                check(r.sym, "data relocation")?;
                if r.offset + 8 > d.init.len() as u64 {
                    return Err(ObjectError::RelocOutOfRange {
                        object: self.name.clone(),
                        name: sym.name.clone(),
                        offset: r.offset,
                    });
                }
            }
        }
        // Every defined symbol must have a body.
        for (i, s) in self.symbols.iter().enumerate() {
            if s.is_defined() && !defined_bodies.contains(&(i as u32)) {
                return Err(ObjectError::MissingBody {
                    object: self.name.clone(),
                    name: s.name.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Instr, Width};

    fn obj_with_func() -> ObjectFile {
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("f"));
        let g = o.add_symbol(Symbol::undef("g"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 1,
            frame_size: 0,
            body: vec![
                Instr::Call { dst: Some(0), target: g, args: vec![] },
                Instr::Ret { value: Some(0) },
            ],
        });
        o
    }

    #[test]
    fn tabs_and_notches() {
        let o = obj_with_func();
        assert!(o.exported_names().contains("f"));
        assert!(o.undefined_names().contains("g"));
        assert!(o.validate().is_ok());
    }

    #[test]
    fn local_symbols_are_not_exported() {
        let mut o = ObjectFile::new("t.o");
        let s = o.add_symbol(Symbol::local_func("helper"));
        o.funcs.push(FuncDef {
            sym: s,
            params: 0,
            nregs: 0,
            frame_size: 0,
            body: vec![Instr::Ret { value: None }],
        });
        assert!(o.exported_names().is_empty());
        assert!(o.validate().is_ok());
    }

    #[test]
    fn validate_rejects_missing_body() {
        let mut o = ObjectFile::new("t.o");
        o.add_symbol(Symbol::func("f"));
        assert!(matches!(o.validate(), Err(ObjectError::MissingBody { .. })));
    }

    #[test]
    fn validate_rejects_bad_jump() {
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("f"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 0,
            frame_size: 0,
            body: vec![Instr::Jump { target: 5 }],
        });
        assert!(matches!(o.validate(), Err(ObjectError::BadJumpTarget { .. })));
    }

    #[test]
    fn validate_rejects_duplicate_definition() {
        let mut o = ObjectFile::new("t.o");
        o.add_symbol(Symbol::func("f"));
        o.add_symbol(Symbol::func("f"));
        assert!(matches!(o.validate(), Err(ObjectError::DuplicateSymbol { .. })));
    }

    #[test]
    fn validate_rejects_reloc_out_of_range() {
        let mut o = ObjectFile::new("t.o");
        let d = o.add_symbol(Symbol::data("v"));
        let f = o.add_symbol(Symbol::undef("f"));
        o.data.push(DataDef {
            sym: d,
            init: vec![0; 8],
            zeroed: 0,
            relocs: vec![DataReloc { offset: 4, sym: f, addend: 0 }],
            align: 8,
        });
        assert!(matches!(o.validate(), Err(ObjectError::RelocOutOfRange { .. })));
    }

    #[test]
    fn validate_rejects_bad_alignment() {
        let mut o = ObjectFile::new("t.o");
        let d = o.add_symbol(Symbol::data("v"));
        o.data.push(DataDef { sym: d, init: vec![], zeroed: 8, relocs: vec![], align: 3 });
        assert!(matches!(o.validate(), Err(ObjectError::BadAlignment { .. })));
    }

    #[test]
    fn sizes_sum() {
        let o = obj_with_func();
        assert_eq!(o.text_size(), 5 + 1);
        let d = DataDef { sym: SymId(0), init: vec![1, 2], zeroed: 6, relocs: vec![], align: 1 };
        assert_eq!(d.size_bytes(), 8);
        let _ = Width::W4; // silence unused import in some cfgs
    }
}
