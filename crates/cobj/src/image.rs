//! Fully linked program images.
//!
//! An [`Image`] is what `ld` produces: all included functions laid out at
//! byte addresses in a text segment, all data placed and relocated in a data
//! segment, and every symbolic operand resolved. The byte layout is real in
//! the sense that the `machine` crate's I-cache simulator indexes cache sets
//! by these addresses — so code locality effects (the I-fetch stall column
//! of the paper's Table 1) emerge from layout, exactly as on hardware.

use std::collections::BTreeMap;

use crate::ir::{BinOp, Reg, UnOp, Width};

/// Base virtual address of the text segment.
pub const TEXT_BASE: u64 = 0x10000;

/// Base of the reserved range where runtime intrinsics get fake addresses,
/// so that the address of an intrinsic can be taken and called indirectly.
pub const INTRINSIC_BASE: u64 = 0x100;

/// Spacing between intrinsic fake addresses.
pub const INTRINSIC_STRIDE: u64 = 16;

/// Alignment of each function's entry point.
pub const FUNC_ALIGN: u64 = 16;

/// Where a resolved call lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallTarget {
    /// An image function, by index into [`Image::funcs`].
    Func(u32),
    /// A runtime intrinsic, by index into [`Image::intrinsics`].
    Intrinsic(u32),
}

/// Location of a linked symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolLoc {
    /// A function, by image function index.
    Func(u32),
    /// A data object, by absolute address.
    Data(u64),
}

/// A resolved instruction. Identical to [`crate::ir::Instr`] except that
/// symbolic operands have been replaced: `Addr` became a constant, and
/// direct calls carry a [`CallTarget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RInstr {
    /// `dst = value` (also carries resolved `Addr` results).
    Const { dst: Reg, value: i64 },
    /// `dst = src`.
    Mov { dst: Reg, src: Reg },
    /// `dst = a <op> b`.
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = <op> a`.
    Un { op: UnOp, dst: Reg, a: Reg },
    /// `dst = mem[addr + offset]`.
    Load { dst: Reg, addr: Reg, offset: i64, width: Width },
    /// `mem[addr + offset] = src`.
    Store { addr: Reg, offset: i64, src: Reg, width: Width },
    /// `dst = frame_pointer + offset`.
    FrameAddr { dst: Reg, offset: i64 },
    /// `dst = varargs[idx]`.
    VarArg { dst: Reg, idx: Reg },
    /// Direct call to a resolved target.
    Call { dst: Option<Reg>, target: CallTarget, args: Vec<Reg> },
    /// Indirect call through a register holding a code address.
    CallInd { dst: Option<Reg>, target: Reg, args: Vec<Reg> },
    /// Unconditional jump (instruction index within this function).
    Jump { target: usize },
    /// Conditional branch.
    Branch { cond: Reg, then_to: usize, else_to: usize },
    /// Return.
    Ret { value: Option<Reg> },
    /// No operation.
    Nop,
}

/// A function placed in the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageFunc {
    /// Link-level name (post-`objcopy`, so possibly mangled).
    pub name: String,
    /// Entry address in the text segment.
    pub addr: u64,
    /// Encoded size in bytes.
    pub size: u64,
    /// Number of named parameters.
    pub params: u32,
    /// Number of virtual registers.
    pub nregs: u32,
    /// Stack frame size in bytes.
    pub frame_size: u32,
    /// Resolved body.
    pub body: Vec<RInstr>,
    /// Byte address of each instruction (parallel to `body`).
    pub instr_addrs: Vec<u64>,
    /// Encoded byte size of each instruction (parallel to `body`).
    pub instr_sizes: Vec<u16>,
}

/// A linked, executable program image. `PartialEq` compares every byte of
/// layout and code — two images are `==` exactly when they are
/// byte-identical, which the parallel/cached build pipeline's determinism
/// tests rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// All functions, laid out in link order starting at [`TEXT_BASE`].
    pub funcs: Vec<ImageFunc>,
    /// Map from function entry address to function index (for indirect
    /// calls through function pointers).
    pub addr_to_func: BTreeMap<u64, u32>,
    /// The data segment contents (initialized + zeroed), based at
    /// [`Image::data_base`].
    pub data: Vec<u8>,
    /// Base address of the data segment.
    pub data_base: u64,
    /// First address past the data segment; the machine's heap starts here.
    pub heap_base: u64,
    /// Link-visible symbols by (post-rename) name.
    pub symbols: BTreeMap<String, SymbolLoc>,
    /// Runtime intrinsic names, in id order. `CallTarget::Intrinsic(i)`
    /// refers to `intrinsics[i]`.
    pub intrinsics: Vec<String>,
    /// Total text bytes (the paper's "text size" column).
    pub text_size: u64,
    /// Entry function index, if an entry symbol was requested.
    pub entry: Option<u32>,
}

impl Image {
    /// Look up a function index by link-level name.
    pub fn func_by_name(&self, name: &str) -> Option<u32> {
        match self.symbols.get(name) {
            Some(SymbolLoc::Func(i)) => Some(*i),
            _ => None,
        }
    }

    /// Look up a data symbol's address by name.
    pub fn data_by_name(&self, name: &str) -> Option<u64> {
        match self.symbols.get(name) {
            Some(SymbolLoc::Data(a)) => Some(*a),
            _ => None,
        }
    }

    /// Resolve a code address to a function index (indirect calls).
    pub fn func_at_addr(&self, addr: u64) -> Option<u32> {
        self.addr_to_func.get(&addr).copied()
    }

    /// The fake address assigned to intrinsic `id`.
    pub fn intrinsic_addr(id: u32) -> u64 {
        INTRINSIC_BASE + INTRINSIC_STRIDE * id as u64
    }

    /// Reverse of [`Image::intrinsic_addr`]: which intrinsic, if any, lives
    /// at `addr`.
    pub fn intrinsic_at_addr(&self, addr: u64) -> Option<u32> {
        if addr < INTRINSIC_BASE {
            return None;
        }
        let off = addr - INTRINSIC_BASE;
        if !off.is_multiple_of(INTRINSIC_STRIDE) {
            return None;
        }
        let id = (off / INTRINSIC_STRIDE) as u32;
        if (id as usize) < self.intrinsics.len() && addr < TEXT_BASE {
            Some(id)
        } else {
            None
        }
    }
}

/// Align `v` up to `align` (a power of two).
pub fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 16), 0);
        assert_eq!(align_up(1, 16), 16);
        assert_eq!(align_up(16, 16), 16);
        assert_eq!(align_up(17, 8), 24);
    }

    #[test]
    fn intrinsic_addresses_round_trip() {
        let img = Image {
            funcs: vec![],
            addr_to_func: BTreeMap::new(),
            data: vec![],
            data_base: 0x20000,
            heap_base: 0x30000,
            symbols: BTreeMap::new(),
            intrinsics: vec!["__con_putc".into(), "__halt".into()],
            text_size: 0,
            entry: None,
        };
        for id in 0..2u32 {
            let a = Image::intrinsic_addr(id);
            assert_eq!(img.intrinsic_at_addr(a), Some(id));
        }
        assert_eq!(img.intrinsic_at_addr(Image::intrinsic_addr(2)), None);
        assert_eq!(img.intrinsic_at_addr(0x7), None);
        assert_eq!(img.intrinsic_at_addr(INTRINSIC_BASE + 3), None);
    }
}
