//! Pluggable text-layout strategies for the linker.
//!
//! The paper's Table 1 attributes part of flattening's win to better
//! I-cache behaviour — *where* the linker puts code determines which hot
//! functions evict each other from the direct-mapped cache. Historically
//! [`crate::ld`] placed functions in input order, which is arbitrary with
//! respect to the dynamic call graph. This module makes placement a
//! strategy on [`crate::LinkOptions`]:
//!
//! * [`Layout::InputOrder`] — the default; reproduces the historical
//!   placement byte-for-byte.
//! * [`Layout::ProfileGuided`] — Pettis–Hansen-style call-graph ordering
//!   driven by a [`LayoutProfile`]: hot caller/callee pairs are greedily
//!   clustered into chains (so they share cache lines and never conflict),
//!   and functions the profile never saw execute are pushed to a cold tail
//!   after all hot code.
//!
//! A layout strategy only permutes *placement order*; it never changes
//! which functions are linked, their bodies, or their sizes, so a relinked
//! image is semantically identical — only fetch behaviour (and the
//! absolute addresses embedded by `Instr::Addr` and data relocations)
//! differs.

use std::collections::BTreeMap;

/// A weighted dynamic call graph, keyed by link-level function names.
///
/// This is the layout-relevant projection of an execution profile: how
/// often each (caller, callee) pair was observed, and how many
/// instructions each function executed. The `machine` crate's profiler
/// produces one via `Profile::layout_profile`; anything able to name
/// functions and weight edges can drive layout the same way.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutProfile {
    /// `(caller, callee)` → number of observed calls (direct + indirect).
    pub edges: BTreeMap<(String, String), u64>,
    /// Function name → instructions executed. A function absent from this
    /// map (or mapped to zero) is considered cold.
    pub func_counts: BTreeMap<String, u64>,
}

impl LayoutProfile {
    /// True when the profile carries no signal at all.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty() && self.func_counts.is_empty()
    }

    /// Add `count` observations of `caller` → `callee`.
    pub fn record_edge(
        &mut self,
        caller: impl Into<String>,
        callee: impl Into<String>,
        count: u64,
    ) {
        *self.edges.entry((caller.into(), callee.into())).or_insert(0) += count;
    }

    /// Add `count` executed instructions to `name`.
    pub fn record_func(&mut self, name: impl Into<String>, count: u64) {
        *self.func_counts.entry(name.into()).or_insert(0) += count;
    }

    /// Stable FNV-1a content hash, independent of construction order
    /// (both maps iterate sorted). Used to fold the profile into build
    /// fingerprints.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for ((caller, callee), n) in &self.edges {
            eat(b"e");
            eat(caller.as_bytes());
            eat(b"\0");
            eat(callee.as_bytes());
            eat(b"\0");
            eat(&n.to_le_bytes());
        }
        for (name, n) in &self.func_counts {
            eat(b"f");
            eat(name.as_bytes());
            eat(b"\0");
            eat(&n.to_le_bytes());
        }
        h
    }
}

/// Placement metadata for one function awaiting layout.
#[derive(Debug, Clone)]
pub struct FuncMeta {
    /// Link-level symbol name (not necessarily unique: `static` functions
    /// from different objects may share one).
    pub name: String,
    /// Encoded size in bytes.
    pub size: u64,
}

/// Text-placement strategy for [`crate::LinkOptions`].
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Layout {
    /// Place functions in linker input order (the historical behaviour;
    /// byte-for-byte identical images to every pre-strategy release).
    #[default]
    InputOrder,
    /// Pettis–Hansen-style placement driven by a profile: hot chains
    /// first, never-executed functions in a cold tail.
    ProfileGuided(LayoutProfile),
}

impl Layout {
    /// Compute the placement order as a permutation of `0..funcs.len()`
    /// (indices into `funcs`, which is in linker input order).
    ///
    /// The result is deterministic for a given `(strategy, funcs)` pair:
    /// all tie-breaks fall back to input order.
    pub fn order(&self, funcs: &[FuncMeta]) -> Vec<usize> {
        match self {
            Layout::InputOrder => (0..funcs.len()).collect(),
            Layout::ProfileGuided(profile) => {
                if profile.is_empty() {
                    (0..funcs.len()).collect()
                } else {
                    profile_guided_order(profile, funcs)
                }
            }
        }
    }
}

/// Pettis–Hansen-style greedy call-graph clustering.
///
/// 1. Split functions into *hot* (executed per the profile) and *cold*.
/// 2. Give every hot function its own chain; process call edges in
///    decreasing weight order, concatenating the caller's chain with the
///    callee's chain whenever they differ — the hottest pairs end up
///    adjacent, cooler pairs at least nearby.
/// 3. Emit chains by decreasing heat (total instruction count), then the
///    cold functions in input order.
fn profile_guided_order(profile: &LayoutProfile, funcs: &[FuncMeta]) -> Vec<usize> {
    let n = funcs.len();

    // Map names to function indices. Names are not guaranteed unique
    // (static functions keep their names across objects); an ambiguous
    // name cannot be attributed to a single placement slot, so edges
    // naming it are skipped for clustering. Hotness still applies to
    // every same-named copy — over-approximating hot keeps semantics
    // conservative.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in funcs.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }

    let name_is_hot = |name: &str| -> bool {
        if profile.func_counts.get(name).copied().unwrap_or(0) > 0 {
            return true;
        }
        // A function can appear only as an edge endpoint (e.g. profiles
        // built from edge data alone); treat that as executed too.
        profile
            .edges
            .iter()
            .any(|((caller, callee), &w)| w > 0 && (caller == name || callee == name))
    };
    let hot: Vec<bool> = funcs.iter().map(|f| name_is_hot(&f.name)).collect();

    // Union-find-free chain bookkeeping: chain id per function, chains as
    // ordered vectors. Only hot functions participate.
    let mut chain_of: Vec<usize> = (0..n).collect();
    let mut chains: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    // Deterministic edge ordering: weight desc, then names, and only
    // edges whose two endpoints map to unique hot slots.
    let mut edges: Vec<(u64, usize, usize)> = Vec::new();
    for ((caller, callee), &w) in &profile.edges {
        if w == 0 || caller == callee {
            continue;
        }
        let (Some(cs), Some(ds)) = (by_name.get(caller.as_str()), by_name.get(callee.as_str()))
        else {
            continue;
        };
        if cs.len() != 1 || ds.len() != 1 {
            continue;
        }
        let (a, b) = (cs[0], ds[0]);
        if a != b && hot[a] && hot[b] {
            edges.push((w, a, b));
        }
    }
    // BTreeMap iteration already sorted by name; sort_by is stable, so
    // equal weights keep name order.
    edges.sort_by_key(|e| std::cmp::Reverse(e.0));

    for (_, a, b) in edges {
        let (ca, cb) = (chain_of[a], chain_of[b]);
        if ca == cb {
            continue;
        }
        // Caller chain first, callee chain appended: the call fall-through
        // direction, keeping the pair as close as current chains allow.
        let moved = std::mem::take(&mut chains[cb]);
        for &f in &moved {
            chain_of[f] = ca;
        }
        chains[ca].extend(moved);
    }

    // Heat of a chain: total executed instructions (ambiguous names
    // contribute their shared count to each copy — only relative order
    // matters). Tie-break on first member's input position.
    let heat = |chain: &[usize]| -> u64 {
        chain
            .iter()
            .map(|&i| profile.func_counts.get(funcs[i].name.as_str()).copied().unwrap_or(0))
            .sum()
    };
    let mut hot_chains: Vec<&Vec<usize>> =
        chains.iter().filter(|c| !c.is_empty() && hot[c[0]]).collect();
    hot_chains.sort_by_key(|c| (std::cmp::Reverse(heat(c)), c[0]));

    let mut order: Vec<usize> = Vec::with_capacity(n);
    for chain in hot_chains {
        order.extend(chain.iter().copied());
    }
    // Cold tail, in input order.
    order.extend((0..n).filter(|&i| !hot[i]));
    debug_assert_eq!(order.len(), n);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metas(names: &[&str]) -> Vec<FuncMeta> {
        names.iter().map(|n| FuncMeta { name: n.to_string(), size: 8 }).collect()
    }

    #[test]
    fn input_order_is_identity() {
        let fs = metas(&["c", "a", "b"]);
        assert_eq!(Layout::InputOrder.order(&fs), vec![0, 1, 2]);
    }

    #[test]
    fn empty_profile_is_identity() {
        let fs = metas(&["a", "b"]);
        assert_eq!(Layout::ProfileGuided(LayoutProfile::default()).order(&fs), vec![0, 1]);
    }

    #[test]
    fn hot_pairs_cluster_and_cold_goes_last() {
        // Input order: hot0 cold0 hot1 cold1; hot0 calls hot1 a lot.
        let fs = metas(&["hot0", "cold0", "hot1", "cold1"]);
        let mut p = LayoutProfile::default();
        p.record_edge("hot0", "hot1", 1000);
        p.record_func("hot0", 500);
        p.record_func("hot1", 700);
        let order = Layout::ProfileGuided(p).order(&fs);
        assert_eq!(order, vec![0, 2, 1, 3], "caller/callee adjacent, cold tail in input order");
    }

    #[test]
    fn heavier_edges_win_adjacency() {
        // a calls b (10) and c (1000): c should be placed right after a.
        let fs = metas(&["a", "b", "c"]);
        let mut p = LayoutProfile::default();
        p.record_edge("a", "b", 10);
        p.record_edge("a", "c", 1000);
        for f in ["a", "b", "c"] {
            p.record_func(f, 1);
        }
        let order = Layout::ProfileGuided(p).order(&fs);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 2, "hotter callee adjacent to caller");
    }

    #[test]
    fn ambiguous_names_do_not_cluster_but_stay_hot() {
        // Two copies of `helper` (statics): the edge is ignored, both
        // copies still count as hot.
        let fs = metas(&["main", "helper", "helper", "never"]);
        let mut p = LayoutProfile::default();
        p.record_edge("main", "helper", 100);
        p.record_func("main", 10);
        p.record_func("helper", 5);
        let order = Layout::ProfileGuided(p).order(&fs);
        assert_eq!(order.len(), 4);
        assert_eq!(order[3], 3, "only the never-executed function is cold");
    }

    #[test]
    fn order_is_always_a_permutation() {
        let fs = metas(&["a", "b", "c", "d", "e"]);
        let mut p = LayoutProfile::default();
        p.record_edge("a", "c", 5);
        p.record_edge("c", "e", 7);
        p.record_func("b", 1);
        let order = Layout::ProfileGuided(p).order(&fs);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stable_hash_ignores_insertion_order() {
        let mut a = LayoutProfile::default();
        a.record_edge("x", "y", 1);
        a.record_func("x", 2);
        let mut b = LayoutProfile::default();
        b.record_func("x", 2);
        b.record_edge("x", "y", 1);
        assert_eq!(a.stable_hash(), b.stable_hash());
        b.record_func("x", 1);
        assert_ne!(a.stable_hash(), b.stable_hash());
    }
}
