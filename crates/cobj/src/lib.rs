//! # cobj — object-file substrate
//!
//! This crate models the object-file layer that Knit (OSDI 2000) builds on:
//! relocatable object files produced by a C compiler, archives (`.a`
//! libraries), an `objcopy`-style symbol rename/duplicate pass, and a
//! bag-of-objects `ld` with classic Unix semantics (archive member pull-in,
//! order-dependent override, global namespace).
//!
//! The paper's Knit pipeline is: *Knit compiler → C compiler → modified
//! `objcopy` (renaming + duplication for multiply-instantiated units) → `ld`*.
//! We reproduce that pipeline over a simulated instruction set:
//!
//! * [`ir`] — the instruction set that "compiled" code is made of, with a
//!   byte-size model (the source of the paper's *text size* column).
//! * [`object`] — relocatable object files: symbols, function and data
//!   definitions, relocations.
//! * [`archive`] — ordered collections of objects with ld's member-inclusion
//!   rule.
//! * [`objcopy`] — symbol renaming and whole-object duplication, the
//!   mechanism behind Knit's wiring and multiple instantiation.
//! * [`ld`] — the baseline linker (Section 2.1 of the paper): a faithful
//!   reproduction of the "bag of objects" semantics, including its inability
//!   to express interposition (Figure 1c).
//! * [`image`] — fully linked, relocated program images with a byte-accurate
//!   text layout, executed by the `machine` crate.

pub mod archive;
pub mod error;
pub mod image;
pub mod ir;
pub mod layout;
pub mod ld;
pub mod objcopy;
pub mod object;

pub use archive::Archive;
pub use error::{LinkError, ObjectError};
pub use image::{CallTarget, Image, ImageFunc, RInstr, SymbolLoc};
pub use ir::{BinOp, Instr, SymId, UnOp, Width};
pub use layout::{Layout, LayoutProfile};
pub use ld::{link, LinkInput, LinkOptions};
pub use object::{DataDef, DataReloc, FuncDef, ObjectFile, SymDef, SymKind, Symbol};
