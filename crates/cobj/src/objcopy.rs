//! `objcopy`-style symbol surgery.
//!
//! Knit's implementation (paper, Section 6) post-processes compiled objects
//! with "a slightly modified version of GNU's objcopy, which handles
//! renaming symbols and duplicating object code for multiply-instantiated
//! units". This module provides those two operations:
//!
//! * [`rename_symbols`] — rewrite global symbol names (both definitions and
//!   undefined references) according to a map. This is how Knit wires an
//!   import of one unit instance to the (mangled) export of another without
//!   any global-namespace collisions.
//! * [`duplicate`] — clone an object while renaming *every* global symbol,
//!   producing an independent copy for a second instantiation of the same
//!   unit (e.g. the paper's two-`printf` output-redirection example).

use std::collections::BTreeMap;

use crate::error::ObjectError;
use crate::object::{ObjectFile, SymDef};

/// Rename global symbols of `obj` according to `map` (old name → new name).
///
/// Names absent from the map are kept. Local (static) symbols are never
/// touched: like real `objcopy --redefine-sym`, renaming operates on the
/// link-visible namespace only. Returns an error if a requested name does
/// not exist in the object, or if the rename would make two distinct
/// link-visible symbols collide.
pub fn rename_symbols(
    obj: &ObjectFile,
    map: &BTreeMap<String, String>,
) -> Result<ObjectFile, ObjectError> {
    // Every key must name an existing global (defined or undefined) symbol.
    for old in map.keys() {
        let found = obj
            .symbols
            .iter()
            .any(|s| s.name == *old && !matches!(s.def, SymDef::Defined { local: true, .. }));
        if !found {
            return Err(ObjectError::NoSuchSymbol { object: obj.name.clone(), name: old.clone() });
        }
    }

    let mut out = obj.clone();
    for sym in &mut out.symbols {
        if matches!(sym.def, SymDef::Defined { local: true, .. }) {
            continue;
        }
        if let Some(new) = map.get(&sym.name) {
            sym.name = new.clone();
        }
    }

    // Detect collisions among link-visible names: a defined symbol may not
    // share its new name with any other defined symbol; a defined and an
    // undefined entry with the same name would silently self-satisfy, so we
    // reject that too (Knit wiring never needs it — self-links are resolved
    // before objcopy).
    let mut seen: BTreeMap<&str, &SymDef> = BTreeMap::new();
    for s in &out.symbols {
        if matches!(s.def, SymDef::Defined { local: true, .. }) {
            continue;
        }
        if let Some(prev) = seen.get(s.name.as_str()) {
            let both_undef = **prev == SymDef::Undefined && s.def == SymDef::Undefined;
            if !both_undef {
                return Err(ObjectError::RenameCollision {
                    object: out.name.clone(),
                    name: s.name.clone(),
                });
            }
        }
        seen.insert(s.name.as_str(), &s.def);
    }
    Ok(out)
}

/// Clone `obj` with `suffix` appended to every link-visible symbol name,
/// both defined and undefined.
///
/// This is Knit's multiple-instantiation mechanism: each instance of a unit
/// gets its own copy of the code and data, living under fresh names, so two
/// `printf` instances (say, one wired to the serial console and one to the
/// VGA console) coexist in one program.
pub fn duplicate(obj: &ObjectFile, suffix: &str) -> ObjectFile {
    let mut out = obj.clone();
    out.name = format!("{}{}", obj.name, suffix);
    for sym in &mut out.symbols {
        if matches!(sym.def, SymDef::Defined { local: true, .. }) {
            continue;
        }
        sym.name = format!("{}{}", sym.name, suffix);
    }
    out
}

/// Demote global definitions to local (like `objcopy --localize-symbol`),
/// keeping only `keep_global` names link-visible.
pub fn localize_except(obj: &mut ObjectFile, keep_global: &std::collections::BTreeSet<String>) {
    for s in &mut obj.symbols {
        if let SymDef::Defined { kind, local: false } = s.def {
            if !keep_global.contains(&s.name) && !s.name.starts_with("__") {
                s.def = SymDef::Defined { kind, local: true };
            }
        }
    }
}

/// Garbage-collect unreachable local definitions (like `ld --gc-sections`
/// over a single object): local functions and data not reachable from any
/// global definition are dropped, and the symbol table is compacted.
pub fn gc(obj: &ObjectFile) -> ObjectFile {
    use std::collections::{BTreeMap, BTreeSet};

    // symbol id -> definition body
    let mut func_of: BTreeMap<u32, usize> = BTreeMap::new();
    for (fi, f) in obj.funcs.iter().enumerate() {
        func_of.insert(f.sym.0, fi);
    }
    let mut data_of: BTreeMap<u32, usize> = BTreeMap::new();
    for (di, d) in obj.data.iter().enumerate() {
        data_of.insert(d.sym.0, di);
    }

    // reachability from global definitions
    let mut reach: BTreeSet<u32> = BTreeSet::new();
    let mut work: Vec<u32> = obj
        .symbols
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_global_def())
        .map(|(i, _)| i as u32)
        .collect();
    while let Some(id) = work.pop() {
        if !reach.insert(id) {
            continue;
        }
        if let Some(&fi) = func_of.get(&id) {
            for instr in &obj.funcs[fi].body {
                if let Some(s) = instr.sym_ref() {
                    work.push(s.0);
                }
            }
        }
        if let Some(&di) = data_of.get(&id) {
            for r in &obj.data[di].relocs {
                work.push(r.sym.0);
            }
        }
    }

    // keep reachable symbols; remap ids
    let mut remap: BTreeMap<u32, u32> = BTreeMap::new();
    let mut out = ObjectFile::new(obj.name.clone());
    for (i, s) in obj.symbols.iter().enumerate() {
        if reach.contains(&(i as u32)) {
            let new_id = out.add_symbol(s.clone());
            remap.insert(i as u32, new_id.0);
        }
    }
    for f in &obj.funcs {
        if !reach.contains(&f.sym.0) {
            continue;
        }
        let mut nf = f.clone();
        nf.sym = SymId(remap[&f.sym.0]);
        for instr in &mut nf.body {
            instr.map_sym(|SymId(s)| SymId(remap[&s]));
        }
        out.funcs.push(nf);
    }
    for d in &obj.data {
        if !reach.contains(&d.sym.0) {
            continue;
        }
        let mut nd = d.clone();
        nd.sym = SymId(remap[&d.sym.0]);
        for r in &mut nd.relocs {
            r.sym = SymId(remap[&r.sym.0]);
        }
        out.data.push(nd);
    }
    out
}

use crate::ir::SymId;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr;
    use crate::object::{FuncDef, Symbol};

    fn obj() -> ObjectFile {
        let mut o = ObjectFile::new("log.o");
        let def = o.add_symbol(Symbol::func("serve_logged"));
        let undef = o.add_symbol(Symbol::undef("serve_unlogged"));
        let stat = o.add_symbol(Symbol::local_data("log"));
        o.funcs.push(FuncDef {
            sym: def,
            params: 2,
            nregs: 3,
            frame_size: 0,
            body: vec![
                Instr::Call { dst: Some(2), target: undef, args: vec![0, 1] },
                Instr::Ret { value: Some(2) },
            ],
        });
        o.data.push(crate::object::DataDef {
            sym: stat,
            init: vec![],
            zeroed: 8,
            relocs: vec![],
            align: 8,
        });
        o
    }

    #[test]
    fn rename_rewrites_defs_and_refs() {
        let o = obj();
        let mut map = BTreeMap::new();
        map.insert("serve_logged".to_string(), "serve_web__u1".to_string());
        map.insert("serve_unlogged".to_string(), "serve_web__u0".to_string());
        let r = rename_symbols(&o, &map).unwrap();
        assert!(r.exported_names().contains("serve_web__u1"));
        assert!(r.undefined_names().contains("serve_web__u0"));
        assert!(!r.exported_names().contains("serve_logged"));
        // instruction still references the same SymId; only the table changed
        assert_eq!(r.funcs[0].body, o.funcs[0].body);
    }

    #[test]
    fn rename_skips_locals() {
        let o = obj();
        let mut map = BTreeMap::new();
        map.insert("log".to_string(), "log2".to_string());
        // "log" is local, so renaming it is an error (objcopy would not see it
        // as a link-visible symbol either).
        assert!(matches!(rename_symbols(&o, &map), Err(ObjectError::NoSuchSymbol { .. })));
    }

    #[test]
    fn rename_missing_symbol_errors() {
        let o = obj();
        let mut map = BTreeMap::new();
        map.insert("nope".to_string(), "x".to_string());
        assert!(matches!(rename_symbols(&o, &map), Err(ObjectError::NoSuchSymbol { .. })));
    }

    #[test]
    fn rename_collision_detected() {
        let o = obj();
        let mut map = BTreeMap::new();
        // Make the definition collide with the (renamed) undefined reference.
        map.insert("serve_logged".to_string(), "same".to_string());
        map.insert("serve_unlogged".to_string(), "same".to_string());
        assert!(matches!(rename_symbols(&o, &map), Err(ObjectError::RenameCollision { .. })));
    }

    #[test]
    fn localize_and_gc_drop_dead_code() {
        use std::collections::BTreeSet;
        let mut o = ObjectFile::new("t.o");
        let keep = o.add_symbol(Symbol::func("keep"));
        let used = o.add_symbol(Symbol::func("used_helper"));
        let dead = o.add_symbol(Symbol::func("dead_helper"));
        let deaddata = o.add_symbol(Symbol::data("dead_data"));
        for (sym, calls) in [(keep, Some(used)), (used, None), (dead, None)] {
            let mut body = Vec::new();
            if let Some(c) = calls {
                body.push(Instr::Call { dst: None, target: c, args: vec![] });
            }
            body.push(Instr::Ret { value: None });
            o.funcs.push(FuncDef { sym, params: 0, nregs: 0, frame_size: 0, body });
        }
        o.data.push(crate::object::DataDef {
            sym: deaddata,
            init: vec![0; 8],
            zeroed: 0,
            relocs: vec![],
            align: 8,
        });
        let mut keep_set = BTreeSet::new();
        keep_set.insert("keep".to_string());
        localize_except(&mut o, &keep_set);
        let g = gc(&o);
        assert!(g.validate().is_ok());
        let names: Vec<&str> = g.symbols.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"keep"));
        assert!(names.contains(&"used_helper"));
        assert!(!names.contains(&"dead_helper"));
        assert!(!names.contains(&"dead_data"));
        assert_eq!(g.exported_names().len(), 1);
    }

    #[test]
    fn gc_keeps_data_referenced_from_data() {
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("root"));
        let table = o.add_symbol(Symbol::local_data("table"));
        let target = o.add_symbol(Symbol::local_func("pointee"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 1,
            frame_size: 0,
            body: vec![
                Instr::Addr { dst: 0, sym: table, offset: 0 },
                Instr::Ret { value: Some(0) },
            ],
        });
        o.funcs.push(FuncDef {
            sym: target,
            params: 0,
            nregs: 0,
            frame_size: 0,
            body: vec![Instr::Ret { value: None }],
        });
        o.data.push(crate::object::DataDef {
            sym: table,
            init: vec![0; 8],
            zeroed: 0,
            relocs: vec![crate::object::DataReloc { offset: 0, sym: target, addend: 0 }],
            align: 8,
        });
        let g = gc(&o);
        assert!(g.validate().is_ok());
        assert_eq!(g.funcs.len(), 2, "pointee reachable through data reloc");
    }

    #[test]
    fn duplicate_renames_everything_global() {
        let o = obj();
        let d = duplicate(&o, "__i2");
        assert!(d.exported_names().contains("serve_logged__i2"));
        assert!(d.undefined_names().contains("serve_unlogged__i2"));
        // local data untouched
        assert!(d.symbols.iter().any(|s| s.name == "log"));
        assert!(d.validate().is_ok());
    }
}
