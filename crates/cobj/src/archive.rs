//! Archives (`.a` libraries): ordered bags of object files.
//!
//! The paper (Section 5.1) describes how the pre-Knit OSKit relied on `ld`
//! archive semantics for component override: "since ld inspects its
//! arguments in order, and since it ignores archive members that do not
//! contribute new symbols, a careful ordering of ld's arguments would allow
//! a programmer to override an existing component". The [`crate::ld`] module
//! implements exactly that member-selection rule over this type.

use crate::object::ObjectFile;

/// An ordered collection of object files with library semantics.
#[derive(Debug, Clone, Default)]
pub struct Archive {
    /// Archive name for diagnostics (e.g. `"liboskit_memfs.a"`).
    pub name: String,
    /// Members, in insertion order (the order `ld` scans them).
    pub members: Vec<ObjectFile>,
}

impl Archive {
    /// Create an empty archive.
    pub fn new(name: impl Into<String>) -> Self {
        Archive { name: name.into(), members: Vec::new() }
    }

    /// Append a member (like `ar r`).
    pub fn add(&mut self, obj: ObjectFile) -> &mut Self {
        self.members.push(obj);
        self
    }

    /// Build an archive from members.
    pub fn from_members(name: impl Into<String>, members: Vec<ObjectFile>) -> Self {
        Archive { name: name.into(), members }
    }

    /// Names of all global definitions across members (the archive index,
    /// like `ranlib` would produce).
    pub fn index(&self) -> Vec<(&str, usize)> {
        let mut out = Vec::new();
        for (i, m) in self.members.iter().enumerate() {
            for name in m.exported_names() {
                out.push((name, i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr;
    use crate::object::{FuncDef, Symbol};

    fn tiny(name: &str, sym: &str) -> ObjectFile {
        let mut o = ObjectFile::new(name);
        let s = o.add_symbol(Symbol::func(sym));
        o.funcs.push(FuncDef {
            sym: s,
            params: 0,
            nregs: 0,
            frame_size: 0,
            body: vec![Instr::Ret { value: None }],
        });
        o
    }

    #[test]
    fn index_lists_member_exports_in_order() {
        let mut a = Archive::new("libx.a");
        a.add(tiny("a.o", "alpha")).add(tiny("b.o", "beta"));
        let idx = a.index();
        assert_eq!(idx, vec![("alpha", 0), ("beta", 1)]);
    }
}
