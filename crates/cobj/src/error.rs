//! Error types for object construction and linking.

use std::fmt;

/// Structural errors in a single object file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectError {
    /// A symbol index was out of range for the object's symbol table.
    BadSymbolIndex { object: String, index: u32, context: String },
    /// Two definitions of the same name inside one object.
    DuplicateSymbol { object: String, name: String },
    /// A function/data definition pointed at a symbol of the wrong kind.
    SymbolKindMismatch { object: String, name: String, expected: String },
    /// A jump or branch target was outside the function body.
    BadJumpTarget { object: String, func: String, at: usize },
    /// A defined symbol had no function or data body.
    MissingBody { object: String, name: String },
    /// Alignment was not a power of two.
    BadAlignment { object: String, name: String, align: u64 },
    /// A data relocation did not fit inside the initialized bytes.
    RelocOutOfRange { object: String, name: String, offset: u64 },
    /// `objcopy` was asked to rename a symbol that does not exist.
    NoSuchSymbol { object: String, name: String },
    /// `objcopy` rename would collide two distinct symbols.
    RenameCollision { object: String, name: String },
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::BadSymbolIndex { object, index, context } => {
                write!(f, "{object}: symbol index {index} out of range ({context})")
            }
            ObjectError::DuplicateSymbol { object, name } => {
                write!(f, "{object}: duplicate definition of `{name}`")
            }
            ObjectError::SymbolKindMismatch { object, name, expected } => {
                write!(f, "{object}: `{name}` is not a {expected}")
            }
            ObjectError::BadJumpTarget { object, func, at } => {
                write!(f, "{object}: jump target out of range in `{func}` at instruction {at}")
            }
            ObjectError::MissingBody { object, name } => {
                write!(f, "{object}: symbol `{name}` is defined but has no body")
            }
            ObjectError::BadAlignment { object, name, align } => {
                write!(f, "{object}: `{name}` alignment {align} is not a power of two")
            }
            ObjectError::RelocOutOfRange { object, name, offset } => {
                write!(f, "{object}: relocation at offset {offset} outside `{name}`")
            }
            ObjectError::NoSuchSymbol { object, name } => {
                write!(f, "objcopy: {object}: no symbol named `{name}`")
            }
            ObjectError::RenameCollision { object, name } => {
                write!(f, "objcopy: {object}: rename collides on `{name}`")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

/// Errors raised by the linker.
///
/// These mirror the classic `ld` failure modes the paper discusses: multiple
/// definitions in the global namespace, and undefined references left after
/// all inputs are processed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The same global name was defined by two included objects — the
    /// paper's "clash in the global namespace used for linking by ld".
    MultipleDefinition { name: String, first: String, second: String },
    /// An undefined reference survived all inputs.
    UndefinedReference { name: String, referenced_from: Vec<String> },
    /// The requested entry symbol was not defined.
    NoEntry { name: String },
    /// A direct call or function-pointer relocation resolved to a data
    /// symbol (or vice versa).
    KindMismatch { name: String, from: String },
    /// An input object failed validation.
    BadObject(ObjectError),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::MultipleDefinition { name, first, second } => {
                write!(f, "ld: multiple definition of `{name}`: first defined in {first}, also in {second}")
            }
            LinkError::UndefinedReference { name, referenced_from } => {
                write!(
                    f,
                    "ld: undefined reference to `{name}` (from {})",
                    referenced_from.join(", ")
                )
            }
            LinkError::NoEntry { name } => write!(f, "ld: entry symbol `{name}` not defined"),
            LinkError::KindMismatch { name, from } => {
                write!(f, "ld: `{name}` referenced as the wrong kind of symbol from {from}")
            }
            LinkError::BadObject(e) => write!(f, "ld: bad input object: {e}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<ObjectError> for LinkError {
    fn from(e: ObjectError) -> Self {
        LinkError::BadObject(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_symbol() {
        let e = LinkError::MultipleDefinition {
            name: "printf".into(),
            first: "a.o".into(),
            second: "b.o".into(),
        };
        let s = e.to_string();
        assert!(s.contains("printf") && s.contains("a.o") && s.contains("b.o"));

        let e = LinkError::UndefinedReference {
            name: "serve_web".into(),
            referenced_from: vec!["log.o".into()],
        };
        assert!(e.to_string().contains("serve_web"));
    }
}
