//! Units built from pre-compiled object code (§3.2: "Knit can actually
//! work with C, assembly, and object code").

use cobj::ir::{BinOp, Instr};
use cobj::object::{FuncDef, ObjectFile, Symbol};
use knit::{build, BuildOptions, Program, SourceTree};
use machine::Machine;

/// A hand-assembled object exporting `scramble(x) = x * 3 + 1` and calling
/// an imported `tweak`.
fn scramble_object() -> ObjectFile {
    let mut o = ObjectFile::new("scramble.o");
    let tweak = o.add_symbol(Symbol::undef("tweak"));
    let f = o.add_symbol(Symbol::func("scramble"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 1,
        nregs: 3,
        frame_size: 0,
        body: vec![
            Instr::Const { dst: 1, value: 3 },
            Instr::Bin { op: BinOp::Mul, dst: 2, a: 0, b: 1 },
            Instr::Const { dst: 1, value: 1 },
            Instr::Bin { op: BinOp::Add, dst: 2, a: 2, b: 1 },
            Instr::Call { dst: Some(2), target: tweak, args: vec![2] },
            Instr::Ret { value: Some(2) },
        ],
    });
    o
}

fn setup(flatten: bool) -> (Program, SourceTree) {
    let mut p = Program::new();
    p.load_str(
        "t.unit",
        &format!(
            r#"
        bundletype Scramble = {{ scramble }}
        bundletype Tweak = {{ tweak }}
        bundletype Main = {{ main }}

        // this unit's implementation is OBJECT CODE, not source
        unit ScrambleBlob = {{
            imports [ t : Tweak ];
            exports [ s : Scramble ];
            depends {{ exports needs imports; }};
            files {{ "scramble.o" }};
        }}

        unit Tweaker = {{
            exports [ t : Tweak ];
            files {{ "tweak.c" }};
        }}

        unit App = {{
            imports [ s : Scramble ];
            exports [ main : Main ];
            depends {{ exports needs imports; }};
            files {{ "app.c" }};
        }}

        unit Sys = {{
            exports [ main : Main ];
            link {{
                tw : Tweaker;
                blob : ScrambleBlob [ t = tw.t ];
                app : App [ s = blob.s ];
                main = app.main;
            }};
            {}
        }}
        "#,
            if flatten { "flatten;" } else { "" }
        ),
    )
    .unwrap();
    let mut t = SourceTree::new();
    t.add("tweak.c", "int tweak(int x) { return x + 100; }");
    t.add("app.c", "int scramble(int x);\nint main() { return scramble(7); }");
    t.add_object("scramble.o", scramble_object());
    (p, t)
}

#[test]
fn object_code_units_link_and_run() {
    let (p, t) = setup(false);
    let report = build(&p, &t, &BuildOptions::new("Sys", machine::runtime_symbols())).unwrap();
    let mut m = Machine::new(report.image).unwrap();
    assert_eq!(m.run_entry().unwrap(), 7 * 3 + 1 + 100);
}

#[test]
fn object_code_units_coexist_with_flattening() {
    // the group flattens its source units; the blob stays on the objcopy
    // path, wired to the merged group's (still-external) symbols
    let (p, t) = setup(true);
    let report = build(&p, &t, &BuildOptions::new("Sys", machine::runtime_symbols())).unwrap();
    let mut m = Machine::new(report.image).unwrap();
    assert_eq!(m.run_entry().unwrap(), 122);
}

#[test]
fn invalid_prebuilt_objects_are_rejected() {
    let (p, mut t) = setup(false);
    // corrupt the object: defined symbol without a body
    let mut bad = ObjectFile::new("scramble.o");
    bad.add_symbol(Symbol::func("scramble"));
    t.add_object("scramble.o", bad);
    let err = build(&p, &t, &BuildOptions::new("Sys", machine::runtime_symbols())).unwrap_err();
    assert!(err.to_string().contains("scramble.o"), "{err}");
}

#[test]
fn multiple_instances_of_an_object_unit_are_duplicated() {
    let mut p = Program::new();
    p.load_str(
        "t.unit",
        r#"
        bundletype Scramble = { scramble }
        bundletype Tweak = { tweak }
        bundletype Main = { main }
        unit ScrambleBlob = {
            imports [ t : Tweak ];
            exports [ s : Scramble ];
            depends { exports needs imports; };
            files { "scramble.o" };
        }
        unit Add100 = { exports [ t : Tweak ]; files { "t1.c" }; }
        unit Add200 = { exports [ t : Tweak ]; files { "t2.c" }; }
        unit App = {
            imports [ a : Scramble, b : Scramble ];
            exports [ main : Main ];
            depends { exports needs imports; };
            files { "app.c" };
            rename { a.scramble to scr_a; b.scramble to scr_b; };
        }
        unit Sys = {
            exports [ main : Main ];
            link {
                t1 : Add100;
                t2 : Add200;
                s1 : ScrambleBlob [ t = t1.t ];
                s2 : ScrambleBlob [ t = t2.t ];
                app : App [ a = s1.s, b = s2.s ];
                main = app.main;
            };
        }
        "#,
    )
    .unwrap();
    let mut t = SourceTree::new();
    t.add("t1.c", "int tweak(int x) { return x + 100; }");
    t.add("t2.c", "int tweak(int x) { return x + 200; }");
    t.add(
        "app.c",
        "int scr_a(int x);\nint scr_b(int x);\nint main() { return scr_a(1) * 1000 + scr_b(1); }",
    );
    t.add_object("scramble.o", scramble_object());
    let report = build(&p, &t, &BuildOptions::new("Sys", machine::runtime_symbols())).unwrap();
    let mut m = Machine::new(report.image).unwrap();
    // scr_a(1) = 4 + 100 = 104; scr_b(1) = 4 + 200 = 204
    assert_eq!(m.run_entry().unwrap(), 104 * 1000 + 204);
}
