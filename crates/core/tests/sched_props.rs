//! Property tests for the scheduler and the property-value poset.

use proptest::prelude::*;

use knit::model::{Poset, Program};
use knit::{Elaboration, Wire};

// ---------------------------------------------------------------------------
// poset laws
// ---------------------------------------------------------------------------

/// Build a random poset by inserting values below random subsets of the
/// already-present values (always acyclic by construction).
fn arb_poset() -> impl Strategy<Value = Poset> {
    prop::collection::vec(prop::collection::vec(any::<prop::sample::Index>(), 0..3), 1..8).prop_map(
        |levels| {
            let mut p = Poset::default();
            let mut names: Vec<String> = Vec::new();
            for (i, belows) in levels.iter().enumerate() {
                let name = format!("v{i}");
                let below: Vec<String> = if names.is_empty() {
                    vec![]
                } else {
                    let mut b: Vec<String> =
                        belows.iter().map(|ix| ix.get(&names).clone()).collect();
                    b.sort();
                    b.dedup();
                    b
                };
                p.add_value(&name, &below).expect("acyclic by construction");
                names.push(name);
            }
            p
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn poset_is_a_partial_order(p in arb_poset()) {
        let vals = p.values().to_vec();
        for a in &vals {
            prop_assert!(p.leq(a, a), "reflexive");
            for b in &vals {
                if p.leq(a, b) && p.leq(b, a) {
                    prop_assert_eq!(a, b, "antisymmetric");
                }
                for c in &vals {
                    if p.leq(a, b) && p.leq(b, c) {
                        prop_assert!(p.leq(a, c), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn meet_is_a_greatest_lower_bound(p in arb_poset()) {
        let vals = p.values().to_vec();
        for a in &vals {
            for b in &vals {
                if let Some(m) = p.meet(a, b) {
                    prop_assert!(p.leq(&m, a), "meet below a");
                    prop_assert!(p.leq(&m, b), "meet below b");
                    // greatest: every common lower bound is below m
                    for c in &vals {
                        if p.leq(c, a) && p.leq(c, b) {
                            prop_assert!(p.leq(c, &m), "{c} is a lower bound not under meet {m}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn join_is_a_least_upper_bound(p in arb_poset()) {
        let vals = p.values().to_vec();
        for a in &vals {
            for b in &vals {
                if let Some(j) = p.join(a, b) {
                    prop_assert!(p.leq(a, &j));
                    prop_assert!(p.leq(b, &j));
                    for c in &vals {
                        if p.leq(a, c) && p.leq(b, c) {
                            prop_assert!(p.leq(&j, c), "{c} is an upper bound not above join {j}");
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// scheduler invariants on random configurations
// ---------------------------------------------------------------------------

/// A random layered configuration: `n` units in a chain, each optionally
/// declaring an initializer whose deps point at the previous unit.
fn chain_config(n: usize, with_init: &[bool], init_dep: &[bool]) -> (Program, Elaboration) {
    let mut src = String::from("bundletype T = { f }\n");
    for i in 0..n {
        let imports =
            if i == 0 { String::new() } else { "    imports [ prev : T ];\n".to_string() };
        let init = if with_init[i] {
            let dep = if i > 0 && init_dep[i] {
                format!("    depends {{ boot{i} needs prev; }};\n")
            } else {
                String::new()
            };
            format!("    initializer boot{i} for out;\n{dep}")
        } else {
            String::new()
        };
        src.push_str(&format!(
            "unit U{i} = {{\n{imports}    exports [ out : T ];\n{init}    files {{ \"u{i}.c\" }};\n}}\n"
        ));
    }
    src.push_str("unit Sys = {\n    exports [ out : T ];\n    link {\n");
    for i in 0..n {
        if i == 0 {
            src.push_str("        i0 : U0;\n");
        } else {
            src.push_str(&format!("        i{i} : U{i} [ prev = i{}.out ];\n", i - 1));
        }
    }
    src.push_str(&format!("        out = i{}.out;\n    }};\n}}\n", n - 1));
    let mut p = Program::new();
    p.load_str("gen.unit", &src).expect("generated config parses");
    let el = knit::elaborate::elaborate(&p, "Sys").expect("elaborates");
    (p, el)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_respects_every_declared_dependency(
        n in 2usize..8,
        seed in any::<u64>(),
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let with_init: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
        let init_dep: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
        let (p, el) = chain_config(n, &with_init, &init_dep);
        let sched = knit::sched::schedule(&p, &el).expect("chain has no init cycles");
        // every initializer appears exactly once
        let inits: Vec<&(usize, String)> = sched.inits.iter().collect();
        let expected: usize = with_init.iter().filter(|b| **b).count();
        prop_assert_eq!(inits.len(), expected);
        // declared ordering: boot{i} needs prev ⇒ the previous unit's
        // initializer (if any, transitively) runs first
        let pos = |needle: &str| sched.inits.iter().position(|(inst, f)| {
            f == needle && el.instances[*inst].path.contains("i")
        });
        for i in 1..n {
            if with_init[i] && init_dep[i] {
                // nearest earlier unit with an initializer
                if let Some(j) = (0..i).rev().find(|&j| with_init[j]) {
                    // only a hard edge when that unit is the DIRECT
                    // predecessor (deps don't see through uninitialized
                    // units unless the middle units declare port deps,
                    // which this generator does not)
                    if j == i - 1 {
                        let pi = pos(&format!("boot{i}")).expect("scheduled");
                        let pj = pos(&format!("boot{j}")).expect("scheduled");
                        prop_assert!(pj < pi, "boot{j} must run before boot{i}");
                    }
                }
            }
        }
    }

    #[test]
    fn schedule_is_stable_under_recomputation(
        n in 2usize..8,
        seed in any::<u64>(),
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let with_init: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
        let init_dep: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
        let (p, el) = chain_config(n, &with_init, &init_dep);
        let a = knit::sched::schedule(&p, &el).expect("schedules");
        let b = knit::sched::schedule(&p, &el).expect("schedules");
        prop_assert_eq!(a.inits, b.inits);
        prop_assert_eq!(a.finis, b.finis);
    }
}

#[test]
fn wires_resolve_in_chain_configs() {
    let (_, el) = chain_config(4, &[true; 4], &[true; 4]);
    assert_eq!(el.instances.len(), 4);
    for inst in &el.instances {
        for wire in inst.imports.values() {
            match wire {
                Wire::Export { instance, .. } => assert!(*instance < el.instances.len()),
                Wire::External { .. } => panic!("chain has no externals"),
            }
        }
    }
}
