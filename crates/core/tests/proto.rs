//! Golden wire-format tests for the composition-server protocol
//! (`knit::proto`). Every verb's canonical JSON bytes are pinned here —
//! a byte-level change to any of these lines is a protocol break and must
//! bump [`knit::proto::VERSION`].

use knit::proto::{self, BuildEvent, BuildOutcome, LintOptions, Request, Response, SessionOptions};
use knit::{BuildOptions, Diagnostic, LintLevel, SessionHandle, Severity};

/// Serialize, pin the exact bytes, and confirm the bytes parse back to the
/// same request.
fn pin_request(req: Request, golden: &str) {
    assert_eq!(req.to_json(), golden, "wire bytes changed for {req:?}");
    assert_eq!(Request::from_json(golden).expect("golden parses"), req);
}

fn pin_response(resp: Response, golden: &str) {
    assert_eq!(resp.to_json(), golden, "wire bytes changed for {resp:?}");
    assert_eq!(Response::from_json(golden).expect("golden parses"), resp);
}

#[test]
fn request_wire_bytes_are_pinned() {
    pin_request(Request::Hello { version: 1 }, r#"{"req":"hello","version":1}"#);
    pin_request(
        Request::Open { session: "web".into(), options: SessionOptions::new("WebServer") },
        r#"{"req":"open","session":"web","options":{"root":"WebServer","entry":null,"check_constraints":true,"flatten":true,"jobs":null,"default_flags":[],"runtime_symbols":[],"profile":null}}"#,
    );
    let mut options = SessionOptions::new("App");
    options.entry = Some("boot".into());
    options.check_constraints = false;
    options.flatten = false;
    options.jobs = Some(4);
    options.default_flags = vec!["-O1".into()];
    options.runtime_symbols = vec!["printk".into()];
    options.profile = Some(r#"{"version":1}"#.into());
    pin_request(
        Request::Open { session: "s".into(), options },
        r#"{"req":"open","session":"s","options":{"root":"App","entry":"boot","check_constraints":false,"flatten":false,"jobs":4,"default_flags":["-O1"],"runtime_symbols":["printk"],"profile":"{\"version\":1}"}}"#,
    );
    pin_request(
        Request::LoadUnits {
            session: "s".into(),
            file: "a.unit".into(),
            text: "unit A = {}".into(),
        },
        r#"{"req":"load_units","session":"s","file":"a.unit","text":"unit A = {}"}"#,
    );
    pin_request(
        Request::UpdateUnit { session: "s".into(), file: "a.unit".into(), text: "x\ny".into() },
        r#"{"req":"update_unit","session":"s","file":"a.unit","text":"x\ny"}"#,
    );
    pin_request(
        Request::UpdateSource { session: "s".into(), path: "app.c".into(), text: "int x;".into() },
        r#"{"req":"update_source","session":"s","path":"app.c","text":"int x;"}"#,
    );
    pin_request(
        Request::Build { session: "s".into(), want_image: true },
        r#"{"req":"build","session":"s","want_image":true}"#,
    );
    pin_request(
        Request::Lint {
            session: "s".into(),
            config: LintOptions {
                overrides: vec![("dead-unit".into(), LintLevel::Deny)],
                deny_warnings: true,
            },
        },
        r#"{"req":"lint","session":"s","config":{"overrides":[["dead-unit","deny"]],"deny_warnings":true}}"#,
    );
    pin_request(Request::Explain { code: "K0016".into() }, r#"{"req":"explain","code":"K0016"}"#);
    pin_request(
        Request::PgoSuggest { session: "s".into(), profile: "{}".into() },
        r#"{"req":"pgo_suggest","session":"s","profile":"{}"}"#,
    );
    pin_request(Request::Watch { session: "s".into() }, r#"{"req":"watch","session":"s"}"#);
    pin_request(Request::Close { session: "s".into() }, r#"{"req":"close","session":"s"}"#);
    pin_request(Request::Ping, r#"{"req":"ping"}"#);
    pin_request(Request::Shutdown, r#"{"req":"shutdown"}"#);
}

#[test]
fn response_wire_bytes_are_pinned() {
    pin_response(Response::Hello { version: 1 }, r#"{"resp":"hello","version":1}"#);
    pin_response(Response::Ok, r#"{"resp":"ok"}"#);
    pin_response(Response::Opened { created: true }, r#"{"resp":"opened","created":true}"#);
    pin_response(Response::Opened { created: false }, r#"{"resp":"opened","created":false}"#);
    pin_response(
        Response::Linted {
            units_analyzed: 4,
            warnings: 1,
            errors: 0,
            diagnostics: vec![Diagnostic {
                code: "K1001",
                severity: Severity::Warning,
                message: "unit `Dead` is never instantiated".into(),
                span: Some(("a.unit".into(), 3, 5)),
                notes: vec!["remove it".into()],
            }],
        },
        r#"{"resp":"linted","units_analyzed":4,"warnings":1,"errors":0,"diagnostics":[{"code":"K1001","severity":"warning","message":"unit `Dead` is never instantiated","span":{"file":"a.unit","line":3,"col":5},"notes":["remove it"]}]}"#,
    );
    pin_response(
        Response::Explained {
            code: "K1004".into(),
            summary: "an initializer uses an import before it".into(),
            example: "init f depends on g".into(),
            lint: Some(("init-order-use".into(), LintLevel::Warn)),
        },
        r#"{"resp":"explained","code":"K1004","summary":"an initializer uses an import before it","example":"init f depends on g","lint":{"name":"init-order-use","default_level":"warn"}}"#,
    );
    pin_response(
        Response::Suggested { text: "suggestion #1\n".into() },
        r#"{"resp":"suggested","text":"suggestion #1\n"}"#,
    );
    pin_response(
        Response::Subscribed { session: "web".into() },
        r#"{"resp":"subscribed","session":"web"}"#,
    );
    pin_response(
        Response::Event(BuildEvent {
            session: "web".into(),
            seq: 7,
            ok: true,
            units_compiled: 1,
            units_reused: 5,
            text_size: 718,
            image_hash: u64::MAX,
        }),
        r#"{"resp":"event","session":"web","seq":7,"ok":true,"units_compiled":1,"units_reused":5,"text_size":718,"image_hash":18446744073709551615}"#,
    );
    pin_response(Response::Pong, r#"{"resp":"pong"}"#);
    pin_response(Response::Bye, r#"{"resp":"bye"}"#);
}

/// The handshake rejections are part of the wire contract: old clients
/// must be able to parse them forever.
#[test]
fn handshake_rejections_are_pinned() {
    pin_response(
        Response::version_mismatch(999),
        r#"{"resp":"error","diagnostics":[{"code":"K0016","severity":"error","message":"protocol version mismatch: client speaks v999, server speaks v1","span":null,"notes":["upgrade so both ends speak protocol v1"]}]}"#,
    );
    pin_response(
        Response::malformed("request must be a JSON object"),
        r#"{"resp":"error","diagnostics":[{"code":"K0017","severity":"error","message":"malformed protocol request: request must be a JSON object","span":null,"notes":["see docs/protocol.md for the wire format"]}]}"#,
    );
}

/// A `built` response round-trips a fully-populated outcome, including
/// exact u64 extremes in the hash and micros fields.
#[test]
fn built_outcome_wire_bytes_are_pinned() {
    let outcome = BuildOutcome {
        root: "App".into(),
        instances: 2,
        units_compiled: 1,
        units_reused: 1,
        objects: 3,
        flatten_groups: 0,
        text_size: 99,
        cache_hits: 1,
        cache_misses: 1,
        jobs: 2,
        image_hash: u64::MAX,
        phases: vec![("compile".into(), 1234)],
        schedule: vec!["init app".into()],
        constraints: Some((3, 2, 1)),
        exports: vec![("m".into(), "main_m_i0".into())],
        unit_compiles: vec![("App".into(), 1000, false)],
        watched: vec!["app.c".into()],
    };
    let resp = Response::Built { outcome, image: None };
    pin_response(
        resp,
        r#"{"resp":"built","outcome":{"root":"App","instances":2,"units_compiled":1,"units_reused":1,"objects":3,"flatten_groups":0,"text_size":99,"cache_hits":1,"cache_misses":1,"jobs":2,"image_hash":18446744073709551615,"phases":[["compile",1234]],"schedule":["init app"],"constraints":{"constraints":3,"vars":2,"annotated_units":1},"exports":[["m","main_m_i0"]],"unit_compiles":[["App",1000,false]],"watched":["app.c"]},"image":null}"#,
    );
}

// ---------------------------------------------------------------------------
// the image codec
// ---------------------------------------------------------------------------

fn tiny_image() -> cobj::Image {
    let handle = SessionHandle::new(BuildOptions::root("App").jobs(1).build());
    handle
        .load_units(
            "app.unit",
            r#"
            bundletype Main = { main }
            unit App = { exports [ main : Main ]; files { "app.c" }; }
            "#,
        )
        .unwrap();
    handle.update_source("app.c", "int main() { return 42; }");
    handle.build().unwrap().image
}

/// The wire image decodes back to a `==` image (and `PartialEq` on
/// `Image` compares every byte — this is the byte-identity safety net).
#[test]
fn image_codec_round_trips_byte_identically() {
    let image = tiny_image();
    let wire = proto::encode_image(&image);
    let decoded = proto::decode_image(&wire).expect("decodes");
    assert_eq!(decoded, image);
    assert_eq!(proto::image_hash(&decoded), proto::image_hash(&image));
}

#[test]
fn image_codec_rejects_corruption() {
    let image = tiny_image();
    let mut bytes = proto::encode_image_bytes(&image);
    assert!(proto::decode_image_bytes(&bytes[..bytes.len() - 1]).is_err(), "truncation");
    bytes.push(0);
    assert!(proto::decode_image_bytes(&bytes).is_err(), "trailing garbage");
    assert!(proto::decode_image_bytes(b"not an image").is_err(), "bad magic");
    assert!(proto::decode_image("zz").is_err(), "bad hex");
}

// ---------------------------------------------------------------------------
// docs/protocol.md is generated from the wire types and must stay in sync
// ---------------------------------------------------------------------------

#[test]
fn protocol_doc_is_in_sync_with_the_wire_types() {
    let want = proto::protocol_markdown();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/protocol.md");
    if std::env::var_os("UPDATE_PROTOCOL_MD").is_some() {
        std::fs::write(path, &want).unwrap();
    }
    let got = std::fs::read_to_string(path).expect(
        "docs/protocol.md missing; regenerate with \
         UPDATE_PROTOCOL_MD=1 cargo test -p knit --test proto",
    );
    assert_eq!(
        got, want,
        "docs/protocol.md is stale; regenerate with \
         UPDATE_PROTOCOL_MD=1 cargo test -p knit --test proto"
    );
}
