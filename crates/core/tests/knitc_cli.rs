//! Golden tests for the `knitc` CLI surface added with the analyzer:
//! `knitc lint --error-format=json` must emit one machine-parseable JSON
//! object per line on stderr (pinned byte-for-byte here for an error run,
//! a warning run, and a clean run), `--deny warnings` must flip the exit
//! code, and `knitc explain` must resolve every documented code.
//!
//! Integration tests run with the package directory as cwd, so the
//! example trees live under `../../`.

use std::process::{Command, Output};

fn knitc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_knitc")).args(args).output().expect("knitc runs")
}

const LINTS_UNIT: &str = "../../examples/lints/lints.unit";
const LINTS_SRC: &str = "../../examples/lints";

/// The eight diagnostics of `examples/lints/`, as JSON lines, with `{file}`
/// standing in for the unit-file path (which depends on how knitc was
/// invoked). Same canonical order as the human output.
const JSON_TEMPLATE: [&str; 8] = [
    r#"{"code":"K1005","severity":"warning","message":"unit `Dirty` (in a flatten group): function `chatter` takes varargs","span":{"file":"{file}","line":19,"col":1},"notes":["the flattening inliner never inlines vararg functions"]}"#,
    r#"{"code":"K1005","severity":"warning","message":"unit `Dirty` (in a flatten group): static `counter` is defined in more than one file of the unit","span":{"file":"{file}","line":19,"col":1},"notes":["flattening merges the unit's files; same-named statics are collision-prone under source merging"]}"#,
    r#"{"code":"K1005","severity":"warning","message":"unit `Dirty` (in a flatten group): the address of function `add` is taken","span":{"file":"{file}","line":19,"col":1},"notes":["calls through a function pointer defeat cross-unit inlining"]}"#,
    r#"{"code":"K1002","severity":"warning","message":"unit `Dirty`: imported symbol `log.log_msg` (C `log_msg`) is never referenced","span":{"file":"{file}","line":20,"col":15},"notes":["drop the import `log` or use `log_msg`"]}"#,
    r#"{"code":"K1001","severity":"warning","message":"unit `Dirty`: export `x.extra_op` resolves to C symbol `extra_op`, but no file of the unit defines it","span":{"file":"{file}","line":21,"col":28},"notes":["define `extra_op` in one of { dirty.c, extra.c } or rename the member"]}"#,
    r#"{"code":"K1003","severity":"warning","message":"instance `LintDemo/d`: export `x` is never imported by any instance and is not a root export","span":{"file":"{file}","line":21,"col":28},"notes":["remove the instance or wire something to the export"]}"#,
    r#"{"code":"K1003","severity":"warning","message":"instance `LintDemo/spare`: export `log` is never imported by any instance and is not a root export","span":{"file":"{file}","line":26,"col":15},"notes":["remove the instance or wire something to the export"]}"#,
    r#"{"code":"K1004","severity":"warning","message":"instance `LintDemo/b`: initializer `boot_init` reaches a call to imported `log.log_msg` (C `log_msg`), but provider `LintDemo/l`'s initializer `log_open` is scheduled later","span":{"file":"{file}","line":38,"col":35},"notes":["add `depends { boot_init needs (log); }` to unit `Boot` so the scheduler runs `log_open` first"]}"#,
];

fn expected_json_lines() -> Vec<String> {
    JSON_TEMPLATE.iter().map(|t| t.replace("{file}", LINTS_UNIT)).collect()
}

const RACES_UNIT: &str = "../../examples/lints/races.unit";

/// The four diagnostics of the intentionally racy `examples/lints/races.unit`
/// composition — one per concurrency lint — in canonical order.
const RACE_JSON_TEMPLATE: [&str; 4] = [
    r#"{"code":"K1006","severity":"warning","message":"unit `RaceLog`: shared static `events` is written with no lock held in `log_event`","span":{"file":"{file}","line":21,"col":1},"notes":["instances { RaceDemo/log }, reachable from root exports { w0, w1 }","guard every access with one spin lock (`while (L) { } L = 1; ... L = 0;`)"]}"#,
    r#"{"code":"K1007","severity":"warning","message":"unit `RaceLog`: shared static `depth` is guarded by different locks on different paths (first write in `log_pop`)","span":{"file":"{file}","line":21,"col":1},"notes":["instances { RaceDemo/log }, reachable from root exports { w0, w1 }","observed write locksets: { RaceDemo/log.lock_a } vs { RaceDemo/log.lock_b }"]}"#,
    r#"{"code":"K1008","severity":"warning","message":"unit `RaceLog`: function `log_begin` can return while still holding lock `lock_a`","span":{"file":"{file}","line":21,"col":1},"notes":["release it (`lock_a = 0`) on every path to return, or `#[allow(lock_leak)]` the unit if it is a lock provider"]}"#,
    r#"{"code":"K1009","severity":"warning","message":"unit `RaceLog`: read-modify-write of shared static `hits` outside any lock region in `log_event`","span":{"file":"{file}","line":21,"col":1},"notes":["instances { RaceDemo/log }, reachable from root exports { w0, w1 }","racing `hits++` loses updates; guard it, or `#[allow(atomicity_hint)]` if approximate counts are acceptable"]}"#,
];

fn expected_race_json_lines() -> Vec<String> {
    RACE_JSON_TEMPLATE.iter().map(|t| t.replace("{file}", RACES_UNIT)).collect()
}

#[test]
fn json_race_run_is_golden() {
    let out = knitc(&[
        "lint",
        "--error-format=json",
        "--root",
        "RaceDemo",
        "--src",
        LINTS_SRC,
        RACES_UNIT,
    ]);
    assert!(out.status.success(), "warnings alone must not fail the run");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "", "JSON mode prints no summary");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let lines: Vec<&str> = stderr.lines().collect();
    assert_eq!(lines, expected_race_json_lines(), "pinned race-lint JSON output drifted");
}

#[test]
fn json_warning_run_is_golden() {
    let out = knitc(&[
        "lint",
        "--error-format=json",
        "--root",
        "LintDemo",
        "--src",
        LINTS_SRC,
        LINTS_UNIT,
    ]);
    assert!(out.status.success(), "warnings alone must not fail the run");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "", "JSON mode prints no summary");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let lines: Vec<&str> = stderr.lines().collect();
    assert_eq!(lines, expected_json_lines(), "pinned JSON lint output drifted");
}

#[test]
fn json_error_run_is_golden() {
    let out =
        knitc(&["lint", "--error-format=json", "--root", "Nope", "--src", LINTS_SRC, LINTS_UNIT]);
    assert!(!out.status.success(), "an unknown root is an error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.trim_end(),
        r#"{"code":"K0003","severity":"error","message":"unknown unit `Nope` (in analysis root)","span":null,"notes":[]}"#,
    );
}

#[test]
fn json_clean_run_is_silent() {
    let out = knitc(&[
        "lint",
        "--error-format=json",
        "--root",
        "WebServer",
        "--src",
        "../../demo",
        "../../demo/webserver.unit",
    ]);
    assert!(out.status.success(), "demo must stay lint-clean: {:?}", out);
    assert_eq!(String::from_utf8_lossy(&out.stderr), "");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "");
}

#[test]
fn human_mode_prints_summary_and_deny_warnings_fails() {
    let out = knitc(&["lint", "--root", "LintDemo", "--src", LINTS_SRC, LINTS_UNIT]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout, "knitc: lint `LintDemo`: 4 units analyzed, 8 warnings, 0 errors\n");

    let denied = knitc(&[
        "lint", "--deny", "warnings", "--root", "LintDemo", "--src", LINTS_SRC, LINTS_UNIT,
    ]);
    assert!(!denied.status.success(), "--deny warnings must flip the exit code");
    let stdout = String::from_utf8_lossy(&denied.stdout);
    assert_eq!(stdout, "knitc: lint `LintDemo`: 4 units analyzed, 0 warnings, 8 errors\n");
    let stderr = String::from_utf8_lossy(&denied.stderr);
    assert!(stderr.contains("error[K1001]"), "{stderr}");
}

#[test]
fn per_lint_cli_overrides_change_levels() {
    let out = knitc(&[
        "lint",
        "--allow",
        "flatten-hazard",
        "--allow",
        "dead-export",
        "--allow",
        "unused-import",
        "--allow",
        "init-order-use",
        "--deny",
        "undefined-export",
        "--root",
        "LintDemo",
        "--src",
        LINTS_SRC,
        LINTS_UNIT,
    ]);
    assert!(!out.status.success(), "denied K1001 must fail the run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout, "knitc: lint `LintDemo`: 4 units analyzed, 0 warnings, 1 error\n");

    let bad = knitc(&["lint", "--deny", "no-such-lint", "--root", "LintDemo", LINTS_UNIT]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("K0003"), "unknown lint name is K0003");
}

#[test]
fn explain_resolves_lint_and_error_codes() {
    let out = knitc(&["explain", "K1004"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("K1004: init-order-use (lint, default warn)\n"), "{stdout}");

    let out = knitc(&["explain", "K0011"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("K0011: error\n"));

    let out = knitc(&["explain", "K9999"]);
    assert!(!out.status.success(), "unknown codes must fail");
}

const DEMO_UNIT: &str = "../../demo/webserver.unit";
const DEMO_SRC: &str = "../../demo";

/// The two-phase PGO workflow end to end: `--profile-gen` writes a JSON
/// call-edge profile from an instrumented run, `--profile-use` feeds it
/// back into the linker, and `pgo-suggest` renders the flatten advisor's
/// report from it.
#[test]
fn pgo_workflow_roundtrips_through_the_cli() {
    let dir = std::env::temp_dir().join(format!("knitc-pgo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let profile = dir.join("web.profile.json");
    let profile_s = profile.to_str().expect("utf-8 temp path");

    let out =
        knitc(&["--root", "WebServer", "--src", DEMO_SRC, "--profile-gen", profile_s, DEMO_UNIT]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote profile to"), "{stdout}");
    let text = std::fs::read_to_string(&profile).expect("profile written");
    assert!(text.contains("\"edges\"") && text.contains("\"count\""), "{text}");

    let out = knitc(&[
        "--root",
        "WebServer",
        "--src",
        DEMO_SRC,
        "--run",
        "--profile-use",
        profile_s,
        DEMO_UNIT,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("exited with code 0"),
        "pgo layout must not change behaviour: {stdout}"
    );

    let out = knitc(&[
        "pgo-suggest",
        "--root",
        "WebServer",
        "--src",
        DEMO_SRC,
        "--profile-use",
        profile_s,
        DEMO_UNIT,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hot cross-instance edge"), "{stdout}");
    assert!(stdout.contains("suggestion #1"), "{stdout}");
    assert!(stdout.contains("flatten"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
