//! Diagnostic-quality tests: Knit's value over raw `ld` is largely in its
//! error messages — every rejection must name the unit, the port, or the
//! conflicting annotations involved.

use knit::{build, BuildOptions, KnitError, Program, SourceTree};

fn runtime() -> impl Iterator<Item = String> {
    machine::runtime_symbols()
}

fn try_build(units: &str, files: &[(&str, &str)], root: &str) -> Result<(), String> {
    let mut p = Program::new();
    p.load_str("t.unit", units).map_err(|e| e.to_string())?;
    let mut t = SourceTree::new();
    for (path, src) in files {
        t.add(*path, *src);
    }
    build(&p, &t, &BuildOptions::new(root, runtime())).map(|_| ()).map_err(|e| e.to_string())
}

#[test]
fn unbound_import_names_instance_and_port() {
    let err = try_build(
        r#"
        bundletype T = { f }
        unit Needy = { imports [ fuel : T ]; exports [ out : T ]; files { "n.c" }; }
        unit Sys = { exports [ o : T ]; link { n : Needy; o = n.out; }; }
        "#,
        &[("n.c", "int f() { return 1; }")],
        "Sys",
    )
    .unwrap_err();
    assert!(err.contains("fuel"), "{err}");
    assert!(err.contains("Sys/n"), "{err}");
}

#[test]
fn bundle_mismatch_names_both_types() {
    let err = try_build(
        r#"
        bundletype T = { f }
        bundletype U = { g }
        unit P = { exports [ y : U ]; files { "p.c" }; }
        unit C = { imports [ x : T ]; exports [ o : T ]; files { "c.c" }; }
        unit Sys = { exports [ o : T ]; link { p : P; c : C [ x = p.y ]; o = c.o; }; }
        "#,
        &[("p.c", "int g() { return 1; }"), ("c.c", "int f() { return 2; }")],
        "Sys",
    )
    .unwrap_err();
    assert!(err.contains('T') && err.contains('U'), "{err}");
}

#[test]
fn missing_source_names_unit_and_path() {
    let err = try_build(
        r#"
        bundletype T = { f }
        unit Ghost = { exports [ o : T ]; files { "missing.c" }; }
        unit Sys = { exports [ o : T ]; link { g : Ghost; o = g.o; }; }
        "#,
        &[],
        "Sys",
    )
    .unwrap_err();
    assert!(err.contains("Ghost") && err.contains("missing.c"), "{err}");
}

#[test]
fn compile_errors_carry_file_and_line() {
    let err = try_build(
        r#"
        bundletype T = { f }
        unit Broken = { exports [ o : T ]; files { "b.c" }; }
        unit Sys = { exports [ o : T ]; link { b : Broken; o = b.o; }; }
        "#,
        &[("b.c", "int f() {\n    return oops;\n}")],
        "Sys",
    )
    .unwrap_err();
    assert!(err.contains("b.c:2"), "position missing: {err}");
    assert!(err.contains("oops"), "{err}");
}

#[test]
fn unknown_root_is_reported() {
    let err = try_build("bundletype T = { f }", &[], "Nowhere").unwrap_err();
    assert!(err.contains("Nowhere"), "{err}");
}

#[test]
fn constraint_violation_names_both_annotations() {
    let err = try_build(
        r#"
        property ctx
        type Any
        type Proc < Any
        bundletype T = { f }
        unit Strict = {
            exports [ o : T ];
            files { "s.c" };
            constraints { ctx(o) = Proc; };
        }
        unit Demands = {
            imports [ i : T ];
            exports [ o : T ];
            files { "d.c" };
            rename { i.f to inner_f; };
            constraints { ctx(o) = Any; ctx(o) <= ctx(i); };
        }
        unit Sys = { exports [ o : T ]; link { s : Strict; d : Demands [ i = s.o ]; o = d.o; }; }
        "#,
        &[
            ("s.c", "int f() { return 1; }"),
            ("d.c", "int inner_f();\nint f() { return inner_f(); }"),
        ],
        "Sys",
    )
    .unwrap_err();
    // the blame chain names both conflicting units and values
    assert!(err.contains("Strict") && err.contains("Demands"), "{err}");
    assert!(err.contains("Proc") && err.contains("Any"), "{err}");
}

#[test]
fn needs_rename_explains_the_conflict() {
    let mut p = Program::new();
    p.load_str(
        "t.unit",
        r#"
        bundletype T = { f }
        unit Wrap = { imports [ i : T ]; exports [ o : T ]; files { "w.c" }; }
        unit Base = { exports [ o : T ]; files { "b.c" }; }
        unit Sys = { exports [ o : T ]; link { b : Base; w : Wrap [ i = b.o ]; o = w.o; }; }
        "#,
    )
    .unwrap();
    let mut t = SourceTree::new();
    t.add("w.c", "int f() { return 1; }");
    t.add("b.c", "int f() { return 2; }");
    let err = build(&p, &t, &BuildOptions::new("Sys", runtime())).unwrap_err();
    match err.root() {
        KnitError::NeedsRename { unit, c_name } => {
            assert_eq!(unit, "Wrap");
            assert_eq!(c_name, "f");
        }
        other => panic!("expected NeedsRename, got {other}"),
    }
    // the location wrapper blames the `.unit` declaration
    let (file, line, _col) = err.span().expect("NeedsRename should carry a span");
    assert_eq!(file, "t.unit");
    assert_eq!(line, 3, "span should point at unit Wrap's declaration");
    // and the Display output cites §3.2's remedy
    let msg = KnitError::NeedsRename { unit: "Wrap".into(), c_name: "f".into() }.to_string();
    assert!(msg.contains("rename"), "{msg}");
}

#[test]
fn duplicate_unit_rejected_at_load() {
    let mut p = Program::new();
    p.load_str(
        "a.unit",
        "bundletype T = { f }\nunit U = { exports [ o : T ]; files { \"u.c\" }; }",
    )
    .unwrap();
    let err =
        p.load_str("b.unit", "unit U = { exports [ o : T ]; files { \"u2.c\" }; }").unwrap_err();
    assert!(err.to_string().contains("duplicate unit `U`"), "{err}");
}

// ---------------------------------------------------------------------------
// canonical diagnostic ordering (knit::diag::sort_dedupe)
// ---------------------------------------------------------------------------

#[test]
fn sort_dedupe_orders_by_file_span_code_and_drops_duplicates() {
    use knit::diag::{sort_dedupe, Severity};
    use knit::Diagnostic;

    let d = |code: &'static str, span: Option<(&str, u32, u32)>, msg: &str| Diagnostic {
        code,
        severity: Severity::Warning,
        message: msg.to_string(),
        span: span.map(|(f, l, c)| (f.to_string(), l, c)),
        notes: vec![],
    };

    let mut diags = vec![
        d("K1003", None, "spanless comes last"),
        d("K1003", Some(("b.unit", 2, 1)), "later file"),
        d("K1002", Some(("a.unit", 9, 1)), "later line"),
        d("K1005", Some(("a.unit", 3, 7)), "later column"),
        d("K1004", Some(("a.unit", 3, 2)), "same spot, later code"),
        d("K1001", Some(("a.unit", 3, 2)), "same spot, earlier code"),
        d("K1001", Some(("a.unit", 3, 2)), "same spot, earlier code"), // duplicate
    ];
    sort_dedupe(&mut diags);

    let order: Vec<(&str, &str)> = diags.iter().map(|d| (d.code, d.message.as_str())).collect();
    assert_eq!(
        order,
        [
            ("K1001", "same spot, earlier code"),
            ("K1004", "same spot, later code"),
            ("K1005", "later column"),
            ("K1002", "later line"),
            ("K1003", "later file"),
            ("K1003", "spanless comes last"),
        ]
    );
}

// ---------------------------------------------------------------------------
// docs/diagnostics.md is generated from the registries and must stay in sync
// ---------------------------------------------------------------------------

#[test]
fn diagnostics_doc_is_in_sync_with_the_registries() {
    let want = knit::diag::diagnostics_markdown();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/diagnostics.md");
    if std::env::var_os("UPDATE_DIAGNOSTICS_MD").is_some() {
        std::fs::write(path, &want).unwrap();
    }
    let got = std::fs::read_to_string(path).expect(
        "docs/diagnostics.md missing; regenerate with \
         UPDATE_DIAGNOSTICS_MD=1 cargo test -p knit --test diagnostics",
    );
    assert_eq!(
        got, want,
        "docs/diagnostics.md is stale; regenerate with \
         UPDATE_DIAGNOSTICS_MD=1 cargo test -p knit --test diagnostics"
    );
}
