//! End-to-end pipeline tests: .unit sources + mini-C sources → built image
//! → executed on the simulated machine.

use std::collections::BTreeMap;

use knit::{build, BuildOptions, Program, SourceTree};
use machine::Machine;

fn runtime() -> impl Iterator<Item = String> {
    machine::runtime_symbols()
}

/// The paper's running example (Figures 5 and 6): a web server whose
/// serve_web is wrapped by a logging unit, with initializer scheduling.
fn figure5_setup() -> (Program, SourceTree) {
    let mut p = Program::new();
    p.load_str(
        "fig5.unit",
        r#"
        bundletype Serve = { serve_web }
        bundletype Stdio = { fopen, fprintf }
        bundletype Main = { main }
        flags CFlags = { "-O2" }

        unit Web = {
            imports [ serveFile : Serve, serveCGI : Serve ];
            exports [ serveWeb : Serve ];
            depends { serveWeb needs (serveFile + serveCGI); };
            files { "web.c" } with flags CFlags;
            rename {
                serveFile.serve_web to serve_file;
                serveCGI.serve_web to serve_cgi;
            };
        }

        unit Log = {
            imports [ serveWeb : Serve, stdio : Stdio ];
            exports [ serveLog : Serve ];
            initializer open_log for serveLog;
            finalizer close_log for serveLog;
            depends {
                open_log needs stdio;
                close_log needs stdio;
                serveLog needs (serveWeb + stdio);
            };
            files { "log.c" } with flags CFlags;
            rename {
                serveWeb.serve_web to serve_unlogged;
                serveLog.serve_web to serve_logged;
            };
        }

        unit FileServer = {
            exports [ serve : Serve ];
            files { "file.c" } with flags CFlags;
        }

        unit CgiServer = {
            exports [ serve : Serve ];
            files { "cgi.c" } with flags CFlags;
        }

        unit StdioUnit = {
            exports [ stdio : Stdio ];
            initializer stdio_init for stdio;
            files { "stdio.c" } with flags CFlags;
        }

        unit Driver = {
            imports [ serve : Serve ];
            exports [ main : Main ];
            depends { main needs serve; };
            files { "driver.c" } with flags CFlags;
        }

        unit WebServer = {
            exports [ main : Main ];
            link {
                fserve : FileServer;
                cgi : CgiServer;
                io : StdioUnit;
                web : Web [ serveFile = fserve.serve, serveCGI = cgi.serve ];
                log : Log [ serveWeb = web.serveWeb, stdio = io.stdio ];
                drv : Driver [ serve = log.serveLog ];
                main = drv.main;
            };
        }
        "#,
    )
    .unwrap();

    let mut t = SourceTree::new();
    // Figure 6's web.c, verbatim in spirit.
    t.add(
        "web.c",
        r#"
        int serve_file(int s, char *path);
        int serve_cgi(int s, char *path);
        int strncmp_(char *a, char *b, int n) {
            for (int i = 0; i < n; i++) {
                if (a[i] != b[i]) return a[i] - b[i];
                if (a[i] == 0) return 0;
            }
            return 0;
        }
        int serve_web(int s, char *path) {
            if (!strncmp_(path, "/cgi-bin/", 9))
                return serve_cgi(s, path + 9);
            else
                return serve_file(s, path);
        }
        "#,
    );
    // Figure 6's log.c.
    t.add(
        "log.c",
        r#"
        int fopen(char *path, char *mode);
        int fprintf(int f, char *fmt, ...);
        int serve_unlogged(int s, char *path);
        static int log;
        void open_log() {
            log = fopen("ServerLog", "a");
        }
        void close_log() {
            fprintf(log, "done\n");
        }
        int serve_logged(int s, char *path) {
            int r;
            r = serve_unlogged(s, path);
            fprintf(log, "%s -> %d\n", path, r);
            return r;
        }
        "#,
    );
    t.add("file.c", "int serve_web(int s, char *path) { return 100; }");
    t.add("cgi.c", "int serve_web(int s, char *path) { return 200; }");
    t.add(
        "stdio.c",
        r#"
        int __con_putc(int c);
        static int ready = 0;
        void stdio_init() { ready = 1; }
        int fopen(char *path, char *mode) { return ready ? 3 : -1; }
        static void put_str(char *s) { while (*s) { __con_putc(*s); s++; } }
        static void put_int(int v) {
            if (v < 0) { __con_putc('-'); v = -v; }
            if (v >= 10) put_int(v / 10);
            __con_putc('0' + v % 10);
        }
        int fprintf(int f, char *fmt, ...) {
            int argi = 0;
            if (f < 0) return -1;
            while (*fmt) {
                if (*fmt == '%') {
                    fmt++;
                    if (*fmt == 'd') put_int(__vararg(argi));
                    if (*fmt == 's') put_str((char*)__vararg(argi));
                    argi++;
                } else {
                    __con_putc(*fmt);
                }
                fmt++;
            }
            return 0;
        }
        "#,
    );
    t.add(
        "driver.c",
        r#"
        int serve_web(int s, char *path);
        int main() {
            int a = serve_web(1, "/index.html");
            int b = serve_web(2, "/cgi-bin/run");
            return a + b;
        }
        "#,
    );
    (p, t)
}

#[test]
fn figure5_web_server_builds_and_runs() {
    let (p, t) = figure5_setup();
    let report = build(&p, &t, &BuildOptions::new("WebServer", runtime())).unwrap();
    // init order: stdio before open_log (the paper's exact subtlety)
    let pos = |needle: &str| {
        report
            .schedule
            .iter()
            .position(|s| s.ends_with(needle))
            .unwrap_or_else(|| panic!("{needle} not scheduled: {:?}", report.schedule))
    };
    assert!(pos("stdio_init") < pos("open_log"));

    let mut m = Machine::new(report.image.clone()).unwrap();
    let code = m.run_entry().unwrap();
    assert_eq!(code, 300, "file (100) + cgi (200)");
    // the log lines were written through two components and an initializer
    assert!(m.console.output.contains("/index.html -> 100"), "console: {}", m.console.output);
    assert!(m.console.output.contains("run -> 200"), "console: {}", m.console.output);
    // finalizer ran last
    assert!(m.console.output.trim_end().ends_with("done"), "console: {}", m.console.output);
}

#[test]
fn interposition_works_with_knit_but_not_ld() {
    // Figure 1(c): with Knit, wrapping is just different wiring — no source
    // changes to either component.
    let (p, t) = figure5_setup();
    let mut p2 = p.clone();
    p2.load_str(
        "direct.unit",
        r#"
        unit DirectServer = {
            exports [ main : Main ];
            link {
                fserve : FileServer;
                cgi : CgiServer;
                web : Web [ serveFile = fserve.serve, serveCGI = cgi.serve ];
                drv : Driver [ serve = web.serveWeb ];
                main = drv.main;
            };
        }
        "#,
    )
    .unwrap();
    let report = build(&p2, &t, &BuildOptions::new("DirectServer", runtime())).unwrap();
    let mut m = Machine::new(report.image).unwrap();
    assert_eq!(m.run_entry().unwrap(), 300);
    // no logging unit: console stays silent
    assert_eq!(m.console.output, "");
}

#[test]
fn multiple_instantiation_duplicates_state() {
    let mut p = Program::new();
    p.load_str(
        "multi.unit",
        r#"
        bundletype Counter = { bump, get }
        bundletype Main = { main }
        unit CounterU = {
            exports [ c : Counter ];
            files { "counter.c" };
        }
        unit UseTwo = {
            imports [ a : Counter, b : Counter ];
            exports [ main : Main ];
            depends { main needs (a + b); };
            files { "usetwo.c" };
            rename {
                a.bump to bump_a; a.get to get_a;
                b.bump to bump_b; b.get to get_b;
            };
        }
        unit Sys = {
            exports [ main : Main ];
            link {
                one : CounterU;
                two : CounterU;
                use : UseTwo [ a = one.c, b = two.c ];
                main = use.main;
            };
        }
        "#,
    )
    .unwrap();
    let mut t = SourceTree::new();
    t.add("counter.c", "static int n = 0;\nvoid bump() { n = n + 1; }\nint get() { return n; }");
    t.add(
        "usetwo.c",
        r#"
        void bump_a(); void bump_b();
        int get_a(); int get_b();
        int main() {
            bump_a(); bump_a(); bump_a();
            bump_b();
            return get_a() * 10 + get_b();
        }
        "#,
    );
    let report = build(&p, &t, &BuildOptions::new("Sys", runtime())).unwrap();
    assert_eq!(report.stats.instances, 3);
    assert_eq!(report.stats.units_compiled, 2, "CounterU compiled once, instantiated twice");
    let mut m = Machine::new(report.image).unwrap();
    // distinct static state per instance: 3 and 1, not 4 and 4
    assert_eq!(m.run_entry().unwrap(), 31);
}

#[test]
fn flattened_build_produces_same_output_and_fewer_calls() {
    let (p, t) = figure5_setup();
    let mut p2 = p.clone();
    p2.load_str(
        "flat.unit",
        r#"
        unit FlatServer = {
            exports [ main : Main ];
            link {
                fserve : FileServer;
                cgi : CgiServer;
                io : StdioUnit;
                web : Web [ serveFile = fserve.serve, serveCGI = cgi.serve ];
                log : Log [ serveWeb = web.serveWeb, stdio = io.stdio ];
                drv : Driver [ serve = log.serveLog ];
                main = drv.main;
            };
            flatten;
        }
        "#,
    )
    .unwrap();

    let plain = build(&p, &t, &BuildOptions::new("WebServer", runtime())).unwrap();
    let flat = build(&p2, &t, &BuildOptions::new("FlatServer", runtime())).unwrap();
    assert_eq!(flat.stats.flatten_groups, 1);

    let mut m1 = Machine::new(plain.image).unwrap();
    let r1 = m1.run_entry().unwrap();
    let mut m2 = Machine::new(flat.image).unwrap();
    let r2 = m2.run_entry().unwrap();
    assert_eq!(r1, r2, "flattening must preserve behaviour");
    assert_eq!(m1.console.output, m2.console.output);
    // cross-component inlining: fewer calls executed
    assert!(
        m2.counters().calls < m1.counters().calls,
        "flattened {} vs plain {}",
        m2.counters().calls,
        m1.counters().calls
    );
    // and fewer cycles
    assert!(m2.counters().cycles < m1.counters().cycles);
}

#[test]
fn unbound_symbol_is_rejected_with_unit_attribution() {
    let mut p = Program::new();
    p.load_str(
        "bad.unit",
        r#"
        bundletype Main = { main }
        unit Bad = {
            exports [ main : Main ];
            files { "bad.c" };
        }
        "#,
    )
    .unwrap();
    let mut t = SourceTree::new();
    t.add("bad.c", "int mystery();\nint main() { return mystery(); }");
    let err = build(&p, &t, &BuildOptions::new("Bad", runtime())).unwrap_err();
    match err.root() {
        knit::KnitError::UnboundSymbol { symbol, .. } => assert_eq!(symbol, "mystery"),
        other => panic!("expected UnboundSymbol, got {other}"),
    }
}

#[test]
fn import_export_identifier_conflict_requires_rename() {
    let mut p = Program::new();
    p.load_str(
        "conflict.unit",
        r#"
        bundletype T = { f }
        bundletype Main = { main }
        unit Provider = { exports [ t : T ]; files { "prov.c" }; }
        unit Wrapper = {
            imports [ inner : T ];
            exports [ outer : T ];
            files { "wrap.c" };
        }
        unit Sys = {
            exports [ m : T ];
            link {
                p : Provider;
                w : Wrapper [ inner = p.t ];
                m = w.outer;
            };
        }
        "#,
    )
    .unwrap();
    let mut t = SourceTree::new();
    t.add("prov.c", "int f() { return 1; }");
    // wrapper defines f AND imports f — without a rename this must fail
    t.add("wrap.c", "int f() { return 2; }");
    let err = build(&p, &t, &BuildOptions::new("Sys", runtime())).unwrap_err();
    assert!(matches!(err.root(), knit::KnitError::NeedsRename { .. }), "got {err}");
}

#[test]
fn missing_export_definition_is_reported() {
    let mut p = Program::new();
    p.load_str(
        "missing.unit",
        r#"
        bundletype T = { promised }
        unit Liar = { exports [ t : T ]; files { "liar.c" }; }
        unit Sys = { exports [ t : T ]; link { l : Liar; t = l.t; }; }
        "#,
    )
    .unwrap();
    let mut t = SourceTree::new();
    t.add("liar.c", "int something_else() { return 1; }");
    let err = build(&p, &t, &BuildOptions::new("Sys", runtime())).unwrap_err();
    assert!(matches!(err.root(), knit::KnitError::BadDeclaration { .. }), "got {err}");
}

#[test]
fn build_report_phases_and_exports() {
    let (p, t) = figure5_setup();
    let report = build(&p, &t, &BuildOptions::new("WebServer", runtime())).unwrap();
    let names: Vec<&str> = report.phases.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        vec![
            "elaborate",
            "constraints",
            "schedule",
            "compile",
            "objcopy",
            "flatten",
            "generate",
            "link"
        ]
    );
    assert!(report.exports.contains_key("main.main"));
    assert!(report.stats.text_size > 0);
    // the exported symbol is callable directly
    let map = report.exports.clone();
    let mut m = Machine::new(report.image).unwrap();
    m.call("__knit_init", &[]).unwrap();
    let r = m.call(&map["main.main"], &[]).unwrap();
    assert_eq!(r, 300);
}

#[test]
fn constraint_violation_blocks_build() {
    let mut p = Program::new();
    p.load_str(
        "ctx.unit",
        r#"
        property context
        type NoContext
        type ProcessContext < NoContext
        bundletype T = { f }
        unit Blocking = {
            exports [ t : T ];
            files { "b.c" };
            constraints { context(t) = ProcessContext; };
        }
        unit Irq = {
            imports [ callee : T ];
            exports [ irq : T ];
            files { "i.c" };
            constraints { context(irq) = NoContext; context(irq) <= context(callee); };
        }
        unit Sys = {
            exports [ t : T ];
            link { b : Blocking; i : Irq [ callee = b.t ]; t = i.irq; };
        }
        "#,
    )
    .unwrap();
    let mut t = SourceTree::new();
    t.add("b.c", "int f() { return 1; }");
    t.add("i.c", "int inner();\nint f() { return inner(); }");
    // note: i.c's import would need a rename to compile; the constraint
    // check runs first and must reject the configuration before compiling.
    let mut opts = BuildOptions::new("Sys", runtime());
    let err = build(&p, &t, &opts).unwrap_err();
    assert!(matches!(err.root(), knit::KnitError::ConstraintViolation { .. }), "got {err}");
    // with checking disabled the build proceeds past constraints (and fails
    // later for the unrelated rename reason, proving the phase order)
    opts.check_constraints = false;
    let err2 = build(&p, &t, &opts).unwrap_err();
    assert!(!matches!(err2.root(), knit::KnitError::ConstraintViolation { .. }));
}

#[test]
fn deterministic_builds() {
    let (p, t) = figure5_setup();
    let opts = BuildOptions::new("WebServer", runtime());
    let a = build(&p, &t, &opts).unwrap();
    let b = build(&p, &t, &opts).unwrap();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.stats.text_size, b.stats.text_size);
    assert_eq!(a.exports, b.exports);
}

#[test]
fn depends_are_validated_against_ports() {
    let mut p = Program::new();
    let err = p.load_str(
        "bad.unit",
        r#"
        bundletype T = { f }
        unit U = {
            exports [ t : T ];
            depends { t needs ghost; };
            files { "u.c" };
        }
        "#,
    );
    assert!(err.is_err());
    let _ = BTreeMap::<String, String>::new();
}
