//! Concurrent-client integration tests for the composition server
//! (`knit::server`): many clients over a real local socket, byte-identity
//! against direct sessions, cross-session compile dedupe, gap-free watch
//! events, and a shutdown that drains in-flight work.

use std::io::{BufRead, BufReader, Write};

use knit::proto::{self, Request, Response, SessionOptions};
use knit::server::{Conn, Engine, Server};

/// A three-unit program whose `value.c` is parameterized per client —
/// `App` and `Top` have identical content in every variant, so their
/// compiles dedupe across sessions while `Value` stays distinct.
const UNITS: &str = r#"
bundletype Main = { main }
bundletype Val = { value }
unit Value = {
    exports [ v : Val ];
    files { "value.c" };
}
unit App = {
    imports [ v : Val ];
    exports [ m : Main ];
    depends { exports needs imports; };
    files { "app.c" };
}
unit Top = {
    exports [ m : Main ];
    link {
        val : Value;
        app : App [ v = val.v ];
        m = app.m;
    };
}
"#;

const APP_C: &str = "int value();\nint main() { return value(); }\n";

fn value_c(n: i32) -> String {
    format!("int value() {{ return {n}; }}\n")
}

fn options() -> SessionOptions {
    let mut o = SessionOptions::new("Top");
    o.jobs = Some(1);
    o
}

/// `call` + unwrap both transport and protocol errors.
fn ok(conn: &mut Conn, req: &Request) -> Response {
    match conn.call(req).expect("transport") {
        Response::Error { diagnostics } => {
            panic!("server error: {}", diagnostics[0].human())
        }
        resp => resp,
    }
}

/// Feed a session its full input set over `conn`.
fn seed_session(conn: &mut Conn, session: &str, value: i32) {
    let s = session.to_string();
    ok(conn, &Request::Open { session: s.clone(), options: options() });
    ok(conn, &Request::LoadUnits { session: s.clone(), file: "t.unit".into(), text: UNITS.into() });
    ok(
        conn,
        &Request::UpdateSource { session: s.clone(), path: "app.c".into(), text: APP_C.into() },
    );
    ok(conn, &Request::UpdateSource { session: s, path: "value.c".into(), text: value_c(value) });
}

fn build_image(conn: &mut Conn, session: &str) -> (proto::BuildOutcome, cobj::Image) {
    match ok(conn, &Request::Build { session: session.into(), want_image: true }) {
        Response::Built { outcome, image } => {
            let image = proto::decode_image(&image.expect("image requested")).expect("decodes");
            assert_eq!(proto::image_hash(&image), outcome.image_hash, "hash matches bytes");
            (outcome, image)
        }
        other => panic!("unexpected build response {other:?}"),
    }
}

/// What the server must match: the same inputs through a direct
/// (in-process, lock-guarded) session.
fn direct_image(value: i32) -> cobj::Image {
    let engine = Engine::new();
    let (handle, created) = engine.open_session("direct", &options()).expect("opens");
    assert!(created);
    handle.load_units("t.unit", UNITS).expect("units parse");
    handle.update_source("app.c", APP_C);
    handle.update_source("value.c", &value_c(value));
    handle.build().expect("builds").image
}

/// Four clients on four sessions, concurrently: every wire image is
/// byte-identical to a direct build of the same inputs, and a fifth
/// session with repeated content compiles nothing — the shared cache
/// dedupes across sessions.
#[test]
fn concurrent_clients_build_byte_identical_images() {
    let server = Server::bind(Engine::new(), "auto").expect("binds");
    let addr = server.addr().to_string();
    let handle = server.spawn();

    let threads: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut conn = Conn::connect(&addr).expect("connects");
                let session = format!("s{i}");
                let value = 10 + i;
                seed_session(&mut conn, &session, value);
                let (outcome, image) = build_image(&mut conn, &session);
                assert_eq!(outcome.units_compiled + outcome.units_reused, 2);
                (value, image)
            })
        })
        .collect();
    for t in threads {
        let (value, image) = t.join().expect("client thread");
        assert_eq!(image, direct_image(value), "server image differs for value {value}");
    }

    // Same content as s0, fresh session: every unit hits the shared cache.
    let mut conn = Conn::connect(&addr).expect("connects");
    seed_session(&mut conn, "repeat", 10);
    let (outcome, image) = build_image(&mut conn, "repeat");
    assert_eq!(outcome.cache_misses, 0, "all compiles deduped across sessions");
    assert!(outcome.cache_hits > 0);
    assert_eq!(image, direct_image(10));

    ok(&mut conn, &Request::Shutdown);
    handle.join().expect("clean shutdown");
}

/// Four clients hammer the *same* session (sessions are addressed by
/// name, not by connection). Every interleaving must serialize on the
/// session lock: all builds succeed, and once the dust settles a final
/// deterministic edit rebuilds to the byte-exact direct image.
#[test]
fn overlapping_edits_on_a_shared_session_stay_consistent() {
    let server = Server::bind(Engine::new(), "auto").expect("binds");
    let addr = server.addr().to_string();
    let handle = server.spawn();

    let mut conn = Conn::connect(&addr).expect("connects");
    seed_session(&mut conn, "shared", 0);

    let threads: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut conn = Conn::connect(&addr).expect("connects");
                for round in 0..4 {
                    ok(
                        &mut conn,
                        &Request::UpdateSource {
                            session: "shared".into(),
                            path: "value.c".into(),
                            text: value_c(100 * i + round),
                        },
                    );
                    // Must always be a successful build of *some*
                    // client's edit — never a torn source tree.
                    let (outcome, _) = build_image(&mut conn, "shared");
                    assert_eq!(outcome.root, "Top");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    ok(
        &mut conn,
        &Request::UpdateSource {
            session: "shared".into(),
            path: "value.c".into(),
            text: value_c(77),
        },
    );
    let (_, image) = build_image(&mut conn, "shared");
    assert_eq!(image, direct_image(77));

    ok(&mut conn, &Request::Shutdown);
    handle.join().expect("clean shutdown");
}

/// A subscriber sees every build event exactly once, in order, with a
/// gap-free per-session sequence — no lost or reordered notifications.
#[test]
fn watch_events_stream_gap_free() {
    let server = Server::bind(Engine::new(), "auto").expect("binds");
    let addr = server.addr().to_string();
    let handle = server.spawn();

    let mut builder = Conn::connect(&addr).expect("connects");
    seed_session(&mut builder, "watched", 1);

    let mut subscriber = Conn::connect(&addr).expect("connects");
    match ok(&mut subscriber, &Request::Watch { session: "watched".into() }) {
        Response::Subscribed { session } => assert_eq!(session, "watched"),
        other => panic!("unexpected watch response {other:?}"),
    }

    let mut hashes = Vec::new();
    for n in 0..5 {
        ok(
            &mut builder,
            &Request::UpdateSource {
                session: "watched".into(),
                path: "value.c".into(),
                text: value_c(n),
            },
        );
        let (outcome, _) = build_image(&mut builder, "watched");
        hashes.push(outcome.image_hash);
    }

    for (i, hash) in hashes.iter().enumerate() {
        let event = subscriber.recv_event().expect("event arrives");
        assert_eq!(event.session, "watched");
        assert_eq!(event.seq, i as u64 + 1, "sequence must be gap-free");
        assert!(event.ok);
        assert_eq!(event.image_hash, *hash, "event {i} carries its build's hash");
    }

    ok(&mut builder, &Request::Shutdown);
    handle.join().expect("clean shutdown");
}

/// A client may pipeline `shutdown` right behind real work on one
/// connection: the server answers everything already submitted — in
/// order, completely — before going down. (Deterministic because one
/// connection's requests are processed sequentially.)
#[test]
fn shutdown_drains_in_flight_requests() {
    let server = Server::bind(Engine::new(), "tcp:0").expect("binds");
    let addr = server.addr().to_string();
    let handle = server.spawn();

    let tcp = addr.strip_prefix("tcp:").expect("tcp spec");
    let mut stream = std::net::TcpStream::connect(tcp).expect("connects");
    let mut burst = String::new();
    for req in [
        Request::Hello { version: proto::VERSION },
        Request::Open { session: "drain".into(), options: options() },
        Request::LoadUnits { session: "drain".into(), file: "t.unit".into(), text: UNITS.into() },
        Request::UpdateSource { session: "drain".into(), path: "app.c".into(), text: APP_C.into() },
        Request::UpdateSource { session: "drain".into(), path: "value.c".into(), text: value_c(5) },
        Request::Build { session: "drain".into(), want_image: false },
        Request::Shutdown,
    ] {
        burst.push_str(&req.to_json());
        burst.push('\n');
    }
    stream.write_all(burst.as_bytes()).expect("writes");
    stream.flush().expect("flushes");

    let mut reader = BufReader::new(stream);
    let mut next = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads");
        Response::from_json(line.trim_end()).expect("parses")
    };
    assert_eq!(next(), Response::Hello { version: proto::VERSION });
    assert_eq!(next(), Response::Opened { created: true });
    assert_eq!(next(), Response::Ok);
    assert_eq!(next(), Response::Ok);
    assert_eq!(next(), Response::Ok);
    match next() {
        Response::Built { outcome, image } => {
            assert_eq!(outcome.units_compiled, 2);
            assert!(image.is_none());
        }
        other => panic!("expected the drained build, got {other:?}"),
    }
    assert_eq!(next(), Response::Bye);
    handle.join().expect("clean shutdown");
}

/// `knitc lint --connect` semantics: the same racy example produces a
/// byte-identical diagnostic stream over a real socket and through a
/// direct in-process session, and the per-session analyze memo survives
/// the server round-trip — a repeat lint reuses every unit summary, and
/// a one-file edit re-summarizes exactly the unit that reads it.
#[test]
fn lint_over_the_wire_is_byte_identical_and_memoized() {
    let dir = "../../examples/lints";
    let unit = std::fs::read_to_string(format!("{dir}/races.unit")).expect("races.unit");
    let log = std::fs::read_to_string(format!("{dir}/race_log.c")).expect("race_log.c");
    let worker = std::fs::read_to_string(format!("{dir}/race_worker.c")).expect("race_worker.c");
    let mut options = SessionOptions::new("RaceDemo");
    options.jobs = Some(1);

    // the reference: a direct in-process session over the same inputs
    let direct = Engine::new();
    let (h, _) = direct.open_session("direct", &options).expect("opens");
    h.load_units("examples/lints/races.unit", &unit).expect("units parse");
    h.update_source("race_log.c", &log);
    h.update_source("race_worker.c", &worker);
    let local = h.analyze(&knit::LintConfig::new()).expect("analyzes");
    let render = |ds: &[knit::Diagnostic]| ds.iter().map(|d| d.json()).collect::<Vec<_>>();

    // Engine is Arc-shared: keep a clone so the server-side session's
    // stats stay observable after the wire requests.
    let engine = Engine::new();
    let server = Server::bind(engine.clone(), "auto").expect("binds");
    let addr = server.addr().to_string();
    let handle = server.spawn();
    let mut conn = Conn::connect(&addr).expect("connects");
    let sid = || "race".to_string();
    ok(&mut conn, &Request::Open { session: sid(), options: options.clone() });
    ok(
        &mut conn,
        &Request::LoadUnits {
            session: sid(),
            file: "examples/lints/races.unit".into(),
            text: unit.clone(),
        },
    );
    ok(&mut conn, &Request::UpdateSource { session: sid(), path: "race_log.c".into(), text: log });
    ok(
        &mut conn,
        &Request::UpdateSource {
            session: sid(),
            path: "race_worker.c".into(),
            text: worker.clone(),
        },
    );
    let lint = |conn: &mut Conn| match ok(
        conn,
        &Request::Lint { session: sid(), config: proto::LintOptions::default() },
    ) {
        Response::Linted { units_analyzed, warnings, errors, diagnostics } => {
            assert_eq!((units_analyzed, warnings, errors), (2, 4, 0));
            diagnostics
        }
        other => panic!("unexpected lint response {other:?}"),
    };

    let wire = lint(&mut conn);
    assert_eq!(render(&wire), render(&local.diagnostics), "wire lint differs from local");
    assert_eq!(render(&lint(&mut conn)), render(&wire), "repeat lint must be stable");

    let (h, created) = engine.open_session("race", &options).expect("reopens");
    assert!(!created, "must observe the server's session, not a fresh one");
    let stats = h.stats();
    assert_eq!(
        (stats.analyze.runs, stats.analyze.reuses),
        (2, 2),
        "first lint summarizes both units, the repeat reuses both"
    );

    ok(
        &mut conn,
        &Request::UpdateSource {
            session: sid(),
            path: "race_worker.c".into(),
            text: format!("{worker}\n"),
        },
    );
    lint(&mut conn);
    let stats = h.stats();
    assert_eq!(
        (stats.analyze.runs, stats.analyze.reuses),
        (3, 3),
        "a worker edit re-summarizes exactly RaceWorker"
    );

    ok(&mut conn, &Request::Shutdown);
    handle.join().expect("clean shutdown");
}
