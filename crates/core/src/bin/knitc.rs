//! `knitc` — the Knit compiler as a command-line tool.
//!
//! Mirrors the prototype the paper released ("Source and documentation for
//! our Knit prototype is available…"): point it at `.unit` files and a
//! source directory, name a root unit, and it builds the configuration and
//! (optionally) runs it on the simulated machine.
//!
//! ```text
//! knitc --root WebServer --src ./demo demo/webserver.unit
//! knitc --root WebServer --src ./demo --run demo/webserver.unit
//! knitc --root WebServer --src ./demo --no-flatten --no-check ...
//! knitc --root WebServer --src ./demo --watch demo/webserver.unit
//! ```
//!
//! Every `.c`/`.h` file under `--src` (recursively) becomes available to
//! `files { … }` clauses under its path relative to the source directory.
//! Builds run through an incremental [`BuildSession`]; `--watch` polls the
//! input files and rebuilds exactly the invalidated work on every save.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use knit::{
    build_with_cache, BuildOptions, BuildReport, BuildSession, KnitError, LintConfig, LintLevel,
    SourceTree,
};
use machine::Profile;

#[derive(Clone, Copy, PartialEq)]
enum ErrorFormat {
    Human,
    Json,
}

struct Args {
    root: Option<String>,
    src_dirs: Vec<PathBuf>,
    unit_files: Vec<PathBuf>,
    run: bool,
    entry: Option<String>,
    flatten: bool,
    check: bool,
    verbose: bool,
    jobs: Option<usize>,
    cache: bool,
    watch: bool,
    error_format: ErrorFormat,
    lint: bool,
    lint_overrides: Vec<(String, LintLevel)>,
    deny_warnings: bool,
    pgo_suggest: bool,
    profile_gen: Option<PathBuf>,
    profile_use: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: knitc --root <Unit> [--src <dir>]... [--run] [--entry <member>]\n\
         \x20             [--no-flatten] [--no-check] [--jobs <N>] [--cache]\n\
         \x20             [--watch] [--error-format <human|json>]\n\
         \x20             [-v] <file.unit>...\n\
         \x20      knitc lint --root <Unit> [--src <dir>]... [--allow <lint>]\n\
         \x20             [--warn <lint>] [--deny <lint>|warnings]\n\
         \x20             [--error-format <human|json>] <file.unit>...\n\
         \x20      knitc pgo-suggest --root <Unit> [--src <dir>]...\n\
         \x20             [--profile-use <file>] <file.unit>...\n\
         \x20      knitc explain <code>\n\
         \n\
         builds the root unit from the given .unit files, with C sources\n\
         resolved from the --src directories; --run executes the image on\n\
         the simulated machine and prints its console output\n\
         \n\
         --jobs <N>  compile up to N units concurrently (default: all cores;\n\
         \x20            the produced image is identical for every N)\n\
         --cache     rebuild once through a warm compile cache and report\n\
         \x20            the hit rate (demonstrates incremental rebuilds)\n\
         --watch     keep running: poll the .unit and source files and\n\
         \x20            incrementally rebuild whenever one changes\n\
         --error-format <human|json>\n\
         \x20            render build errors as human-readable diagnostics\n\
         \x20            (default) or as one JSON object per line\n\
         --profile-gen <file>\n\
         \x20            run the built image with call-edge profiling on and\n\
         \x20            write the collected profile as JSON (implies --run)\n\
         --profile-use <file>\n\
         \x20            feed a previously collected profile into the linker:\n\
         \x20            hot code is clustered first, cold code moved behind\n\
         \n\
         `knitc lint` runs the cross-unit static analyzer (no build):\n\
         --allow/--warn/--deny <lint>  set a lint's level for this run\n\
         --deny warnings               exit nonzero on any surviving warning\n\
         \n\
         `knitc pgo-suggest` ranks hot cross-instance call edges and\n\
         suggests flatten groups; with --profile-use it reads the given\n\
         profile, otherwise it builds, runs instrumented, and profiles\n\
         \n\
         `knitc explain <code>` describes a diagnostic code (K0001…, K1001…)"
    );
    std::process::exit(2);
}

fn parse_args(argv: Vec<String>) -> Args {
    let mut args = Args {
        root: None,
        src_dirs: Vec::new(),
        unit_files: Vec::new(),
        run: false,
        entry: None,
        flatten: true,
        check: true,
        verbose: false,
        jobs: None,
        cache: false,
        watch: false,
        error_format: ErrorFormat::Human,
        lint: false,
        lint_overrides: Vec::new(),
        deny_warnings: false,
        pgo_suggest: false,
        profile_gen: None,
        profile_use: None,
    };
    let set_format = |args: &mut Args, v: &str| match v {
        "human" => args.error_format = ErrorFormat::Human,
        "json" => args.error_format = ErrorFormat::Json,
        other => {
            eprintln!("knitc: --error-format must be `human` or `json`, got `{other}`");
            usage();
        }
    };
    let mut it = argv.into_iter().peekable();
    if it.peek().map(String::as_str) == Some("lint") {
        args.lint = true;
        it.next();
    } else if it.peek().map(String::as_str) == Some("pgo-suggest") {
        args.pgo_suggest = true;
        it.next();
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--allow" | "--warn" | "--deny" if args.lint => {
                let name = it.next().unwrap_or_else(|| usage());
                if name == "warnings" {
                    if a == "--deny" {
                        args.deny_warnings = true;
                    } else {
                        eprintln!("knitc: `warnings` is only valid with --deny");
                        usage();
                    }
                } else {
                    let level = match a.as_str() {
                        "--allow" => LintLevel::Allow,
                        "--warn" => LintLevel::Warn,
                        _ => LintLevel::Deny,
                    };
                    args.lint_overrides.push((name, level));
                }
            }
            "--root" => args.root = Some(it.next().unwrap_or_else(|| usage())),
            "--src" => args.src_dirs.push(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--entry" => args.entry = Some(it.next().unwrap_or_else(|| usage())),
            "--jobs" => {
                let n = it.next().unwrap_or_else(|| usage());
                match n.parse::<usize>() {
                    Ok(n) if n >= 1 => args.jobs = Some(n),
                    _ => {
                        eprintln!("knitc: --jobs needs a positive integer, got `{n}`");
                        usage();
                    }
                }
            }
            "--error-format" => {
                let v = it.next().unwrap_or_else(|| usage());
                set_format(&mut args, &v);
            }
            other if other.starts_with("--error-format=") => {
                let v = other["--error-format=".len()..].to_string();
                set_format(&mut args, &v);
            }
            "--profile-gen" => {
                args.profile_gen = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--profile-use" => {
                args.profile_use = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            other if other.starts_with("--profile-gen=") => {
                args.profile_gen = Some(PathBuf::from(&other["--profile-gen=".len()..]));
            }
            other if other.starts_with("--profile-use=") => {
                args.profile_use = Some(PathBuf::from(&other["--profile-use=".len()..]));
            }
            "--cache" => args.cache = true,
            "--run" => args.run = true,
            "--watch" => args.watch = true,
            "--no-flatten" => args.flatten = false,
            "--no-check" => args.check = false,
            "-v" | "--verbose" => args.verbose = true,
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("knitc: unknown flag `{other}`");
                usage();
            }
            other => args.unit_files.push(PathBuf::from(other)),
        }
    }
    if args.root.is_none() || args.unit_files.is_empty() {
        usage();
    }
    args
}

/// Recursively load `.c`/`.h` files under `dir` into `tree` (keyed by path
/// relative to `base`), recording each file's on-disk path for `--watch`.
fn load_sources(
    tree: &mut SourceTree,
    base: &Path,
    dir: &Path,
    watched: &mut Vec<(PathBuf, String)>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            load_sources(tree, base, &path, watched)?;
        } else if matches!(path.extension().and_then(|e| e.to_str()), Some("c" | "h")) {
            let rel = path.strip_prefix(base).unwrap_or(&path);
            let rel = rel.to_string_lossy().replace('\\', "/");
            let text = std::fs::read_to_string(&path)?;
            tree.add(rel.clone(), text);
            watched.push((path, rel));
        }
    }
    Ok(())
}

/// Print a build error through the structured diagnostics API.
fn report_error(e: &KnitError, format: ErrorFormat) {
    for d in e.diagnostics() {
        match format {
            ErrorFormat::Human => eprintln!("knitc: {}", d.human()),
            ErrorFormat::Json => eprintln!("{}", d.json()),
        }
    }
}

fn print_report(root: &str, report: &BuildReport, verbose: bool) {
    println!(
        "knitc: built `{}`: {} instances from {} units, {} objects, {} bytes of text ({} jobs)",
        root,
        report.stats.instances,
        report.stats.units_compiled + report.stats.units_reused,
        report.stats.objects,
        report.stats.text_size,
        report.jobs
    );
    if verbose {
        println!("initializer schedule:");
        for s in &report.schedule {
            println!("  {s}");
        }
        if let Some(c) = &report.constraints {
            println!(
                "constraints: {} checked over {} variables ({} annotated units)",
                c.constraints, c.vars, c.annotated_units
            );
        }
        println!("exports:");
        for (port, sym) in &report.exports {
            println!("  {port} -> {sym}");
        }
        println!("phases:");
        for (name, d) in &report.phases {
            println!("  {name:12} {:>9.3} ms", d.as_secs_f64() * 1e3);
        }
        println!(
            "unit compiles ({} hit / {} miss):",
            report.stats.cache_hits, report.stats.cache_misses
        );
        for u in &report.unit_compiles {
            println!(
                "  {:24} {:>9.3} ms  {}",
                u.unit,
                u.duration.as_secs_f64() * 1e3,
                if u.cache_hit { "cached" } else { "compiled" }
            );
        }
    }
}

/// Run the image on the simulated machine, forwarding console output to
/// stdout and the serial port to stderr. With `profiling`, call-edge
/// recording is enabled and the collected [`Profile`] is returned.
fn run_image(report: &BuildReport, profiling: bool) -> Result<(i64, Option<Profile>), ExitCode> {
    let mut m = match machine::Machine::new(report.image.clone()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("knitc: machine: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    m.set_profiling(profiling);
    match m.run_entry() {
        Ok(code) => {
            if !m.console.output.is_empty() {
                print!("{}", m.console.output);
            }
            if !m.serial.output.is_empty() {
                eprint!("{}", m.serial.output);
            }
            println!("knitc: program exited with code {code}");
            Ok((code, profiling.then(|| m.profile())))
        }
        Err(e) => {
            eprintln!("knitc: runtime fault: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Read and parse a `--profile-use` JSON file.
fn load_profile(path: &Path) -> Result<Profile, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("knitc: cannot read profile {}: {e}", path.display());
        ExitCode::FAILURE
    })?;
    Profile::from_json(&text).map_err(|e| {
        eprintln!("knitc: bad profile {}: {e}", path.display());
        ExitCode::FAILURE
    })
}

/// `knitc pgo-suggest`: build, obtain a profile (from `--profile-use` or by
/// running the image instrumented), and print the flatten advisor's report.
fn pgo_suggest_cmd(session: &mut BuildSession, args: &Args) -> ExitCode {
    let report = match session.build() {
        Ok(r) => r,
        Err(e) => {
            report_error(&e, args.error_format);
            return ExitCode::FAILURE;
        }
    };
    let profile = match &args.profile_use {
        Some(path) => match load_profile(path) {
            Ok(p) => p,
            Err(code) => return code,
        },
        None => match run_image(&report, true) {
            Ok((_, p)) => p.expect("profiling was requested"),
            Err(code) => return code,
        },
    };
    print!("{}", knit::pgo::suggest(&report, &profile).render());
    ExitCode::SUCCESS
}

/// `knitc explain <code>`: describe one diagnostic code from the explain
/// registry (errors and lints alike).
fn explain_cmd(code: &str) -> ExitCode {
    match knit::diag::explain(code) {
        Some(e) => {
            if let Some(l) = knit::LINTS.iter().find(|l| l.code == e.code) {
                let level = match l.default_level {
                    LintLevel::Allow => "allow",
                    LintLevel::Warn => "warn",
                    LintLevel::Deny => "deny",
                };
                println!("{}: {} (lint, default {})", e.code, l.name, level);
            } else {
                println!("{}: error", e.code);
            }
            println!("  {}", e.summary);
            println!("  example:");
            for line in e.example.lines() {
                println!("    {line}");
            }
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "knitc: unknown diagnostic code `{code}` \
                 (errors are K0001–K0015, lints K1001–K1005)"
            );
            ExitCode::FAILURE
        }
    }
}

/// `knitc lint`: run the analyzer instead of building, print every
/// diagnostic, and fail on error-severity findings.
fn lint_cmd(session: &mut BuildSession, args: &Args) -> ExitCode {
    let mut config = LintConfig::new();
    config.deny_warnings(args.deny_warnings);
    for (name, level) in &args.lint_overrides {
        if let Err(e) = config.set(name, *level) {
            report_error(&e, args.error_format);
            return ExitCode::FAILURE;
        }
    }
    let report = match session.analyze(&config) {
        Ok(r) => r,
        Err(e) => {
            report_error(&e, args.error_format);
            return ExitCode::FAILURE;
        }
    };
    for d in &report.diagnostics {
        match args.error_format {
            ErrorFormat::Human => eprintln!("knitc: {}", d.human()),
            ErrorFormat::Json => eprintln!("{}", d.json()),
        }
    }
    if args.error_format == ErrorFormat::Human {
        println!(
            "knitc: lint `{}`: {} units analyzed, {} warning{}, {} error{}",
            args.root.as_deref().expect("validated"),
            report.units_analyzed,
            report.warnings(),
            if report.warnings() == 1 { "" } else { "s" },
            report.errors(),
            if report.errors() == 1 { "" } else { "s" },
        );
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn mtime(path: &Path) -> Option<SystemTime> {
    std::fs::metadata(path).and_then(|m| m.modified()).ok()
}

/// Poll the `.unit` files and source files every 300 ms, feed edits into
/// the session, and incrementally rebuild. Runs until interrupted.
fn watch_loop(mut session: BuildSession, args: &Args, sources: Vec<(PathBuf, String)>) -> ExitCode {
    let root = args.root.clone().expect("validated");
    let mut mtimes: BTreeMap<PathBuf, Option<SystemTime>> = BTreeMap::new();
    for f in args.unit_files.iter().chain(sources.iter().map(|(p, _)| p)) {
        mtimes.insert(f.clone(), mtime(f));
    }
    eprintln!("knitc: watching {} files for `{}` (Ctrl-C to stop)", mtimes.len(), root);
    loop {
        std::thread::sleep(Duration::from_millis(300));
        let mut changed = false;
        for f in &args.unit_files {
            let now = mtime(f);
            if mtimes.get(f) == Some(&now) {
                continue;
            }
            mtimes.insert(f.clone(), now);
            match std::fs::read_to_string(f) {
                Ok(text) => {
                    if let Err(e) = session.update_unit(&f.to_string_lossy(), &text) {
                        report_error(&e, args.error_format);
                        continue; // program unchanged (redefine is transactional)
                    }
                    changed = true;
                }
                Err(e) => eprintln!("knitc: cannot read {}: {e}", f.display()),
            }
        }
        for (path, rel) in &sources {
            let now = mtime(path);
            if mtimes.get(path) == Some(&now) {
                continue;
            }
            mtimes.insert(path.clone(), now);
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    session.update_source(rel, &text);
                    changed = true;
                }
                Err(e) => eprintln!("knitc: cannot read {}: {e}", path.display()),
            }
        }
        if !changed {
            continue;
        }
        match session.build() {
            Ok(report) => {
                println!(
                    "knitc: rebuilt `{}`: {} recompiled, {} reused, {} bytes of text",
                    root,
                    report.stats.units_compiled,
                    report.stats.units_reused,
                    report.stats.text_size
                );
                if args.verbose {
                    print_report(&root, &report, true);
                }
                if args.run {
                    let _ = run_image(&report, false);
                }
            }
            Err(e) => report_error(&e, args.error_format),
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("explain") {
        return match argv.get(1) {
            Some(code) if argv.len() == 2 => explain_cmd(code),
            _ => usage(),
        };
    }
    let args = parse_args(argv);

    let mut opts =
        BuildOptions::new(args.root.clone().expect("validated"), machine::runtime_symbols());
    opts.entry = args.entry.clone();
    opts.flatten = args.flatten;
    opts.check_constraints = args.check;
    if let Some(jobs) = args.jobs {
        opts.jobs = jobs;
    }
    if !args.pgo_suggest {
        if let Some(path) = &args.profile_use {
            match load_profile(path) {
                Ok(p) => opts.profile = Some(Arc::new(p.layout_profile())),
                Err(code) => return code,
            }
        }
    }

    let mut session = BuildSession::new(opts);
    for f in &args.unit_files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("knitc: cannot read {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = session.load_units(&f.to_string_lossy(), &text) {
            report_error(&e, args.error_format);
            return ExitCode::FAILURE;
        }
    }

    let mut sources: Vec<(PathBuf, String)> = Vec::new();
    for dir in &args.src_dirs {
        let mut tree = SourceTree::new();
        if let Err(e) = load_sources(&mut tree, dir, dir, &mut sources) {
            eprintln!("knitc: reading sources under {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (path, text) in tree.iter() {
            session.update_source(path, text);
        }
    }

    if args.lint {
        return lint_cmd(&mut session, &args);
    }
    if args.pgo_suggest {
        return pgo_suggest_cmd(&mut session, &args);
    }

    let cold = match session.build() {
        Ok(r) => r,
        Err(e) => {
            report_error(&e, args.error_format);
            return ExitCode::FAILURE;
        }
    };
    let report = if args.cache {
        // Rebuild through the now-warm compile cache (a fresh one-shot
        // build, deliberately bypassing the session's memo): every unit
        // whose content is unchanged (here: all of them) skips the C
        // compiler.
        let warm = match build_with_cache(
            session.program(),
            session.tree(),
            session.options(),
            session.cache(),
        ) {
            Ok(r) => r,
            Err(e) => {
                report_error(&e, args.error_format);
                return ExitCode::FAILURE;
            }
        };
        let compile_ms = |r: &BuildReport| {
            r.phases
                .iter()
                .find(|(n, _)| *n == "compile")
                .map(|(_, d)| d.as_secs_f64() * 1e3)
                .unwrap_or(0.0)
        };
        println!(
            "knitc: warm rebuild: {} cache hits, {} recompiles; compile phase {:.3} ms (cold: {:.3} ms)",
            warm.stats.cache_hits,
            warm.stats.cache_misses,
            compile_ms(&warm),
            compile_ms(&cold)
        );
        if warm.image != cold.image {
            eprintln!("knitc: internal error: warm rebuild produced a different image");
            return ExitCode::FAILURE;
        }
        warm
    } else {
        cold
    };

    print_report(args.root.as_deref().expect("validated"), &report, args.verbose);

    if let Some(path) = &args.profile_gen {
        match run_image(&report, true) {
            Ok((code, profile)) => {
                let profile = profile.expect("profiling was requested");
                if let Err(e) = std::fs::write(path, profile.to_json()) {
                    eprintln!("knitc: cannot write profile {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "knitc: wrote profile to {} ({} edges, {} calls)",
                    path.display(),
                    profile.edges.len(),
                    profile.total_calls()
                );
                if code != 0 {
                    return ExitCode::from((code & 0xff) as u8);
                }
            }
            Err(code) => return code,
        }
    } else if args.run {
        match run_image(&report, false) {
            Ok((code, _)) => {
                if code != 0 {
                    return ExitCode::from((code & 0xff) as u8);
                }
            }
            Err(code) => return code,
        }
    }

    if args.watch {
        return watch_loop(session, &args, sources);
    }
    ExitCode::SUCCESS
}
