//! `knitc` — the Knit compiler as a command-line tool.
//!
//! Mirrors the prototype the paper released ("Source and documentation for
//! our Knit prototype is available…"): point it at `.unit` files and a
//! source directory, name a root unit, and it builds the configuration and
//! (optionally) runs it on the simulated machine.
//!
//! ```text
//! knitc --root WebServer --src ./demo demo/webserver.unit
//! knitc --root WebServer --src ./demo --run demo/webserver.unit
//! knitc --root WebServer --src ./demo --no-flatten --no-check ...
//! knitc --root WebServer --src ./demo --watch demo/webserver.unit
//! knitc serve                      # the composition server
//! knitc --connect unix:/tmp/knit.sock --root WebServer ...
//! ```
//!
//! Every `.c`/`.h` file under `--src` (recursively) becomes available to
//! `files { … }` clauses under its path relative to the source directory.
//!
//! **Every subcommand is a protocol client.** Each invocation reduces the
//! command line to [`proto::Request`]s and renders the
//! [`proto::Response`]s; the requests are answered either by an in-process
//! [`Engine`] (the default) or by a running `knitc serve` daemon
//! (`--connect <addr>`) — same requests, same handler code, byte-identical
//! images. `--watch` polls only the paths the session's dependency ledger
//! says the build actually read, and debounces editor save-storms into one
//! rebuild.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, SystemTime};

use knit::proto::{self, BuildOutcome, LintOptions, Request, Response, SessionOptions};
use knit::server::{Conn, Engine, Server};
use knit::{Diagnostic, LintLevel, SourceTree};
use machine::Profile;

#[derive(Clone, Copy, PartialEq)]
enum ErrorFormat {
    Human,
    Json,
}

struct Args {
    root: Option<String>,
    src_dirs: Vec<PathBuf>,
    unit_files: Vec<PathBuf>,
    run: bool,
    entry: Option<String>,
    flatten: bool,
    check: bool,
    verbose: bool,
    jobs: Option<usize>,
    cache: bool,
    watch: bool,
    error_format: ErrorFormat,
    lint: bool,
    lint_overrides: Vec<(String, LintLevel)>,
    deny_warnings: bool,
    pgo_suggest: bool,
    profile_gen: Option<PathBuf>,
    profile_use: Option<PathBuf>,
    connect: Option<String>,
    session: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: knitc --root <Unit> [--src <dir>]... [--run] [--entry <member>]\n\
         \x20             [--no-flatten] [--no-check] [--jobs <N>] [--cache]\n\
         \x20             [--watch] [--error-format <human|json>]\n\
         \x20             [--connect <addr>] [--session <name>]\n\
         \x20             [-v] <file.unit>...\n\
         \x20      knitc lint --root <Unit> [--src <dir>]... [--allow <lint>]\n\
         \x20             [--warn <lint>] [--deny <lint>|warnings]\n\
         \x20             [--error-format <human|json>] <file.unit>...\n\
         \x20      knitc pgo-suggest --root <Unit> [--src <dir>]...\n\
         \x20             [--profile-use <file>] <file.unit>...\n\
         \x20      knitc serve [--socket <unix:path|tcp:port|auto>] [--once]\n\
         \x20      knitc explain <code>\n\
         \n\
         builds the root unit from the given .unit files, with C sources\n\
         resolved from the --src directories; --run executes the image on\n\
         the simulated machine and prints its console output\n\
         \n\
         --jobs <N>  compile up to N units concurrently (default: all cores;\n\
         \x20            the produced image is identical for every N)\n\
         --cache     rebuild once through a warm compile cache and report\n\
         \x20            the hit rate (demonstrates incremental rebuilds)\n\
         --watch     keep running: poll the .unit files and exactly the\n\
         \x20            sources the last build read (the dependency ledger)\n\
         \x20            and incrementally rebuild whenever one changes\n\
         --error-format <human|json>\n\
         \x20            render build errors as human-readable diagnostics\n\
         \x20            (default) or as one JSON object per line\n\
         --connect <addr>\n\
         \x20            send all requests to a running `knitc serve` at\n\
         \x20            unix:<path> or tcp:<host>:<port> instead of\n\
         \x20            building in-process (images are byte-identical)\n\
         --session <name>\n\
         \x20            the server-side session to use (default: the root\n\
         \x20            unit's name)\n\
         --profile-gen <file>\n\
         \x20            run the built image with call-edge profiling on and\n\
         \x20            write the collected profile as JSON (implies --run)\n\
         --profile-use <file>\n\
         \x20            feed a previously collected profile into the linker:\n\
         \x20            hot code is clustered first, cold code moved behind\n\
         \n\
         `knitc lint` runs the cross-unit static analyzer (no build):\n\
         --allow/--warn/--deny <lint>  set a lint's level for this run\n\
         --deny warnings               exit nonzero on any surviving warning\n\
         \n\
         `knitc pgo-suggest` ranks hot cross-instance call edges and\n\
         suggests flatten groups; with --profile-use it reads the given\n\
         profile, otherwise it builds, runs instrumented, and profiles\n\
         \n\
         `knitc serve` runs the composition server: a daemon owning many\n\
         named build sessions, deduping compiles across clients through a\n\
         shared cache; --once runs a self-test build through a loopback\n\
         connection, verifies byte-identity against a direct session, and\n\
         exits (for CI)\n\
         \n\
         `knitc explain <code>` describes a diagnostic code (K0001…, K1001…)"
    );
    std::process::exit(2);
}

fn parse_args(argv: Vec<String>) -> Args {
    let mut args = Args {
        root: None,
        src_dirs: Vec::new(),
        unit_files: Vec::new(),
        run: false,
        entry: None,
        flatten: true,
        check: true,
        verbose: false,
        jobs: None,
        cache: false,
        watch: false,
        error_format: ErrorFormat::Human,
        lint: false,
        lint_overrides: Vec::new(),
        deny_warnings: false,
        pgo_suggest: false,
        profile_gen: None,
        profile_use: None,
        connect: None,
        session: None,
    };
    let set_format = |args: &mut Args, v: &str| match v {
        "human" => args.error_format = ErrorFormat::Human,
        "json" => args.error_format = ErrorFormat::Json,
        other => {
            eprintln!("knitc: --error-format must be `human` or `json`, got `{other}`");
            usage();
        }
    };
    let mut it = argv.into_iter().peekable();
    if it.peek().map(String::as_str) == Some("lint") {
        args.lint = true;
        it.next();
    } else if it.peek().map(String::as_str) == Some("pgo-suggest") {
        args.pgo_suggest = true;
        it.next();
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--allow" | "--warn" | "--deny" if args.lint => {
                let name = it.next().unwrap_or_else(|| usage());
                if name == "warnings" {
                    if a == "--deny" {
                        args.deny_warnings = true;
                    } else {
                        eprintln!("knitc: `warnings` is only valid with --deny");
                        usage();
                    }
                } else {
                    let level = match a.as_str() {
                        "--allow" => LintLevel::Allow,
                        "--warn" => LintLevel::Warn,
                        _ => LintLevel::Deny,
                    };
                    args.lint_overrides.push((name, level));
                }
            }
            "--root" => args.root = Some(it.next().unwrap_or_else(|| usage())),
            "--src" => args.src_dirs.push(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--entry" => args.entry = Some(it.next().unwrap_or_else(|| usage())),
            "--jobs" => {
                let n = it.next().unwrap_or_else(|| usage());
                match n.parse::<usize>() {
                    Ok(n) if n >= 1 => args.jobs = Some(n),
                    _ => {
                        eprintln!("knitc: --jobs needs a positive integer, got `{n}`");
                        usage();
                    }
                }
            }
            "--error-format" => {
                let v = it.next().unwrap_or_else(|| usage());
                set_format(&mut args, &v);
            }
            other if other.starts_with("--error-format=") => {
                let v = other["--error-format=".len()..].to_string();
                set_format(&mut args, &v);
            }
            "--profile-gen" => {
                args.profile_gen = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--profile-use" => {
                args.profile_use = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            other if other.starts_with("--profile-gen=") => {
                args.profile_gen = Some(PathBuf::from(&other["--profile-gen=".len()..]));
            }
            other if other.starts_with("--profile-use=") => {
                args.profile_use = Some(PathBuf::from(&other["--profile-use=".len()..]));
            }
            "--connect" => args.connect = Some(it.next().unwrap_or_else(|| usage())),
            "--session" => args.session = Some(it.next().unwrap_or_else(|| usage())),
            "--cache" => args.cache = true,
            "--run" => args.run = true,
            "--watch" => args.watch = true,
            "--no-flatten" => args.flatten = false,
            "--no-check" => args.check = false,
            "-v" | "--verbose" => args.verbose = true,
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("knitc: unknown flag `{other}`");
                usage();
            }
            other => args.unit_files.push(PathBuf::from(other)),
        }
    }
    if args.root.is_none() || args.unit_files.is_empty() {
        usage();
    }
    args
}

// ---------------------------------------------------------------------------
// the transport: one call path, in-process or over the socket
// ---------------------------------------------------------------------------

/// Where requests go: an in-process [`Engine`] (the default) or a [`Conn`]
/// to a running `knitc serve`. Every subcommand talks *only* through
/// [`Transport::call`], so both paths exercise identical handler code.
enum Transport {
    Local(Engine),
    Remote(Conn),
}

impl Transport {
    fn open(args: &Args) -> Result<Transport, ExitCode> {
        match &args.connect {
            None => Ok(Transport::Local(Engine::new())),
            Some(addr) => match Conn::connect(addr) {
                Ok(conn) => Ok(Transport::Remote(conn)),
                Err(e) => {
                    eprintln!("knitc: cannot connect to {addr}: {e}");
                    Err(ExitCode::FAILURE)
                }
            },
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ExitCode> {
        match self {
            Transport::Local(engine) => Ok(engine.handle(req)),
            Transport::Remote(conn) => conn.call(req).map_err(|e| {
                eprintln!("knitc: server connection lost: {e}");
                ExitCode::FAILURE
            }),
        }
    }
}

/// Print a failed response's diagnostics (the same shapes as
/// `--error-format=json`) and fail. Non-error responses are protocol bugs.
fn expect_ok(resp: Response, format: ErrorFormat) -> Result<Response, ExitCode> {
    match resp {
        Response::Error { diagnostics } => {
            print_diags(&diagnostics, format);
            Err(ExitCode::FAILURE)
        }
        other => Ok(other),
    }
}

fn print_diags(diags: &[Diagnostic], format: ErrorFormat) {
    for d in diags {
        match format {
            ErrorFormat::Human => eprintln!("knitc: {}", d.human()),
            ErrorFormat::Json => eprintln!("{}", d.json()),
        }
    }
}

fn print_report(root: &str, outcome: &BuildOutcome, verbose: bool) {
    println!(
        "knitc: built `{}`: {} instances from {} units, {} objects, {} bytes of text ({} jobs)",
        root,
        outcome.instances,
        outcome.units_compiled + outcome.units_reused,
        outcome.objects,
        outcome.text_size,
        outcome.jobs
    );
    if verbose {
        println!("initializer schedule:");
        for s in &outcome.schedule {
            println!("  {s}");
        }
        if let Some((constraints, vars, annotated)) = outcome.constraints {
            println!(
                "constraints: {constraints} checked over {vars} variables ({annotated} annotated units)"
            );
        }
        println!("exports:");
        for (port, sym) in &outcome.exports {
            println!("  {port} -> {sym}");
        }
        println!("phases:");
        for (name, us) in &outcome.phases {
            println!("  {name:12} {:>9.3} ms", *us as f64 / 1e3);
        }
        println!("unit compiles ({} hit / {} miss):", outcome.cache_hits, outcome.cache_misses);
        for (unit, us, reused) in &outcome.unit_compiles {
            println!(
                "  {:24} {:>9.3} ms  {}",
                unit,
                *us as f64 / 1e3,
                if *reused { "cached" } else { "compiled" }
            );
        }
    }
}

/// Run the image on the simulated machine, forwarding console output to
/// stdout and the serial port to stderr. With `profiling`, call-edge
/// recording is enabled and the collected [`Profile`] is returned.
fn run_image(image: &cobj::Image, profiling: bool) -> Result<(i64, Option<Profile>), ExitCode> {
    let mut m = match machine::Machine::new(image.clone()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("knitc: machine: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    m.set_profiling(profiling);
    match m.run_entry() {
        Ok(code) => {
            if !m.console.output.is_empty() {
                print!("{}", m.console.output);
            }
            if !m.serial.output.is_empty() {
                eprint!("{}", m.serial.output);
            }
            println!("knitc: program exited with code {code}");
            Ok((code, profiling.then(|| m.profile())))
        }
        Err(e) => {
            eprintln!("knitc: runtime fault: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Decode a wire image from a `built` response, or fail loudly — the
/// commands that need to run or compare images always request one.
fn expect_image(image: Option<String>) -> Result<cobj::Image, ExitCode> {
    let hex = image.ok_or_else(|| {
        eprintln!("knitc: internal error: server omitted the requested image");
        ExitCode::FAILURE
    })?;
    proto::decode_image(&hex).map_err(|e| {
        eprintln!("knitc: internal error: bad wire image: {e}");
        ExitCode::FAILURE
    })
}

/// Read and parse a `--profile-use` JSON file.
fn load_profile(path: &Path) -> Result<Profile, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("knitc: cannot read profile {}: {e}", path.display());
        ExitCode::FAILURE
    })?;
    Profile::from_json(&text).map_err(|e| {
        eprintln!("knitc: bad profile {}: {e}", path.display());
        ExitCode::FAILURE
    })
}

/// Recursively load `.c`/`.h` files under `dir` into `tree` (keyed by path
/// relative to `base`), recording each file's on-disk path for `--watch`.
fn load_sources(
    tree: &mut SourceTree,
    base: &Path,
    dir: &Path,
    watched: &mut Vec<(PathBuf, String)>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            load_sources(tree, base, &path, watched)?;
        } else if matches!(path.extension().and_then(|e| e.to_str()), Some("c" | "h")) {
            let rel = path.strip_prefix(base).unwrap_or(&path);
            let rel = rel.to_string_lossy().replace('\\', "/");
            let text = std::fs::read_to_string(&path)?;
            tree.add(rel.clone(), text);
            watched.push((path, rel));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// subcommands (thin protocol clients)
// ---------------------------------------------------------------------------

/// `knitc explain <code>` — routed through the same protocol as everything
/// else (an in-process engine; there is no session to address).
fn explain_cmd(code: &str) -> ExitCode {
    let engine = Engine::new();
    match engine.handle(&Request::Explain { code: code.to_string() }) {
        Response::Explained { code, summary, example, lint } => {
            match lint {
                Some((name, level)) => {
                    let level = match level {
                        LintLevel::Allow => "allow",
                        LintLevel::Warn => "warn",
                        LintLevel::Deny => "deny",
                    };
                    println!("{code}: {name} (lint, default {level})");
                }
                None => println!("{code}: error"),
            }
            println!("  {summary}");
            println!("  example:");
            for line in example.lines() {
                println!("    {line}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "knitc: unknown diagnostic code `{code}` \
                 (errors are K0001–K0017, lints K1001–K1009)"
            );
            ExitCode::FAILURE
        }
    }
}

/// `knitc lint`: request the analyzer's diagnostics, print them, and fail
/// on error-severity findings.
fn lint_cmd(transport: &mut Transport, session: &str, args: &Args) -> ExitCode {
    let req = Request::Lint {
        session: session.to_string(),
        config: LintOptions {
            overrides: args.lint_overrides.clone(),
            deny_warnings: args.deny_warnings,
        },
    };
    let resp = match transport.call(&req) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let (units_analyzed, warnings, errors, diagnostics) = match resp {
        Response::Linted { units_analyzed, warnings, errors, diagnostics } => {
            (units_analyzed, warnings, errors, diagnostics)
        }
        Response::Error { diagnostics } => {
            print_diags(&diagnostics, args.error_format);
            return ExitCode::FAILURE;
        }
        other => {
            eprintln!("knitc: internal error: unexpected lint response {other:?}");
            return ExitCode::FAILURE;
        }
    };
    print_diags(&diagnostics, args.error_format);
    if args.error_format == ErrorFormat::Human {
        println!(
            "knitc: lint `{}`: {} units analyzed, {} warning{}, {} error{}",
            args.root.as_deref().expect("validated"),
            units_analyzed,
            warnings,
            if warnings == 1 { "" } else { "s" },
            errors,
            if errors == 1 { "" } else { "s" },
        );
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `knitc pgo-suggest`: build, obtain a profile (from `--profile-use` or by
/// running the image instrumented), and print the flatten advisor's report.
fn pgo_suggest_cmd(transport: &mut Transport, session: &str, args: &Args) -> ExitCode {
    let need_run = args.profile_use.is_none();
    let resp = match transport
        .call(&Request::Build { session: session.to_string(), want_image: need_run })
    {
        Ok(r) => r,
        Err(code) => return code,
    };
    let image = match expect_ok(resp, args.error_format) {
        Ok(Response::Built { image, .. }) => image,
        Ok(other) => {
            eprintln!("knitc: internal error: unexpected build response {other:?}");
            return ExitCode::FAILURE;
        }
        Err(code) => return code,
    };
    let profile = match &args.profile_use {
        Some(path) => match load_profile(path) {
            Ok(p) => p,
            Err(code) => return code,
        },
        None => {
            let image = match expect_image(image) {
                Ok(i) => i,
                Err(code) => return code,
            };
            match run_image(&image, true) {
                Ok((_, p)) => p.expect("profiling was requested"),
                Err(code) => return code,
            }
        }
    };
    let resp = match transport
        .call(&Request::PgoSuggest { session: session.to_string(), profile: profile.to_json() })
    {
        Ok(r) => r,
        Err(code) => return code,
    };
    match expect_ok(resp, args.error_format) {
        Ok(Response::Suggested { text }) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(other) => {
            eprintln!("knitc: internal error: unexpected pgo response {other:?}");
            ExitCode::FAILURE
        }
        Err(code) => code,
    }
}

fn mtime(path: &Path) -> Option<SystemTime> {
    std::fs::metadata(path).and_then(|m| m.modified()).ok()
}

/// One file the watch loop polls: a `.unit` file (`rel == None`) or a C
/// source/header keyed into the source tree at `rel`.
struct WatchEntry {
    path: PathBuf,
    rel: Option<String>,
    mtime: Option<SystemTime>,
}

/// Compute the current watch set from the last build's dependency ledger:
/// all `.unit` files, plus — for each ledger path — every candidate
/// location under the `--src` roots. Ledger *misses* are watched too, so
/// creating a previously-missing header triggers a rebuild.
fn watch_set(args: &Args, watched: &[String]) -> Vec<WatchEntry> {
    let mut entries: Vec<WatchEntry> = Vec::new();
    for f in &args.unit_files {
        entries.push(WatchEntry { path: f.clone(), rel: None, mtime: mtime(f) });
    }
    let mut seen = BTreeSet::new();
    for rel in watched {
        for dir in &args.src_dirs {
            let path = dir.join(rel);
            if seen.insert(path.clone()) {
                entries.push(WatchEntry { mtime: mtime(&path), path, rel: Some(rel.clone()) });
            }
        }
    }
    entries
}

/// Scan for changed files, feeding edits into the session over the
/// transport. Returns whether anything changed (or `Err` on a dead
/// connection).
fn scan_edits(
    transport: &mut Transport,
    session: &str,
    args: &Args,
    entries: &mut [WatchEntry],
) -> Result<bool, ExitCode> {
    let mut changed = false;
    for e in entries.iter_mut() {
        let now = mtime(&e.path);
        if e.mtime == now {
            continue;
        }
        e.mtime = now;
        let text = match std::fs::read_to_string(&e.path) {
            Ok(t) => t,
            Err(err) => {
                if e.path.exists() {
                    eprintln!("knitc: cannot read {}: {err}", e.path.display());
                }
                continue;
            }
        };
        let req = match &e.rel {
            None => Request::UpdateUnit {
                session: session.to_string(),
                file: e.path.to_string_lossy().into_owned(),
                text,
            },
            Some(rel) => {
                Request::UpdateSource { session: session.to_string(), path: rel.clone(), text }
            }
        };
        match transport.call(&req)? {
            Response::Ok => changed = true,
            Response::Error { diagnostics } => {
                // A broken .unit edit: program unchanged (redefine is
                // transactional); report and keep watching.
                print_diags(&diagnostics, args.error_format);
            }
            other => {
                eprintln!("knitc: internal error: unexpected edit response {other:?}");
            }
        }
    }
    Ok(changed)
}

/// Poll the `.unit` files and the ledger-derived source set, feed edits
/// into the session, and incrementally rebuild. Edit bursts (editor save
/// storms) are debounced: scanning continues at a short interval until a
/// scan comes back quiet, then one rebuild covers the whole burst. Runs
/// until interrupted.
fn watch_loop(
    transport: &mut Transport,
    session: &str,
    args: &Args,
    initial_watched: &[String],
) -> ExitCode {
    const POLL: Duration = Duration::from_millis(300);
    const DEBOUNCE: Duration = Duration::from_millis(50);
    let root = args.root.clone().expect("validated");
    let mut entries = watch_set(args, initial_watched);
    eprintln!("knitc: watching {} files for `{}` (Ctrl-C to stop)", entries.len(), root);
    loop {
        std::thread::sleep(POLL);
        let mut changed = match scan_edits(transport, session, args, &mut entries) {
            Ok(c) => c,
            Err(code) => return code,
        };
        if !changed {
            continue;
        }
        // Debounce: keep scanning until the burst settles, then rebuild
        // once for the whole batch.
        while changed {
            std::thread::sleep(DEBOUNCE);
            changed = match scan_edits(transport, session, args, &mut entries) {
                Ok(c) => c,
                Err(code) => return code,
            };
        }
        let resp = match transport
            .call(&Request::Build { session: session.to_string(), want_image: args.run })
        {
            Ok(r) => r,
            Err(code) => return code,
        };
        match resp {
            Response::Built { outcome, image } => {
                println!(
                    "knitc: rebuilt `{}`: {} recompiled, {} reused, {} bytes of text",
                    root, outcome.units_compiled, outcome.units_reused, outcome.text_size
                );
                if args.verbose {
                    print_report(&root, &outcome, true);
                }
                if args.run {
                    match expect_image(image) {
                        Ok(image) => {
                            let _ = run_image(&image, false);
                        }
                        Err(code) => return code,
                    }
                }
                // Re-derive the watch set from this build's ledger: new
                // includes start being polled, dropped ones stop.
                entries = watch_set(args, &outcome.watched);
            }
            Response::Error { diagnostics } => print_diags(&diagnostics, args.error_format),
            other => {
                eprintln!("knitc: internal error: unexpected build response {other:?}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// knitc serve
// ---------------------------------------------------------------------------

/// The tiny built-in program `knitc serve --once` self-tests with.
const SELFTEST_UNIT: &str = r#"
    bundletype Main = { main }
    unit SelfTest = { exports [ main : Main ]; files { "selftest.c" }; }
"#;
const SELFTEST_C: &str = "int main() { return 42; }";

/// `knitc serve --once`: bind, build a built-in program through a real
/// loopback connection, verify the wire image is byte-identical to a
/// direct in-process session, check watch events arrive in order, shut
/// down. Exit code reports the verdict — CI needs no background-process
/// management.
fn serve_once(server: Server) -> ExitCode {
    let addr = server.addr().to_string();
    let handle = server.spawn();
    let verdict = (|| -> Result<(), String> {
        let mut conn = Conn::connect(&addr).map_err(|e| format!("connect: {e}"))?;
        let mut options = SessionOptions::new("SelfTest");
        options.jobs = Some(1);
        let call = |conn: &mut Conn, req: &Request| -> Result<Response, String> {
            match conn.call(req).map_err(|e| format!("call: {e}"))? {
                Response::Error { diagnostics } => Err(format!(
                    "server error: {}",
                    diagnostics.first().map(|d| d.human()).unwrap_or_default()
                )),
                resp => Ok(resp),
            }
        };
        call(&mut conn, &Request::Open { session: "selftest".into(), options: options.clone() })?;
        call(
            &mut conn,
            &Request::LoadUnits {
                session: "selftest".into(),
                file: "selftest.unit".into(),
                text: SELFTEST_UNIT.into(),
            },
        )?;
        call(
            &mut conn,
            &Request::UpdateSource {
                session: "selftest".into(),
                path: "selftest.c".into(),
                text: SELFTEST_C.into(),
            },
        )?;
        call(&mut conn, &Request::Watch { session: "selftest".into() })?;
        let built =
            call(&mut conn, &Request::Build { session: "selftest".into(), want_image: true })?;
        let Response::Built { outcome, image } = built else {
            return Err(format!("unexpected build response {built:?}"));
        };
        let wire_image = proto::decode_image(&image.ok_or("server omitted image")?)?;

        // The safety net: the same request stream through a direct
        // session must produce the byte-identical image.
        let engine = Engine::new();
        let (direct, _) = engine.open_session("direct", &options).map_err(|r| format!("{r:?}"))?;
        direct.load_units("selftest.unit", SELFTEST_UNIT).map_err(|e| e.to_string())?;
        direct.update_source("selftest.c", SELFTEST_C);
        let direct_report = direct.build().map_err(|e| e.to_string())?;
        if direct_report.image != wire_image {
            return Err("server image differs from direct session image".into());
        }
        if proto::image_hash(&direct_report.image) != outcome.image_hash {
            return Err("image hash on the wire differs from the local hash".into());
        }

        // Watch events: an edit + rebuild must stream seq 2 (seq 1 was
        // the cold build above, emitted after our subscription).
        call(
            &mut conn,
            &Request::UpdateSource {
                session: "selftest".into(),
                path: "selftest.c".into(),
                text: "int main() { return 7; }".into(),
            },
        )?;
        call(&mut conn, &Request::Build { session: "selftest".into(), want_image: false })?;
        let mut seqs = Vec::new();
        while let Some(e) = conn.poll_event() {
            seqs.push(e.seq);
        }
        if seqs != vec![1, 2] {
            return Err(format!("expected watch events [1, 2], got {seqs:?}"));
        }
        match call(&mut conn, &Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(format!("unexpected shutdown response {other:?}")),
        }
    })();
    let joined = handle.join();
    match (verdict, joined) {
        (Ok(()), Ok(())) => {
            println!(
                "knitc: serve self-test passed (image byte-identical, watch events in order, clean shutdown)"
            );
            ExitCode::SUCCESS
        }
        (Err(e), _) => {
            eprintln!("knitc: serve self-test failed: {e}");
            ExitCode::FAILURE
        }
        (_, Err(e)) => {
            eprintln!("knitc: serve self-test failed: server did not shut down cleanly: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `knitc serve [--socket <spec>] [--once]`.
fn serve_cmd(argv: &[String]) -> ExitCode {
    let mut socket = "auto".to_string();
    let mut once = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => match it.next() {
                Some(s) => socket = s.clone(),
                None => usage(),
            },
            other if other.starts_with("--socket=") => {
                socket = other["--socket=".len()..].to_string();
            }
            "--once" => once = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("knitc: serve: unknown argument `{other}`");
                usage();
            }
        }
    }
    let server = match Server::bind(Engine::new(), &socket) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("knitc: cannot bind {socket}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if once {
        return serve_once(server);
    }
    println!("knitc: serving on {} (protocol v{})", server.addr(), proto::VERSION);
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("knitc: server error: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// main
// ---------------------------------------------------------------------------

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("explain") {
        return match argv.get(1) {
            Some(code) if argv.len() == 2 => explain_cmd(code),
            _ => usage(),
        };
    }
    if argv.first().map(String::as_str) == Some("serve") {
        return serve_cmd(&argv[1..]);
    }
    let args = parse_args(argv);
    let root = args.root.clone().expect("validated");
    let session = args.session.clone().unwrap_or_else(|| root.clone());

    // Reduce the command line to session options. The layout profile is
    // validated client-side (for the conventional error message) and
    // shipped as its canonical JSON.
    let mut options = SessionOptions::new(root.clone());
    options.entry = args.entry.clone();
    options.flatten = args.flatten;
    options.check_constraints = args.check;
    options.jobs = args.jobs;
    if !args.pgo_suggest {
        if let Some(path) = &args.profile_use {
            match load_profile(path) {
                Ok(p) => options.profile = Some(p.to_json()),
                Err(code) => return code,
            }
        }
    }

    let mut transport = match Transport::open(&args) {
        Ok(t) => t,
        Err(code) => return code,
    };

    // Open (or reconfigure) the session, then feed it the .unit files and
    // sources. A fresh session gets `load_units` (duplicate declarations
    // across files are K0002 errors, as in a one-shot build); an existing
    // server-side session gets `update_unit` (transactional redefine).
    let created = match transport
        .call(&Request::Open { session: session.clone(), options: options.clone() })
        .and_then(|r| expect_ok(r, args.error_format))
    {
        Ok(Response::Opened { created }) => created,
        Ok(other) => {
            eprintln!("knitc: internal error: unexpected open response {other:?}");
            return ExitCode::FAILURE;
        }
        Err(code) => return code,
    };
    for f in &args.unit_files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("knitc: cannot read {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        };
        let file = f.to_string_lossy().into_owned();
        let req = if created {
            Request::LoadUnits { session: session.clone(), file, text }
        } else {
            Request::UpdateUnit { session: session.clone(), file, text }
        };
        match transport.call(&req).and_then(|r| expect_ok(r, args.error_format)) {
            Ok(_) => {}
            Err(code) => return code,
        }
    }
    for dir in &args.src_dirs {
        let mut tree = SourceTree::new();
        if let Err(e) = load_sources(&mut tree, dir, dir, &mut Vec::new()) {
            eprintln!("knitc: reading sources under {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (path, text) in tree.iter() {
            let req = Request::UpdateSource {
                session: session.clone(),
                path: path.to_string(),
                text: text.to_string(),
            };
            match transport.call(&req).and_then(|r| expect_ok(r, args.error_format)) {
                Ok(_) => {}
                Err(code) => return code,
            }
        }
    }

    if args.lint {
        return lint_cmd(&mut transport, &session, &args);
    }
    if args.pgo_suggest {
        return pgo_suggest_cmd(&mut transport, &session, &args);
    }

    // The build itself. The image rides back over the wire only when
    // something client-side needs its bytes.
    let want_image = args.run || args.profile_gen.is_some();
    let (cold, cold_image) = match transport
        .call(&Request::Build { session: session.clone(), want_image })
        .and_then(|r| expect_ok(r, args.error_format))
    {
        Ok(Response::Built { outcome, image }) => (outcome, image),
        Ok(other) => {
            eprintln!("knitc: internal error: unexpected build response {other:?}");
            return ExitCode::FAILURE;
        }
        Err(code) => return code,
    };

    let outcome = if args.cache {
        // Rebuild in a *second* session sharing the server's compile
        // cache: every unit whose content is unchanged (here: all of
        // them) is served from the cache, deduped across sessions —
        // the same mechanism that dedupes across concurrent clients.
        let warm_session = format!("{session}#warm");
        let ok = transport
            .call(&Request::Open { session: warm_session.clone(), options: options.clone() })
            .and_then(|r| expect_ok(r, args.error_format))
            .and_then(|_| {
                for f in &args.unit_files {
                    let text = std::fs::read_to_string(f).map_err(|e| {
                        eprintln!("knitc: cannot read {}: {e}", f.display());
                        ExitCode::FAILURE
                    })?;
                    let r = transport.call(&Request::UpdateUnit {
                        session: warm_session.clone(),
                        file: f.to_string_lossy().into_owned(),
                        text,
                    })?;
                    expect_ok(r, args.error_format)?;
                }
                Ok(())
            });
        if let Err(code) = ok {
            return code;
        }
        for dir in &args.src_dirs {
            let mut tree = SourceTree::new();
            let mut ignored = Vec::new();
            if load_sources(&mut tree, dir, dir, &mut ignored).is_err() {
                continue;
            }
            for (path, text) in tree.iter() {
                let r = transport.call(&Request::UpdateSource {
                    session: warm_session.clone(),
                    path: path.to_string(),
                    text: text.to_string(),
                });
                match r.and_then(|r| expect_ok(r, args.error_format)) {
                    Ok(_) => {}
                    Err(code) => return code,
                }
            }
        }
        let warm = match transport
            .call(&Request::Build { session: warm_session.clone(), want_image: false })
            .and_then(|r| expect_ok(r, args.error_format))
        {
            Ok(Response::Built { outcome, .. }) => outcome,
            Ok(other) => {
                eprintln!("knitc: internal error: unexpected build response {other:?}");
                return ExitCode::FAILURE;
            }
            Err(code) => return code,
        };
        let _ = transport.call(&Request::Close { session: warm_session });
        let compile_ms = |o: &BuildOutcome| {
            o.phases
                .iter()
                .find(|(n, _)| n == "compile")
                .map(|(_, us)| *us as f64 / 1e3)
                .unwrap_or(0.0)
        };
        println!(
            "knitc: warm rebuild: {} cache hits, {} recompiles; compile phase {:.3} ms (cold: {:.3} ms)",
            warm.cache_hits,
            warm.cache_misses,
            compile_ms(&warm),
            compile_ms(&cold)
        );
        if warm.image_hash != cold.image_hash {
            eprintln!("knitc: internal error: warm rebuild produced a different image");
            return ExitCode::FAILURE;
        }
        warm
    } else {
        cold
    };

    print_report(&root, &outcome, args.verbose);

    if let Some(path) = &args.profile_gen {
        let image = match expect_image(cold_image) {
            Ok(i) => i,
            Err(code) => return code,
        };
        match run_image(&image, true) {
            Ok((code, profile)) => {
                let profile = profile.expect("profiling was requested");
                if let Err(e) = std::fs::write(path, profile.to_json()) {
                    eprintln!("knitc: cannot write profile {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "knitc: wrote profile to {} ({} edges, {} calls)",
                    path.display(),
                    profile.edges.len(),
                    profile.total_calls()
                );
                if code != 0 {
                    return ExitCode::from((code & 0xff) as u8);
                }
            }
            Err(code) => return code,
        }
    } else if args.run {
        let image = match expect_image(cold_image) {
            Ok(i) => i,
            Err(code) => return code,
        };
        match run_image(&image, false) {
            Ok((code, _)) => {
                if code != 0 {
                    return ExitCode::from((code & 0xff) as u8);
                }
            }
            Err(code) => return code,
        }
    }

    if args.watch {
        return watch_loop(&mut transport, &session, &args, &outcome.watched);
    }
    ExitCode::SUCCESS
}
