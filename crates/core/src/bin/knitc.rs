//! `knitc` — the Knit compiler as a command-line tool.
//!
//! Mirrors the prototype the paper released ("Source and documentation for
//! our Knit prototype is available…"): point it at `.unit` files and a
//! source directory, name a root unit, and it builds the configuration and
//! (optionally) runs it on the simulated machine.
//!
//! ```text
//! knitc --root WebServer --src ./demo demo/webserver.unit
//! knitc --root WebServer --src ./demo --run demo/webserver.unit
//! knitc --root WebServer --src ./demo --no-flatten --no-check ...
//! ```
//!
//! Every `.c`/`.h` file under `--src` (recursively) becomes available to
//! `files { … }` clauses under its path relative to the source directory.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use knit::{build_with_cache, BuildCache, BuildOptions, Program, SourceTree};

struct Args {
    root: Option<String>,
    src_dirs: Vec<PathBuf>,
    unit_files: Vec<PathBuf>,
    run: bool,
    entry: Option<String>,
    flatten: bool,
    check: bool,
    verbose: bool,
    jobs: Option<usize>,
    cache: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: knitc --root <Unit> [--src <dir>]... [--run] [--entry <member>]\n\
         \x20             [--no-flatten] [--no-check] [--jobs <N>] [--cache]\n\
         \x20             [-v] <file.unit>...\n\
         \n\
         builds the root unit from the given .unit files, with C sources\n\
         resolved from the --src directories; --run executes the image on\n\
         the simulated machine and prints its console output\n\
         \n\
         --jobs <N>  compile up to N units concurrently (default: all cores;\n\
         \x20            the produced image is identical for every N)\n\
         --cache     rebuild once through a warm compile cache and report\n\
         \x20            the hit rate (demonstrates incremental rebuilds)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        root: None,
        src_dirs: Vec::new(),
        unit_files: Vec::new(),
        run: false,
        entry: None,
        flatten: true,
        check: true,
        verbose: false,
        jobs: None,
        cache: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = Some(it.next().unwrap_or_else(|| usage())),
            "--src" => args.src_dirs.push(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--entry" => args.entry = Some(it.next().unwrap_or_else(|| usage())),
            "--jobs" => {
                let n = it.next().unwrap_or_else(|| usage());
                match n.parse::<usize>() {
                    Ok(n) if n >= 1 => args.jobs = Some(n),
                    _ => {
                        eprintln!("knitc: --jobs needs a positive integer, got `{n}`");
                        usage();
                    }
                }
            }
            "--cache" => args.cache = true,
            "--run" => args.run = true,
            "--no-flatten" => args.flatten = false,
            "--no-check" => args.check = false,
            "-v" | "--verbose" => args.verbose = true,
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("knitc: unknown flag `{other}`");
                usage();
            }
            other => args.unit_files.push(PathBuf::from(other)),
        }
    }
    if args.root.is_none() || args.unit_files.is_empty() {
        usage();
    }
    args
}

fn load_sources(tree: &mut SourceTree, base: &Path, dir: &Path) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            load_sources(tree, base, &path)?;
        } else if matches!(path.extension().and_then(|e| e.to_str()), Some("c" | "h")) {
            let rel = path.strip_prefix(base).unwrap_or(&path);
            let text = std::fs::read_to_string(&path)?;
            tree.add(rel.to_string_lossy().replace('\\', "/"), text);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();

    let mut program = Program::new();
    for f in &args.unit_files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("knitc: cannot read {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = program.load_str(&f.to_string_lossy(), &text) {
            eprintln!("knitc: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut tree = SourceTree::new();
    for dir in &args.src_dirs {
        if let Err(e) = load_sources(&mut tree, dir, dir) {
            eprintln!("knitc: reading sources under {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let mut opts =
        BuildOptions::new(args.root.clone().expect("validated"), machine::runtime_symbols());
    opts.entry = args.entry.clone();
    opts.flatten = args.flatten;
    opts.check_constraints = args.check;
    if let Some(jobs) = args.jobs {
        opts.jobs = jobs;
    }

    let cache = BuildCache::new();
    let cold = match build_with_cache(&program, &tree, &opts, &cache) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("knitc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = if args.cache {
        // Rebuild through the now-warm cache: every unit whose content is
        // unchanged (here: all of them) skips the C compiler.
        let warm = match build_with_cache(&program, &tree, &opts, &cache) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("knitc: {e}");
                return ExitCode::FAILURE;
            }
        };
        let compile_ms = |r: &knit::BuildReport| {
            r.phases
                .iter()
                .find(|(n, _)| *n == "compile")
                .map(|(_, d)| d.as_secs_f64() * 1e3)
                .unwrap_or(0.0)
        };
        println!(
            "knitc: warm rebuild: {} cache hits, {} recompiles; compile phase {:.3} ms (cold: {:.3} ms)",
            warm.stats.cache_hits,
            warm.stats.cache_misses,
            compile_ms(&warm),
            compile_ms(&cold)
        );
        if warm.image != cold.image {
            eprintln!("knitc: internal error: warm rebuild produced a different image");
            return ExitCode::FAILURE;
        }
        warm
    } else {
        cold
    };

    println!(
        "knitc: built `{}`: {} instances from {} units, {} objects, {} bytes of text ({} jobs)",
        opts.root,
        report.stats.instances,
        report.stats.units_compiled,
        report.stats.objects,
        report.stats.text_size,
        report.jobs
    );
    if args.verbose {
        println!("initializer schedule:");
        for s in &report.schedule {
            println!("  {s}");
        }
        if let Some(c) = &report.constraints {
            println!(
                "constraints: {} checked over {} variables ({} annotated units)",
                c.constraints, c.vars, c.annotated_units
            );
        }
        println!("exports:");
        for (port, sym) in &report.exports {
            println!("  {port} -> {sym}");
        }
        println!("phases:");
        for (name, d) in &report.phases {
            println!("  {name:12} {:>9.3} ms", d.as_secs_f64() * 1e3);
        }
        println!(
            "unit compiles ({} hit / {} miss):",
            report.stats.cache_hits, report.stats.cache_misses
        );
        for u in &report.unit_compiles {
            println!(
                "  {:24} {:>9.3} ms  {}",
                u.unit,
                u.duration.as_secs_f64() * 1e3,
                if u.cache_hit { "cached" } else { "compiled" }
            );
        }
    }

    if args.run {
        let mut m = match machine::Machine::new(report.image) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("knitc: machine: {e}");
                return ExitCode::FAILURE;
            }
        };
        match m.run_entry() {
            Ok(code) => {
                if !m.console.output.is_empty() {
                    print!("{}", m.console.output);
                }
                if !m.serial.output.is_empty() {
                    eprint!("{}", m.serial.output);
                }
                println!("knitc: program exited with code {code}");
                if code != 0 {
                    return ExitCode::from((code & 0xff) as u8);
                }
            }
            Err(e) => {
                eprintln!("knitc: runtime fault: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
