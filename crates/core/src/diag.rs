//! Structured, span-carrying diagnostics.
//!
//! Every [`KnitError`](crate::error::KnitError) renders to one or more
//! [`Diagnostic`]s via
//! [`KnitError::diagnostics`](crate::error::KnitError::diagnostics). A
//! diagnostic carries a stable code, a severity, the offending `.unit`
//! source position when one is known, and remedy notes — so tools (and
//! `knitc --error-format=json`) can consume errors without parsing prose.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A note attached to another diagnostic.
    Note,
    /// A non-fatal problem.
    Warning,
    /// A build-stopping error.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code for the error kind (`K0001`…), for grepping and docs.
    pub code: &'static str,
    /// Severity of this diagnostic.
    pub severity: Severity,
    /// Primary human-readable message (no location prefix).
    pub message: String,
    /// `(file, line, col)` of the offending declaration, 1-based, when the
    /// pipeline could attribute the error to a source position.
    pub span: Option<(String, u32, u32)>,
    /// Additional notes: remedies, blame chains, related positions.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Render in the conventional compiler format:
    ///
    /// ```text
    /// error[K0011]: file.unit:12:9: constraint violation on property `context`
    ///   note: blame: requires at least `ProcessContext` (…)
    /// ```
    pub fn human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}[{}]: ", self.severity, self.code));
        if let Some((file, line, col)) = &self.span {
            out.push_str(&format!("{file}:{line}:{col}: "));
        }
        out.push_str(&self.message);
        for n in &self.notes {
            out.push_str(&format!("\n  note: {n}"));
        }
        out
    }

    /// Render as a single-line JSON object (no external dependencies — the
    /// escaping covers everything our messages can contain).
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":\"{}\"", self.code));
        out.push_str(&format!(",\"severity\":\"{}\"", self.severity));
        out.push_str(&format!(",\"message\":\"{}\"", json_escape(&self.message)));
        match &self.span {
            Some((file, line, col)) => out.push_str(&format!(
                ",\"span\":{{\"file\":\"{}\",\"line\":{line},\"col\":{col}}}",
                json_escape(file)
            )),
            None => out.push_str(",\"span\":null"),
        }
        out.push_str(",\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(n)));
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_format_includes_code_span_and_notes() {
        let d = Diagnostic {
            code: "K0011",
            severity: Severity::Error,
            message: "constraint violation on property `context`".into(),
            span: Some(("sys.unit".into(), 12, 9)),
            notes: vec!["blame: requires at least `ProcessContext`".into()],
        };
        let h = d.human();
        assert!(h.starts_with("error[K0011]: sys.unit:12:9: "), "{h}");
        assert!(h.contains("\n  note: blame:"), "{h}");
    }

    #[test]
    fn json_is_escaped_and_well_formed() {
        let d = Diagnostic {
            code: "K0009",
            severity: Severity::Error,
            message: "unit `A`: bad \"quote\"\nsecond line".into(),
            span: None,
            notes: vec![],
        };
        let j = d.json();
        assert!(j.contains(r#""span":null"#), "{j}");
        assert!(j.contains(r#"\"quote\"\nsecond"#), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
