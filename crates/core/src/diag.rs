//! Structured, span-carrying diagnostics.
//!
//! Every [`KnitError`](crate::error::KnitError) renders to one or more
//! [`Diagnostic`]s via
//! [`KnitError::diagnostics`](crate::error::KnitError::diagnostics). A
//! diagnostic carries a stable code, a severity, the offending `.unit`
//! source position when one is known, and remedy notes — so tools (and
//! `knitc --error-format=json`) can consume errors without parsing prose.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A note attached to another diagnostic.
    Note,
    /// A non-fatal problem.
    Warning,
    /// A build-stopping error.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code for the error kind (`K0001`…), for grepping and docs.
    pub code: &'static str,
    /// Severity of this diagnostic.
    pub severity: Severity,
    /// Primary human-readable message (no location prefix).
    pub message: String,
    /// `(file, line, col)` of the offending declaration, 1-based, when the
    /// pipeline could attribute the error to a source position.
    pub span: Option<(String, u32, u32)>,
    /// Additional notes: remedies, blame chains, related positions.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Render in the conventional compiler format:
    ///
    /// ```text
    /// error[K0011]: file.unit:12:9: constraint violation on property `context`
    ///   note: blame: requires at least `ProcessContext` (…)
    /// ```
    pub fn human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}[{}]: ", self.severity, self.code));
        if let Some((file, line, col)) = &self.span {
            out.push_str(&format!("{file}:{line}:{col}: "));
        }
        out.push_str(&self.message);
        for n in &self.notes {
            out.push_str(&format!("\n  note: {n}"));
        }
        out
    }

    /// Render as a single-line JSON object (no external dependencies — the
    /// escaping covers everything our messages can contain).
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":\"{}\"", self.code));
        out.push_str(&format!(",\"severity\":\"{}\"", self.severity));
        out.push_str(&format!(",\"message\":\"{}\"", json_escape(&self.message)));
        match &self.span {
            Some((file, line, col)) => out.push_str(&format!(
                ",\"span\":{{\"file\":\"{}\",\"line\":{line},\"col\":{col}}}",
                json_escape(file)
            )),
            None => out.push_str(",\"span\":null"),
        }
        out.push_str(",\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(n)));
        }
        out.push_str("]}");
        out
    }
}

/// Sort diagnostics into the canonical deterministic order — by (file,
/// line, col, code, message), span-less diagnostics after spanned ones —
/// and drop exact duplicates. Every diagnostic-producing surface
/// ([`KnitError::diagnostics`](crate::error::KnitError::diagnostics), the
/// lint driver) funnels through this, so output order never depends on
/// traversal order.
pub fn sort_dedupe(diags: &mut Vec<Diagnostic>) {
    fn key(d: &Diagnostic) -> (bool, &str, u32, u32, &str, &str) {
        match &d.span {
            Some((file, line, col)) => (false, file.as_str(), *line, *col, d.code, &d.message),
            None => (true, "", 0, 0, d.code, &d.message),
        }
    }
    diags.sort_by(|a, b| key(a).cmp(&key(b)));
    diags.dedup();
}

/// A `knitc explain` entry: what a diagnostic code means and a minimal
/// example that triggers it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explain {
    /// The stable code (`K0001`…, `K1001`…).
    pub code: &'static str,
    /// One-line summary of the condition.
    pub summary: &'static str,
    /// A minimal example that triggers it.
    pub example: &'static str,
}

/// Explain entries for the error codes issued by
/// [`KnitError`](crate::error::KnitError) (`K0001`–`K0015`). Lint codes
/// (`K1xxx`) live in the lint registry
/// ([`crate::analyze::LINTS`]); [`explain`] searches both.
pub const ERROR_EXPLAINS: &[Explain] = &[
    Explain {
        code: "K0001",
        summary: "a `.unit` file failed to lex or parse",
        example: "unit U = { files { };", // missing closing brace
    },
    Explain {
        code: "K0002",
        summary: "two top-level declarations share a name",
        example: "bundletype T = { f }\nbundletype T = { g }",
    },
    Explain {
        code: "K0003",
        summary: "a reference names an undeclared unit, bundletype, flags set, property, or lint",
        example: "unit U = { imports [ a : Missing ]; files { \"u.c\" }; }",
    },
    Explain {
        code: "K0004",
        summary: "an instantiated unit's import port was left unwired in the link block",
        example: "link { w : Web; }  // Web imports serveFile, but no binding supplies it",
    },
    Explain {
        code: "K0005",
        summary: "a wiring connects an import to an export of a different bundle type",
        example: "link { l : Log [ stdio = f.serve ]; }  // stdio : Stdio wired to a Serve export",
    },
    Explain {
        code: "K0006",
        summary: "unit code references a symbol that is neither imported, defined, nor a runtime symbol",
        example: "int f() { return mystery(); }  // `mystery` appears in no import bundle",
    },
    Explain {
        code: "K0007",
        summary: "a unit imports and exports the same C identifier without renaming one side",
        example: "imports [ a : T ]; exports [ b : T ];  // both bind member `f` to C symbol `f`",
    },
    Explain {
        code: "K0008",
        summary: "a rename clause names an unknown port or bundle member",
        example: "rename { serveWeb.nope to x; }",
    },
    Explain {
        code: "K0009",
        summary: "a declaration is structurally invalid (bad initializer port, bad depends, undefined export at build time, bad flags)",
        example: "initializer boot for imported_port;  // `for` must name an export port",
    },
    Explain {
        code: "K0010",
        summary: "initializer-level dependencies form a cycle",
        example: "depends { ia needs b; }  // while the b-provider declares `ib needs a;`",
    },
    Explain {
        code: "K0011",
        summary: "an architectural constraint (§4) is violated; the note carries the blame chain",
        example: "constraints { context(exports) <= context(imports); }  // wired to a lower context",
    },
    Explain {
        code: "K0012",
        summary: "two constraints force incomparable property values (no unique meet)",
        example: "type A\ntype B  // unrelated values forced onto the same port",
    },
    Explain {
        code: "K0013",
        summary: "a C source failed to compile (cmini error, with its own file position)",
        example: "int f( { }  // syntax error in a files { … } entry",
    },
    Explain {
        code: "K0014",
        summary: "the final link failed (duplicate or missing link-level symbols)",
        example: "two pre-compiled objects exporting the same symbol",
    },
    Explain {
        code: "K0015",
        summary: "a files { … } entry names a path missing from the source tree",
        example: "files { \"nope.c\" };",
    },
    Explain {
        code: "K0016",
        summary: "a composition-server connection opened with a mismatched protocol version",
        example: "{\"req\":\"hello\",\"version\":0}  // server speaks proto::VERSION",
    },
    Explain {
        code: "K0017",
        summary: "a composition-server request was malformed or of an unknown kind",
        example: "{\"req\":\"frobnicate\"}",
    },
];

/// Look up the explain entry for `code`, searching the error table and the
/// lint registry. Backs `knitc explain` and the generated
/// `docs/diagnostics.md`.
pub fn explain(code: &str) -> Option<Explain> {
    if let Some(e) = ERROR_EXPLAINS.iter().find(|e| e.code == code) {
        return Some(*e);
    }
    crate::analyze::LINTS.iter().find(|l| l.code == code).map(|l| Explain {
        code: l.code,
        summary: l.summary,
        example: l.example,
    })
}

/// Map a runtime diagnostic code back to its canonical `&'static str` —
/// needed when decoding wire diagnostics, since [`Diagnostic::code`] is a
/// static string. Returns `None` for codes in neither the error table nor
/// the lint registry.
pub fn static_code(code: &str) -> Option<&'static str> {
    if let Some(e) = ERROR_EXPLAINS.iter().find(|e| e.code == code) {
        return Some(e.code);
    }
    crate::analyze::LINTS.iter().find(|l| l.code == code).map(|l| l.code)
}

/// Render the full diagnostic-code table as markdown — the generator for
/// `docs/diagnostics.md` (a test pins the file to this output).
pub fn diagnostics_markdown() -> String {
    let mut out = String::new();
    out.push_str("# Diagnostic codes\n\n");
    out.push_str("Generated by `knit::diag::diagnostics_markdown()`; do not edit by hand.\n");
    out.push_str("`knitc explain <code>` prints the same entries.\n\n");
    out.push_str("## Errors (K0xxx)\n\n");
    out.push_str("| Code | Summary |\n|------|---------|\n");
    for e in ERROR_EXPLAINS {
        out.push_str(&format!("| {} | {} |\n", e.code, e.summary.replace('|', "\\|")));
    }
    out.push_str("\n## Lints (K1xxx)\n\n");
    out.push_str(
        "Lints default to `warn`; configure with `knitc lint --allow/--warn/--deny <lint>`\n",
    );
    out.push_str(
        "or a `#[allow(...)]`/`#[warn(...)]`/`#[deny(...)]` pragma on a unit declaration.\n\n",
    );
    out.push_str("| Code | Name | Summary |\n|------|------|---------|\n");
    for l in crate::analyze::LINTS {
        out.push_str(&format!("| {} | {} | {} |\n", l.code, l.name, l.summary.replace('|', "\\|")));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_format_includes_code_span_and_notes() {
        let d = Diagnostic {
            code: "K0011",
            severity: Severity::Error,
            message: "constraint violation on property `context`".into(),
            span: Some(("sys.unit".into(), 12, 9)),
            notes: vec!["blame: requires at least `ProcessContext`".into()],
        };
        let h = d.human();
        assert!(h.starts_with("error[K0011]: sys.unit:12:9: "), "{h}");
        assert!(h.contains("\n  note: blame:"), "{h}");
    }

    #[test]
    fn json_is_escaped_and_well_formed() {
        let d = Diagnostic {
            code: "K0009",
            severity: Severity::Error,
            message: "unit `A`: bad \"quote\"\nsecond line".into(),
            span: None,
            notes: vec![],
        };
        let j = d.json();
        assert!(j.contains(r#""span":null"#), "{j}");
        assert!(j.contains(r#"\"quote\"\nsecond"#), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
