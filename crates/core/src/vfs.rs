//! The build's virtual source tree.
//!
//! Knit unit files name C sources by path (`files { "web.c" }`) and flags
//! name include directories (`-Ioskit/include`). Component kits in this
//! reproduction (the `oskit` and `clack` crates) ship their sources as
//! embedded strings, so the build works from an in-memory tree rather than
//! the real filesystem.

use std::collections::BTreeMap;

use cmini::FileProvider;
use cobj::object::ObjectFile;

/// An in-memory tree of source files (paths use `/` separators), plus
/// pre-compiled object files — the paper notes "Knit can actually work
/// with C, assembly, and object code", and a unit's `files` clause may
/// name a registered `.o` directly.
#[derive(Debug, Clone, Default)]
pub struct SourceTree {
    files: BTreeMap<String, String>,
    objects: BTreeMap<String, ObjectFile>,
}

impl SourceTree {
    /// An empty tree.
    pub fn new() -> SourceTree {
        SourceTree::default()
    }

    /// Add (or replace) a file.
    pub fn add(&mut self, path: impl Into<String>, contents: impl Into<String>) -> &mut Self {
        self.files.insert(path.into(), contents.into());
        self
    }

    /// Fetch a file's contents.
    pub fn get(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(|s| s.as_str())
    }

    /// Whether the file exists.
    pub fn contains(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Iterate over (path, contents).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Register a pre-compiled object under a path (referenced from unit
    /// files as `files { "name.o" }`).
    pub fn add_object(&mut self, path: impl Into<String>, obj: ObjectFile) -> &mut Self {
        self.objects.insert(path.into(), obj);
        self
    }

    /// Fetch a registered object.
    pub fn get_object(&self, path: &str) -> Option<&ObjectFile> {
        self.objects.get(path)
    }

    /// Merge another tree into this one (later wins).
    pub fn extend_from(&mut self, other: &SourceTree) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
        for (k, v) in &other.objects {
            self.objects.insert(k.clone(), v.clone());
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

impl FileProvider for SourceTree {
    fn read_file(&self, path: &str) -> Option<String> {
        self.files.get(path).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_merge() {
        let mut a = SourceTree::new();
        a.add("x.c", "int a;").add("h/defs.h", "#define N 1");
        assert_eq!(a.get("x.c"), Some("int a;"));
        assert!(a.contains("h/defs.h"));
        assert!(!a.contains("nope.c"));

        let mut b = SourceTree::new();
        b.add("x.c", "int b;");
        a.extend_from(&b);
        assert_eq!(a.get("x.c"), Some("int b;"));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn acts_as_file_provider() {
        let mut t = SourceTree::new();
        t.add("inc/a.h", "#define A 7");
        let out = cmini::pp::preprocess(
            "m.c",
            "#include \"a.h\"\nint x = A;\n",
            &cmini::PpOptions { include_dirs: vec!["inc".into()], defines: vec![] },
            &t,
        )
        .unwrap();
        assert_eq!(out, "int x = 7;\n");
    }
}
