//! Errors for the Knit build pipeline.
//!
//! Every error can render itself as a structured, span-carrying
//! [`Diagnostic`] via [`KnitError::diagnostics`]:
//! the front end tracks source positions for every declaration, and the
//! elaborator/constraint checker attach them with [`KnitError::at`] instead
//! of flattening them into message strings.

use std::fmt;

use knit_lang::token::Span;

use crate::diag::{Diagnostic, Severity};

/// Any error the Knit compiler can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnitError {
    /// An error located at a `.unit` source position. Wraps the underlying
    /// error; produced by [`KnitError::at`], unwrapped by
    /// [`KnitError::root`].
    At {
        /// The `.unit` file the error points into.
        file: String,
        /// 1-based line of the offending declaration.
        line: u32,
        /// 1-based column of the offending declaration.
        col: u32,
        /// The underlying error.
        inner: Box<KnitError>,
    },
    /// Front-end error in a `.unit` file.
    Lang(knit_lang::KError),
    /// Duplicate top-level declaration.
    Duplicate {
        /// Declaration kind (`"unit"`, `"bundletype"`, …).
        kind: &'static str,
        /// The redeclared name.
        name: String,
    },
    /// Reference to an undeclared name (unit, bundletype, flags, property…).
    Unknown {
        /// Declaration kind expected (`"unit"`, `"property"`, …).
        kind: &'static str,
        /// The unresolved name.
        name: String,
        /// Where the reference appeared.
        context: String,
    },
    /// An instantiated unit's import was left unbound.
    UnboundImport {
        /// Path of the instance with the dangling import.
        instance: String,
        /// The unwired import port.
        port: String,
    },
    /// A wiring connected ports of different bundle types.
    BundleTypeMismatch {
        /// Path of the instance whose import is miswired.
        instance: String,
        /// The import port.
        port: String,
        /// The import's declared bundle type.
        expected: String,
        /// The bundle type of the export it was wired to.
        found: String,
    },
    /// Unit code references a symbol that is neither an import, a
    /// definition of the unit, nor a runtime (`__`-prefixed) symbol.
    UnboundSymbol {
        /// Path of the offending instance.
        instance: String,
        /// The unresolved C symbol.
        symbol: String,
    },
    /// A unit both imports and exports the same C identifier without
    /// renaming one of them (§3.2: renaming resolves the conflict).
    NeedsRename {
        /// The unit with the conflict.
        unit: String,
        /// The doubly-bound C identifier.
        c_name: String,
    },
    /// A rename clause referenced an unknown port or member.
    BadRename {
        /// The unit with the bad rename.
        unit: String,
        /// The named port.
        port: String,
        /// The named member.
        member: String,
    },
    /// An initializer/finalizer's `for` bundle is not an export port, or a
    /// depends clause referenced an unknown name.
    BadDeclaration {
        /// The unit with the bad declaration.
        unit: String,
        /// What is wrong with it.
        what: String,
    },
    /// Initialization order has an unbreakable cycle (§3.2: fine-grained
    /// dependencies are the tool for breaking them).
    InitCycle {
        /// The cycle, as `path.func` strings.
        cycle: Vec<String>,
    },
    /// A constraint was violated; the message carries the blame chain.
    ConstraintViolation {
        /// The violated property.
        property: String,
        /// The blame chain: which annotations conflict and why.
        explanation: String,
    },
    /// Two constraints force incomparable property values.
    NoMeet {
        /// The property whose poset lacks the meet.
        property: String,
        /// One forced value.
        a: String,
        /// The other forced value.
        b: String,
        /// Which constraints forced them.
        context: String,
    },
    /// mini-C compilation failed.
    Compile(cmini::CError),
    /// Final link failed (should not happen for a validated configuration —
    /// indicates a bug or a hand-built object set).
    Link(cobj::LinkError),
    /// A `files` entry was missing from the source tree.
    MissingSource {
        /// The unit naming the file.
        unit: String,
        /// The missing path.
        path: String,
    },
}

impl KnitError {
    /// Attach a source location. No-op when the error already carries one
    /// ([`KnitError::At`], [`KnitError::Lang`]) or embeds its own file
    /// position ([`KnitError::Compile`], [`KnitError::Link`]) — the
    /// innermost, most precise location always wins.
    #[must_use]
    pub fn at(self, file: &str, span: Span) -> KnitError {
        match self {
            KnitError::At { .. }
            | KnitError::Lang(_)
            | KnitError::Compile(_)
            | KnitError::Link(_) => self,
            other => KnitError::At {
                file: file.to_string(),
                line: span.line,
                col: span.col,
                inner: Box::new(other),
            },
        }
    }

    /// The underlying error, with any [`KnitError::At`] location wrappers
    /// stripped. Match on this to dispatch on the error kind.
    pub fn root(&self) -> &KnitError {
        match self {
            KnitError::At { inner, .. } => inner.root(),
            other => other,
        }
    }

    /// The source location this error points at, if it carries one:
    /// `(file, line, col)`, 1-based.
    pub fn span(&self) -> Option<(String, u32, u32)> {
        match self {
            KnitError::At { file, line, col, .. } => Some((file.clone(), *line, *col)),
            KnitError::Lang(
                knit_lang::KError::Lex { file, span, .. }
                | knit_lang::KError::Parse { file, span, .. },
            ) => Some((file.clone(), span.line, span.col)),
            _ => None,
        }
    }

    /// A stable diagnostic code for the error kind (`K0001`…), independent
    /// of any location wrapper.
    pub fn code(&self) -> &'static str {
        match self.root() {
            KnitError::At { .. } => unreachable!("root() strips At"),
            KnitError::Lang(_) => "K0001",
            KnitError::Duplicate { .. } => "K0002",
            KnitError::Unknown { .. } => "K0003",
            KnitError::UnboundImport { .. } => "K0004",
            KnitError::BundleTypeMismatch { .. } => "K0005",
            KnitError::UnboundSymbol { .. } => "K0006",
            KnitError::NeedsRename { .. } => "K0007",
            KnitError::BadRename { .. } => "K0008",
            KnitError::BadDeclaration { .. } => "K0009",
            KnitError::InitCycle { .. } => "K0010",
            KnitError::ConstraintViolation { .. } => "K0011",
            KnitError::NoMeet { .. } => "K0012",
            KnitError::Compile(_) => "K0013",
            KnitError::Link(_) => "K0014",
            KnitError::MissingSource { .. } => "K0015",
        }
    }

    /// Render the error as structured, span-carrying diagnostics.
    ///
    /// The primary diagnostic's message is the root error's text; the span
    /// (when known) points at the offending `.unit` declaration; notes
    /// carry remedies and blame chains.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut notes = Vec::new();
        let message = match self.root() {
            KnitError::ConstraintViolation { property, explanation } => {
                notes.push(format!("blame: {explanation}"));
                format!("constraint violation on property `{property}`")
            }
            KnitError::NeedsRename { unit, c_name } => {
                notes.push(format!(
                    "add `rename {{ <port>.<member> to <other_name>; }}` in unit `{unit}` (§3.2)"
                ));
                format!("unit `{unit}`: C identifier `{c_name}` is both imported and exported")
            }
            KnitError::InitCycle { cycle } => {
                notes.push(
                    "break the cycle with a finer `depends { … }` declaration (§3.2)".to_string(),
                );
                format!("initialization cycle: {}", cycle.join(" -> "))
            }
            KnitError::UnboundSymbol { .. } => {
                notes.push(
                    "either import a bundle providing it, define it, or rename the reference"
                        .to_string(),
                );
                self.root().to_string()
            }
            other => other.to_string(),
        };
        let mut diags = vec![Diagnostic {
            code: self.code(),
            severity: Severity::Error,
            message,
            span: self.span(),
            notes,
        }];
        crate::diag::sort_dedupe(&mut diags);
        diags
    }
}

impl fmt::Display for KnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnitError::At { file, line, col, inner } => {
                write!(f, "{file}:{line}:{col}: {inner}")
            }
            KnitError::Lang(e) => write!(f, "{e}"),
            KnitError::Duplicate { kind, name } => write!(f, "duplicate {kind} `{name}`"),
            KnitError::Unknown { kind, name, context } => {
                write!(f, "unknown {kind} `{name}` (in {context})")
            }
            KnitError::UnboundImport { instance, port } => {
                write!(f, "instance `{instance}`: import `{port}` is not wired to anything")
            }
            KnitError::BundleTypeMismatch { instance, port, expected, found } => write!(
                f,
                "instance `{instance}`: import `{port}` has bundle type {expected} but was wired to an export of type {found}"
            ),
            KnitError::UnboundSymbol { instance, symbol } => write!(
                f,
                "instance `{instance}`: code references `{symbol}`, which is neither defined, imported, nor a runtime symbol"
            ),
            KnitError::NeedsRename { unit, c_name } => write!(
                f,
                "unit `{unit}`: C identifier `{c_name}` is both imported and exported — rename one side (§3.2)"
            ),
            KnitError::BadRename { unit, port, member } => {
                write!(f, "unit `{unit}`: rename of `{port}.{member}` matches no port member")
            }
            KnitError::BadDeclaration { unit, what } => write!(f, "unit `{unit}`: {what}"),
            KnitError::InitCycle { cycle } => {
                write!(f, "initialization cycle: {}", cycle.join(" -> "))
            }
            KnitError::ConstraintViolation { property, explanation } => {
                write!(f, "constraint violation on property `{property}`: {explanation}")
            }
            KnitError::NoMeet { property, a, b, context } => write!(
                f,
                "property `{property}`: values `{a}` and `{b}` are incomparable ({context})"
            ),
            KnitError::Compile(e) => write!(f, "compile: {e}"),
            KnitError::Link(e) => write!(f, "link: {e}"),
            KnitError::MissingSource { unit, path } => {
                write!(f, "unit `{unit}`: source file `{path}` not found")
            }
        }
    }
}

impl std::error::Error for KnitError {}

impl From<knit_lang::KError> for KnitError {
    fn from(e: knit_lang::KError) -> Self {
        KnitError::Lang(e)
    }
}

impl From<cmini::CError> for KnitError {
    fn from(e: cmini::CError) -> Self {
        KnitError::Compile(e)
    }
}

impl From<cobj::LinkError> for KnitError {
    fn from(e: cobj::LinkError) -> Self {
        KnitError::Link(e)
    }
}
