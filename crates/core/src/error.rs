//! Errors for the Knit build pipeline.

use std::fmt;

/// Any error the Knit compiler can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnitError {
    /// Front-end error in a `.unit` file.
    Lang(knit_lang::KError),
    /// Duplicate top-level declaration.
    Duplicate { kind: &'static str, name: String },
    /// Reference to an undeclared name (unit, bundletype, flags, property…).
    Unknown { kind: &'static str, name: String, context: String },
    /// An instantiated unit's import was left unbound.
    UnboundImport { instance: String, port: String },
    /// A wiring connected ports of different bundle types.
    BundleTypeMismatch { instance: String, port: String, expected: String, found: String },
    /// Unit code references a symbol that is neither an import, a
    /// definition of the unit, nor a runtime (`__`-prefixed) symbol.
    UnboundSymbol { instance: String, symbol: String },
    /// A unit both imports and exports the same C identifier without
    /// renaming one of them (§3.2: renaming resolves the conflict).
    NeedsRename { unit: String, c_name: String },
    /// A rename clause referenced an unknown port or member.
    BadRename { unit: String, port: String, member: String },
    /// An initializer/finalizer's `for` bundle is not an export port, or a
    /// depends clause referenced an unknown name.
    BadDeclaration { unit: String, what: String },
    /// Initialization order has an unbreakable cycle (§3.2: fine-grained
    /// dependencies are the tool for breaking them).
    InitCycle { cycle: Vec<String> },
    /// A constraint was violated; the message carries the blame chain.
    ConstraintViolation { property: String, explanation: String },
    /// Two constraints force incomparable property values.
    NoMeet { property: String, a: String, b: String, context: String },
    /// mini-C compilation failed.
    Compile(cmini::CError),
    /// Final link failed (should not happen for a validated configuration —
    /// indicates a bug or a hand-built object set).
    Link(cobj::LinkError),
    /// A `files` entry was missing from the source tree.
    MissingSource { unit: String, path: String },
}

impl fmt::Display for KnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnitError::Lang(e) => write!(f, "{e}"),
            KnitError::Duplicate { kind, name } => write!(f, "duplicate {kind} `{name}`"),
            KnitError::Unknown { kind, name, context } => {
                write!(f, "unknown {kind} `{name}` (in {context})")
            }
            KnitError::UnboundImport { instance, port } => {
                write!(f, "instance `{instance}`: import `{port}` is not wired to anything")
            }
            KnitError::BundleTypeMismatch { instance, port, expected, found } => write!(
                f,
                "instance `{instance}`: import `{port}` has bundle type {expected} but was wired to an export of type {found}"
            ),
            KnitError::UnboundSymbol { instance, symbol } => write!(
                f,
                "instance `{instance}`: code references `{symbol}`, which is neither defined, imported, nor a runtime symbol"
            ),
            KnitError::NeedsRename { unit, c_name } => write!(
                f,
                "unit `{unit}`: C identifier `{c_name}` is both imported and exported — rename one side (§3.2)"
            ),
            KnitError::BadRename { unit, port, member } => {
                write!(f, "unit `{unit}`: rename of `{port}.{member}` matches no port member")
            }
            KnitError::BadDeclaration { unit, what } => write!(f, "unit `{unit}`: {what}"),
            KnitError::InitCycle { cycle } => {
                write!(f, "initialization cycle: {}", cycle.join(" -> "))
            }
            KnitError::ConstraintViolation { property, explanation } => {
                write!(f, "constraint violation on property `{property}`: {explanation}")
            }
            KnitError::NoMeet { property, a, b, context } => write!(
                f,
                "property `{property}`: values `{a}` and `{b}` are incomparable ({context})"
            ),
            KnitError::Compile(e) => write!(f, "compile: {e}"),
            KnitError::Link(e) => write!(f, "link: {e}"),
            KnitError::MissingSource { unit, path } => {
                write!(f, "unit `{unit}`: source file `{path}` not found")
            }
        }
    }
}

impl std::error::Error for KnitError {}

impl From<knit_lang::KError> for KnitError {
    fn from(e: knit_lang::KError) -> Self {
        KnitError::Lang(e)
    }
}

impl From<cmini::CError> for KnitError {
    fn from(e: cmini::CError) -> Self {
        KnitError::Compile(e)
    }
}

impl From<cobj::LinkError> for KnitError {
    fn from(e: cobj::LinkError) -> Self {
        KnitError::Link(e)
    }
}
