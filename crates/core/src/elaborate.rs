//! Elaboration: from a hierarchy of compound units to a flat graph of
//! atomic unit instances.
//!
//! Compound units are pure wiring — during elaboration they dissolve,
//! leaving atomic instances whose import ports are wired either to another
//! instance's export port or to the outside world (an import of the root
//! unit, satisfied by the runtime). Because our link blocks name every
//! instance, the same unit can be instantiated any number of times; each
//! instantiation becomes its own [`ElabInstance`] and, later in the
//! pipeline, its own `objcopy`-duplicated object code — the paper's
//! mechanism for, e.g., two independent `printf`s.
//!
//! Cyclic imports between sibling instances are fully supported (§3.2:
//! "cyclic imports are common"): resolution of an import chases *bindings*
//! (up through parents) and *export aliases* (down through children), never
//! through another import, so it always terminates.

use std::collections::BTreeMap;

use knit_lang::ast::{PathRef, UnitBody, UnitDecl};
use knit_lang::token::Span;

use crate::error::KnitError;
use crate::model::Program;

/// Where an import port gets its implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wire {
    /// Wired to `instances[instance]`'s export port `port`.
    Export {
        /// Index of the providing instance.
        instance: usize,
        /// The provider's export port.
        port: String,
    },
    /// Left open at the root: satisfied by the runtime (external world).
    External {
        /// The open root import port.
        port: String,
    },
}

/// One atomic unit instance in the elaborated graph.
#[derive(Debug, Clone)]
pub struct ElabInstance {
    /// Dense id; index into [`Elaboration::instances`].
    pub id: usize,
    /// Hierarchical path, e.g. `"logserve/log"`.
    pub path: String,
    /// Name of the atomic unit this instantiates.
    pub unit: String,
    /// Wiring for each import port.
    pub imports: BTreeMap<String, Wire>,
}

/// A node of the instantiation tree (kept for constraint checking, which
/// must resolve compound-level annotations too).
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// Unit name.
    pub unit: String,
    /// Hierarchical path.
    pub path: String,
    /// Resolution of each import port.
    pub imports: BTreeMap<String, Wire>,
    /// Resolution of each export port to an atomic (instance, port).
    pub exports: BTreeMap<String, (usize, String)>,
}

/// The result of elaboration.
#[derive(Debug, Clone)]
pub struct Elaboration {
    /// All atomic instances, densely numbered.
    pub instances: Vec<ElabInstance>,
    /// The root unit's exports, resolved to atomic instances.
    pub root_exports: BTreeMap<String, (usize, String)>,
    /// The root unit's import ports (these are the build's externals).
    pub root_imports: Vec<String>,
    /// Sets of instance ids under each outermost `flatten`-marked compound.
    pub flatten_groups: Vec<Vec<usize>>,
    /// Every node of the instantiation tree (atomic and compound).
    pub nodes: Vec<NodeInfo>,
    /// Name of the root unit.
    pub root: String,
}

impl Elaboration {
    /// The unit declaration of an instance.
    pub fn unit_of<'p>(&self, program: &'p Program, id: usize) -> &'p UnitDecl {
        &program.units[&self.instances[id].unit]
    }
}

/// Elaborate `root` against the program.
pub fn elaborate(program: &Program, root: &str) -> Result<Elaboration, KnitError> {
    let mut el = Elaborator {
        program,
        nodes: Vec::new(),
        instances: Vec::new(),
        stack: Vec::new(),
        flatten_roots: Vec::new(),
    };
    let root_id = el.build(root, root.to_string(), None, BTreeMap::new(), None)?;
    // Resolve every atomic instance's imports.
    for node_id in 0..el.nodes.len() {
        if let NodeKind::Atomic { inst } = el.nodes[node_id].kind {
            let unit = &el.program.units[&el.nodes[node_id].unit_name];
            let ports: Vec<(String, String)> =
                unit.imports.iter().map(|p| (p.name.clone(), p.bundle_type.clone())).collect();
            let site = el.nodes[node_id].site.clone();
            for (port, ty) in ports {
                let wire = el.resolve_import(node_id, &port).map_err(|e| e.at(&site.0, site.1))?;
                el.check_wire_type(&wire, &ty, &el.nodes[node_id].path.clone(), &port)
                    .map_err(|e| e.at(&site.0, site.1))?;
                el.instances[inst].imports.insert(port, wire);
            }
        }
    }
    // Root exports.
    let root_unit = &program.units[root];
    let root_site = el.nodes[root_id].site.clone();
    let mut root_exports = BTreeMap::new();
    for p in &root_unit.exports {
        let (inst, port) =
            el.resolve_export(root_id, &p.name).map_err(|e| e.at(&root_site.0, root_site.1))?;
        root_exports.insert(p.name.clone(), (inst, port));
    }
    let root_imports = root_unit.imports.iter().map(|p| p.name.clone()).collect();

    // Flatten groups: outermost flatten-marked compounds.
    let mut flatten_groups = Vec::new();
    for &fr in &el.flatten_roots {
        if !el.has_flatten_ancestor(fr) {
            let mut group = Vec::new();
            el.collect_atomics(fr, &mut group);
            if !group.is_empty() {
                flatten_groups.push(group);
            }
        }
    }

    // Public node info.
    let mut nodes = Vec::new();
    for id in 0..el.nodes.len() {
        let unit = el.program.units[&el.nodes[id].unit_name].clone();
        let site = el.nodes[id].site.clone();
        let mut imports = BTreeMap::new();
        for p in &unit.imports {
            imports.insert(
                p.name.clone(),
                el.resolve_import(id, &p.name).map_err(|e| e.at(&site.0, site.1))?,
            );
        }
        let mut exports = BTreeMap::new();
        for p in &unit.exports {
            exports.insert(
                p.name.clone(),
                el.resolve_export(id, &p.name).map_err(|e| e.at(&site.0, site.1))?,
            );
        }
        nodes.push(NodeInfo {
            unit: el.nodes[id].unit_name.clone(),
            path: el.nodes[id].path.clone(),
            imports,
            exports,
        });
    }

    Ok(Elaboration {
        instances: el.instances,
        root_exports,
        root_imports,
        flatten_groups,
        nodes,
        root: root.to_string(),
    })
}

enum NodeKind {
    Atomic { inst: usize },
    Compound { children: BTreeMap<String, usize>, exports: BTreeMap<String, (String, String)> },
}

struct Node {
    unit_name: String,
    path: String,
    parent: Option<usize>,
    bindings: BTreeMap<String, PathRef>,
    kind: NodeKind,
    flatten: bool,
    /// `(file, position)` of the instantiation that created this node (the
    /// `inst : Unit [ … ]` line, or the unit declaration for the root) —
    /// the blame location for wiring errors involving this node.
    site: (String, Span),
}

struct Elaborator<'p> {
    program: &'p Program,
    nodes: Vec<Node>,
    instances: Vec<ElabInstance>,
    stack: Vec<String>,
    flatten_roots: Vec<usize>,
}

impl<'p> Elaborator<'p> {
    /// Instantiate `unit_name`, wrapping any error with `site` — the
    /// `.unit` position of the instantiation (or of the root unit's
    /// declaration). Inner (more precise) locations win, so a failure deep
    /// in a sub-compound blames the innermost offending line.
    fn build(
        &mut self,
        unit_name: &str,
        path: String,
        parent: Option<usize>,
        bindings: BTreeMap<String, PathRef>,
        site: Option<(String, Span)>,
    ) -> Result<usize, KnitError> {
        let site = site
            .or_else(|| self.program.unit_site(unit_name).map(|(f, s)| (f.to_string(), s)))
            .unwrap_or_default();
        self.build_inner(unit_name, path, parent, bindings, site.clone())
            .map_err(|e| e.at(&site.0, site.1))
    }

    fn build_inner(
        &mut self,
        unit_name: &str,
        path: String,
        parent: Option<usize>,
        bindings: BTreeMap<String, PathRef>,
        site: (String, Span),
    ) -> Result<usize, KnitError> {
        let unit = self.program.units.get(unit_name).ok_or_else(|| KnitError::Unknown {
            kind: "unit",
            name: unit_name.to_string(),
            context: format!("instantiating `{path}`"),
        })?;
        if self.stack.iter().any(|u| u == unit_name) {
            return Err(KnitError::BadDeclaration {
                unit: unit_name.to_string(),
                what: format!(
                    "recursive instantiation: {} -> {unit_name}",
                    self.stack.join(" -> ")
                ),
            });
        }
        // every import of a non-root instantiation must be bound
        if parent.is_some() {
            for p in &unit.imports {
                if !bindings.contains_key(&p.name) {
                    return Err(KnitError::UnboundImport {
                        instance: path.clone(),
                        port: p.name.clone(),
                    });
                }
            }
            for bound in bindings.keys() {
                if !unit.imports.iter().any(|p| &p.name == bound) {
                    return Err(KnitError::Unknown {
                        kind: "import port",
                        name: bound.clone(),
                        context: format!("binding for `{path}`"),
                    });
                }
            }
        }

        let node_id = self.nodes.len();
        match &unit.body {
            UnitBody::Atomic(_) => {
                let inst_id = self.instances.len();
                self.instances.push(ElabInstance {
                    id: inst_id,
                    path: path.clone(),
                    unit: unit_name.to_string(),
                    imports: BTreeMap::new(),
                });
                self.nodes.push(Node {
                    unit_name: unit_name.to_string(),
                    path,
                    parent,
                    bindings,
                    kind: NodeKind::Atomic { inst: inst_id },
                    flatten: unit.flatten,
                    site,
                });
                Ok(node_id)
            }
            UnitBody::Compound(c) => {
                let c = c.clone();
                // instance declarations inside this link block live in the
                // file that declared this (compound) unit
                let decl_file = self
                    .program
                    .unit_site(unit_name)
                    .map(|(f, _)| f.to_string())
                    .unwrap_or_else(|| site.0.clone());
                self.nodes.push(Node {
                    unit_name: unit_name.to_string(),
                    path: path.clone(),
                    parent,
                    bindings,
                    kind: NodeKind::Compound {
                        children: BTreeMap::new(),
                        exports: BTreeMap::new(),
                    },
                    flatten: unit.flatten,
                    site,
                });
                if unit.flatten {
                    self.flatten_roots.push(node_id);
                }
                self.stack.push(unit_name.to_string());
                let mut children = BTreeMap::new();
                for inst in &c.instances {
                    let child_bindings: BTreeMap<String, PathRef> =
                        inst.bindings.iter().cloned().collect();
                    let child = self.build(
                        &inst.unit,
                        format!("{path}/{}", inst.name),
                        Some(node_id),
                        child_bindings,
                        Some((decl_file.clone(), inst.span)),
                    )?;
                    children.insert(inst.name.clone(), child);
                }
                self.stack.pop();
                let mut exports = BTreeMap::new();
                for e in &c.export_bindings {
                    if !children.contains_key(&e.instance) {
                        return Err(KnitError::Unknown {
                            kind: "instance",
                            name: e.instance.clone(),
                            context: format!("export binding in `{unit_name}`"),
                        });
                    }
                    exports.insert(e.export.clone(), (e.instance.clone(), e.port.clone()));
                }
                if let NodeKind::Compound { children: ch, exports: ex } =
                    &mut self.nodes[node_id].kind
                {
                    *ch = children;
                    *ex = exports;
                }
                Ok(node_id)
            }
        }
    }

    /// Resolve one of `node`'s own import ports to a wire.
    fn resolve_import(&self, node: usize, port: &str) -> Result<Wire, KnitError> {
        let n = &self.nodes[node];
        match n.parent {
            None => Ok(Wire::External { port: port.to_string() }),
            Some(parent) => {
                let binding = n.bindings.get(port).ok_or_else(|| KnitError::UnboundImport {
                    instance: n.path.clone(),
                    port: port.to_string(),
                })?;
                match binding {
                    PathRef::Name(x) => {
                        // parent's own import
                        let parent_unit = &self.program.units[&self.nodes[parent].unit_name];
                        if !parent_unit.imports.iter().any(|p| &p.name == x) {
                            return Err(KnitError::Unknown {
                                kind: "import port",
                                name: x.clone(),
                                context: format!(
                                    "binding `{port}` of `{}` in `{}`",
                                    n.path, self.nodes[parent].path
                                ),
                            });
                        }
                        self.resolve_import(parent, x)
                    }
                    PathRef::Dotted(inst, p) => {
                        let siblings = match &self.nodes[parent].kind {
                            NodeKind::Compound { children, .. } => children,
                            NodeKind::Atomic { .. } => unreachable!("parent is a link block"),
                        };
                        let sib = siblings.get(inst).ok_or_else(|| KnitError::Unknown {
                            kind: "instance",
                            name: inst.clone(),
                            context: format!("binding `{port}` of `{}`", n.path),
                        })?;
                        let (i, p2) = self.resolve_export(*sib, p)?;
                        Ok(Wire::Export { instance: i, port: p2 })
                    }
                }
            }
        }
    }

    /// Resolve one of `node`'s export ports to an atomic (instance, port).
    fn resolve_export(&self, node: usize, port: &str) -> Result<(usize, String), KnitError> {
        let n = &self.nodes[node];
        let unit = &self.program.units[&n.unit_name];
        if !unit.exports.iter().any(|p| p.name == port) {
            return Err(KnitError::Unknown {
                kind: "export port",
                name: port.to_string(),
                context: format!("unit `{}` (at `{}`)", n.unit_name, n.path),
            });
        }
        match &n.kind {
            NodeKind::Atomic { inst } => Ok((*inst, port.to_string())),
            NodeKind::Compound { children, exports } => {
                let (child_name, child_port) =
                    exports.get(port).expect("validated at registration");
                let child = children[child_name];
                self.resolve_export(child, child_port)
            }
        }
    }

    /// Bundle-type check for a resolved wire against the importing port.
    fn check_wire_type(
        &self,
        wire: &Wire,
        expected: &str,
        inst_path: &str,
        port: &str,
    ) -> Result<(), KnitError> {
        let found = match wire {
            Wire::External { port: root_port } => {
                let root_unit = &self.program.units[&self.nodes[0].unit_name];
                root_unit
                    .imports
                    .iter()
                    .find(|p| &p.name == root_port)
                    .map(|p| p.bundle_type.clone())
                    .unwrap_or_else(|| expected.to_string())
            }
            Wire::Export { instance, port: export_port } => {
                let provider = &self.program.units[&self.instances[*instance].unit];
                provider
                    .exports
                    .iter()
                    .find(|p| &p.name == export_port)
                    .map(|p| p.bundle_type.clone())
                    .expect("resolved export exists")
            }
        };
        if found != expected {
            return Err(KnitError::BundleTypeMismatch {
                instance: inst_path.to_string(),
                port: port.to_string(),
                expected: expected.to_string(),
                found,
            });
        }
        Ok(())
    }

    fn has_flatten_ancestor(&self, node: usize) -> bool {
        let mut cur = self.nodes[node].parent;
        while let Some(p) = cur {
            if self.nodes[p].flatten {
                return true;
            }
            cur = self.nodes[p].parent;
        }
        false
    }

    fn collect_atomics(&self, node: usize, out: &mut Vec<usize>) {
        match &self.nodes[node].kind {
            NodeKind::Atomic { inst } => out.push(*inst),
            NodeKind::Compound { children, .. } => {
                for &c in children.values() {
                    self.collect_atomics(c, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        let mut p = Program::new();
        p.load_str("t.unit", src).unwrap();
        p
    }

    const FIG5: &str = r#"
        bundletype Serve = { serve_web }
        bundletype Stdio = { fopen, fprintf }
        unit Web = {
            imports [ serveFile : Serve, serveCGI : Serve ];
            exports [ serveWeb : Serve ];
            files { "web.c" };
        }
        unit Log = {
            imports [ serveWeb : Serve, stdio : Stdio ];
            exports [ serveLog : Serve ];
            files { "log.c" };
        }
        unit LogServe = {
            imports [ serveFile : Serve, serveCGI : Serve, stdio : Stdio ];
            exports [ serveLog : Serve ];
            link {
                web : Web [ serveFile = serveFile, serveCGI = serveCGI ];
                log : Log [ serveWeb = web.serveWeb, stdio = stdio ];
                serveLog = log.serveLog;
            };
        }
    "#;

    #[test]
    fn elaborates_figure5() {
        let p = program(FIG5);
        let el = elaborate(&p, "LogServe").unwrap();
        assert_eq!(el.instances.len(), 2);
        let web = el.instances.iter().find(|i| i.unit == "Web").unwrap();
        let log = el.instances.iter().find(|i| i.unit == "Log").unwrap();
        // web's imports are external (root imports)
        assert_eq!(web.imports["serveFile"], Wire::External { port: "serveFile".into() });
        // log's serveWeb is wired to web's export
        assert_eq!(
            log.imports["serveWeb"],
            Wire::Export { instance: web.id, port: "serveWeb".into() }
        );
        // root export resolves through the compound to log
        assert_eq!(el.root_exports["serveLog"], (log.id, "serveLog".to_string()));
        assert_eq!(el.root_imports.len(), 3);
    }

    #[test]
    fn multiple_instantiation_gets_distinct_instances() {
        let src = r#"
            bundletype T = { f }
            unit Leaf = { exports [ out : T ]; files { "leaf.c" }; }
            unit Two = {
                exports [ a : T, b : T ];
                link {
                    one : Leaf;
                    two : Leaf;
                    a = one.out;
                    b = two.out;
                };
            }
        "#;
        let el = elaborate(&program(src), "Two").unwrap();
        assert_eq!(el.instances.len(), 2);
        assert_ne!(el.root_exports["a"], el.root_exports["b"]);
    }

    #[test]
    fn cyclic_sibling_imports_are_fine() {
        // a imports from b and b imports from a — §3.2 says cycles are
        // common and must work.
        let src = r#"
            bundletype T = { f }
            unit A = { imports [ x : T ]; exports [ y : T ]; files { "a.c" }; }
            unit B = { imports [ x : T ]; exports [ y : T ]; files { "b.c" }; }
            unit Cycle = {
                exports [ out : T ];
                link {
                    a : A [ x = b.y ];
                    b : B [ x = a.y ];
                    out = a.y;
                };
            }
        "#;
        let el = elaborate(&program(src), "Cycle").unwrap();
        assert_eq!(el.instances.len(), 2);
        let a = el.instances.iter().find(|i| i.unit == "A").unwrap();
        let b = el.instances.iter().find(|i| i.unit == "B").unwrap();
        assert_eq!(a.imports["x"], Wire::Export { instance: b.id, port: "y".into() });
        assert_eq!(b.imports["x"], Wire::Export { instance: a.id, port: "y".into() });
    }

    #[test]
    fn nested_compounds_resolve_through_aliases() {
        let src = r#"
            bundletype T = { f }
            unit Leaf = { exports [ out : T ]; files { "leaf.c" }; }
            unit Mid = {
                exports [ mout : T ];
                link { l : Leaf; mout = l.out; };
            }
            unit Top = {
                exports [ tout : T ];
                link { m : Mid; tout = m.mout; };
            }
        "#;
        let el = elaborate(&program(src), "Top").unwrap();
        assert_eq!(el.instances.len(), 1);
        assert_eq!(el.root_exports["tout"], (0, "out".to_string()));
        assert_eq!(el.instances[0].path, "Top/m/l");
    }

    #[test]
    fn interposition_figure_1c() {
        // The logger wraps the worker: same bundle type on both sides —
        // impossible with ld, trivial with units.
        let src = r#"
            bundletype T = { f }
            unit Worker = { exports [ out : T ]; files { "w.c" }; }
            unit Wrap = { imports [ inner : T ]; exports [ out : T ]; files { "wrap.c" }; }
            unit Sys = {
                exports [ svc : T ];
                link {
                    w : Worker;
                    i : Wrap [ inner = w.out ];
                    svc = i.out;
                };
            }
        "#;
        let el = elaborate(&program(src), "Sys").unwrap();
        let wrap = el.instances.iter().find(|i| i.unit == "Wrap").unwrap();
        let worker = el.instances.iter().find(|i| i.unit == "Worker").unwrap();
        assert_eq!(wrap.imports["inner"], Wire::Export { instance: worker.id, port: "out".into() });
        assert_eq!(el.root_exports["svc"], (wrap.id, "out".to_string()));
    }

    #[test]
    fn errors_unbound_import() {
        let src = r#"
            bundletype T = { f }
            unit N = { imports [ x : T ]; exports [ y : T ]; files { "n.c" }; }
            unit Bad = { exports [ out : T ]; link { n : N; out = n.y; }; }
        "#;
        let err = elaborate(&program(src), "Bad").unwrap_err();
        assert!(matches!(err.root(), KnitError::UnboundImport { .. }), "{err:?}");
        // the location wrapper points at the `n : N;` instantiation line
        assert!(err.span().is_some(), "wiring errors carry a span: {err:?}");
    }

    #[test]
    fn errors_bundle_type_mismatch() {
        let src = r#"
            bundletype T = { f }
            bundletype U = { g }
            unit P = { exports [ y : U ]; files { "p.c" }; }
            unit N = { imports [ x : T ]; exports [ y : T ]; files { "n.c" }; }
            unit Bad = {
                exports [ out : T ];
                link { p : P; n : N [ x = p.y ]; out = n.y; };
            }
        "#;
        let err = elaborate(&program(src), "Bad").unwrap_err();
        assert!(matches!(err.root(), KnitError::BundleTypeMismatch { .. }), "{err:?}");
    }

    #[test]
    fn errors_recursive_instantiation() {
        let src = r#"
            bundletype T = { f }
            unit Selfish = {
                exports [ out : T ];
                link { s : Selfish; out = s.out; };
            }
        "#;
        assert!(elaborate(&program(src), "Selfish").is_err());
    }

    #[test]
    fn errors_unknown_unit_and_instance() {
        let src = r#"
            bundletype T = { f }
            unit Bad = { exports [ out : T ]; link { n : Nope; out = n.y; }; }
        "#;
        let err = elaborate(&program(src), "Bad").unwrap_err();
        assert!(matches!(err.root(), KnitError::Unknown { .. }), "{err:?}");
        let src2 = r#"
            bundletype T = { f }
            unit Leaf = { exports [ out : T ]; files { "l.c" }; }
            unit Bad2 = { exports [ o : T ]; link { l : Leaf; o = ghost.out; }; }
        "#;
        let err2 = elaborate(&program(src2), "Bad2").unwrap_err();
        assert!(matches!(err2.root(), KnitError::Unknown { .. }), "{err2:?}");
    }

    #[test]
    fn flatten_groups_collect_outermost() {
        let src = r#"
            bundletype T = { f }
            unit Leaf = { exports [ out : T ]; files { "l.c" }; }
            unit Inner = {
                exports [ o : T ];
                link { l : Leaf; o = l.out; };
                flatten;
            }
            unit Outer = {
                exports [ o : T ];
                link { i : Inner; l2 : Leaf; o = i.o; };
                flatten;
            }
            unit Top = {
                exports [ o : T ];
                link { x : Outer; o = x.o; };
            }
        "#;
        let el = elaborate(&program(src), "Top").unwrap();
        // only the outermost group (Outer) is kept, containing both leaves
        assert_eq!(el.flatten_groups.len(), 1);
        assert_eq!(el.flatten_groups[0].len(), 2);
    }
}
